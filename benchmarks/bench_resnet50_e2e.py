"""Benchmark E10 — the end-to-end ResNet-50 claim (§1).

The paper reports a 15% improvement of ResNet-50 data-parallel training on 4
nodes of 8 V100 GPUs from using P2's placement and synthesized reduction
strategy.  This benchmark reproduces the experiment on the simulated
substrate: the 102 MB gradient all-reduce over 32 replicas is priced for the
default single AllReduce and for the best synthesized strategy (both measured
on the flow-level testbed), and the difference is folded into a training-step
model.  The absolute improvement depends on the compute/communication ratio;
the benchmark reports it for a sweep of per-step compute times and asserts
that a material end-to-end improvement (>= 4%) is obtained in the
communication-heavy regime the paper targets.
"""

from __future__ import annotations

import pytest

from repro.api import P2
from repro.evaluation.workloads import resnet50_data_parallel
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.topology.gcp import v100_system
from repro.utils.tabulate import format_table

COMPUTE_SECONDS = [0.050, 0.075, 0.100, 0.150, 0.300]


@pytest.mark.benchmark(group="resnet50")
def test_resnet50_end_to_end_improvement(benchmark, measurement_runs, save_artifact):
    system = v100_system(num_nodes=4)
    replicas = system.num_devices
    gradient_bytes = resnet50_data_parallel(replicas).phases[0].bytes_per_device
    p2 = P2(system)

    def optimize_and_measure():
        plan = p2.optimize(
            ParallelismAxes.of(replicas, names=("data",)),
            ReductionRequest.over(0),
            bytes_per_device=gradient_bytes,
        )
        default = plan.default_all_reduce()
        best = plan.best
        default_comm = p2.measure(default, gradient_bytes, num_runs=max(measurement_runs, 2)).total_seconds
        best_comm = p2.measure(best, gradient_bytes, num_runs=max(measurement_runs, 2)).total_seconds
        return plan, default_comm, best_comm

    plan, default_comm, best_comm = benchmark.pedantic(
        optimize_and_measure, rounds=1, iterations=1
    )

    rows = []
    improvements = {}
    for compute in COMPUTE_SECONDS:
        workload = resnet50_data_parallel(replicas, compute_seconds=compute)
        improvement = workload.improvement(
            {"gradients": default_comm}, {"gradients": best_comm}
        )
        improvements[compute] = improvement
        rows.append(
            [
                compute * 1e3,
                workload.communication_fraction({"gradients": default_comm}) * 100,
                workload.step_time({"gradients": default_comm}) * 1e3,
                workload.step_time({"gradients": best_comm}) * 1e3,
                improvement * 100,
            ]
        )
    text = format_table(
        ["compute (ms/step)", "comm share (%)", "step w/ AllReduce (ms)",
         "step w/ P2 (ms)", "improvement (%)"],
        rows,
        title=(
            f"ResNet-50 data parallelism on {system.name}: default AllReduce "
            f"{default_comm * 1e3:.1f} ms vs best strategy ({plan.best.mnemonic}) "
            f"{best_comm * 1e3:.1f} ms (paper: ~15% end-to-end)"
        ),
    )
    save_artifact("resnet50_end_to_end", text)

    assert best_comm < default_comm
    # In the communication-heavy regime the end-to-end improvement is material.
    assert improvements[0.050] >= 0.04
