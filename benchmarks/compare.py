"""Benchmark-regression gate for CI.

Compares the machine-readable ``BENCH_*.json`` records a benchmark run wrote
to ``benchmarks/output/`` against the committed baseline
(``benchmarks/baseline.json``) and exits non-zero when anything regressed:

* ``median_seconds`` may grow by at most the tolerance (default 30%, i.e. a
  metric *regresses* when ``current > baseline * 1.3``; per-metric
  ``tolerance`` entries in the baseline override the default — timing noise
  on shared CI runners warrants looser bars for sub-10ms metrics),
* ``counters`` are deterministic workload invariants (program counts,
  scenario counts) and must match the baseline exactly,
* a baseline metric with no current record fails (a silently skipped
  benchmark must not pass the gate); new current records that the baseline
  does not know yet are reported but pass.

``--update`` rewrites the baseline from the current records (keeping any
per-metric tolerances), which is how the committed file is refreshed when a
workload legitimately changes.

Stdlib-only on purpose: CI runs it as ``python benchmarks/compare.py`` with
no install step.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_VERSION = 1
DEFAULT_TOLERANCE = 0.30

HERE = Path(__file__).parent


def load_current(output_dir: Path) -> dict:
    records = {}
    for path in sorted(output_dir.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise SystemExit(f"{path}: not valid JSON: {error}")
        name = record.get("name")
        if not name:
            raise SystemExit(f"{path}: record has no 'name'")
        records[name] = record
    return records


def load_baseline(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"baseline {path} does not exist (run with --update to create it)")
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not valid JSON: {error}")
    version = data.get("format_version")
    if version != BASELINE_VERSION:
        raise SystemExit(
            f"{path}: unsupported baseline format version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    return data


def compare(baseline: dict, current: dict, default_tolerance: float):
    """Yield (level, message) findings; level is 'fail' or 'info'."""
    entries = baseline.get("benchmarks", {})
    for name, entry in sorted(entries.items()):
        record = current.get(name)
        if record is None:
            yield "fail", f"{name}: no BENCH_{name}.json in the current run"
            continue
        tolerance = float(entry.get("tolerance", default_tolerance))
        base_median = float(entry["median_seconds"])
        cur_median = float(record.get("median_seconds", float("inf")))
        limit = base_median * (1.0 + tolerance)
        if cur_median > limit:
            yield "fail", (
                f"{name}: median {cur_median:.4f}s exceeds baseline "
                f"{base_median:.4f}s by more than {tolerance * 100:.0f}% "
                f"(limit {limit:.4f}s)"
            )
        else:
            yield "info", (
                f"{name}: median {cur_median:.4f}s vs baseline {base_median:.4f}s "
                f"(limit {limit:.4f}s) ok"
            )
        base_counters = entry.get("counters", {})
        cur_counters = record.get("counters", {})
        for key, base_value in sorted(base_counters.items()):
            cur_value = cur_counters.get(key)
            if cur_value != base_value:
                yield "fail", (
                    f"{name}: counter {key!r} = {cur_value!r} differs from "
                    f"baseline {base_value!r} (counters gate exactly)"
                )
    for name in sorted(set(current) - set(entries)):
        yield "info", f"{name}: new benchmark, not in the baseline yet (add via --update)"


def check_coverage(baseline: dict, bench_dir: Path):
    """Yield (level, message): every baseline entry needs a producing benchmark.

    A baseline metric whose ``bench_json("<name>", ...)`` call no longer
    exists in any ``bench_*.py`` would fail every CI run with a confusing
    "no BENCH_<name>.json" error (or worse, linger forever if the entry were
    also dropped from CI's run list).  This check names the orphan directly,
    and runs without executing any benchmark, so it is cheap enough to gate
    every push.
    """
    import re

    producers = {}
    for path in sorted(bench_dir.glob("bench_*.py")):
        for name in re.findall(r"bench_json\(\s*[\"']([^\"']+)[\"']", path.read_text()):
            producers.setdefault(name, []).append(path.name)
    for name in sorted(baseline.get("benchmarks", {})):
        files = producers.get(name)
        if not files:
            yield "fail", (
                f"{name}: baseline entry has no bench_json({name!r}, ...) "
                f"call in any {bench_dir}/bench_*.py"
            )
        else:
            yield "info", f"{name}: produced by {', '.join(files)}"
    for name in sorted(set(producers) - set(baseline.get("benchmarks", {}))):
        yield "info", (
            f"{name}: emitted by {', '.join(producers[name])} but not in the "
            "baseline yet (add via --update)"
        )


def update_baseline(path: Path, baseline: dict, current: dict) -> None:
    old = baseline.get("benchmarks", {})
    benchmarks = {}
    for name, record in sorted(current.items()):
        entry = {
            "median_seconds": record["median_seconds"],
            "counters": record.get("counters", {}),
        }
        if "tolerance" in old.get(name, {}):
            entry["tolerance"] = old[name]["tolerance"]
        benchmarks[name] = entry
    payload = {"format_version": BASELINE_VERSION, "benchmarks": benchmarks}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"baseline rewritten with {len(benchmarks)} benchmarks: {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=HERE / "baseline.json")
    parser.add_argument("--current", type=Path, default=HERE / "output",
                        help="directory holding the run's BENCH_*.json records")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="default allowed relative median growth (0.30 = +30%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current records")
    parser.add_argument("--check-coverage", action="store_true",
                        help="verify every baseline entry has a producing "
                             "bench_*.py (no benchmark run needed)")
    args = parser.parse_args(argv)

    if args.check_coverage:
        baseline = load_baseline(args.baseline)
        failures = 0
        for level, message in check_coverage(baseline, HERE):
            print(f"[{level.upper()}] {message}")
            if level == "fail":
                failures += 1
        if failures:
            print(f"\n{failures} baseline metric(s) have no producing benchmark")
            return 1
        print("\nevery baseline metric has a producing benchmark file")
        return 0

    current = load_current(args.current)
    if not current:
        raise SystemExit(f"no BENCH_*.json records under {args.current}")

    if args.update:
        baseline = (
            load_baseline(args.baseline) if args.baseline.exists() else {"benchmarks": {}}
        )
        update_baseline(args.baseline, baseline, current)
        return 0

    baseline = load_baseline(args.baseline)
    failures = 0
    for level, message in compare(baseline, current, args.tolerance):
        print(f"[{level.upper()}] {message}")
        if level == "fail":
            failures += 1
    if failures:
        print(f"\n{failures} benchmark metric(s) regressed vs {args.baseline}")
        return 1
    print(f"\nall benchmark metrics within tolerance of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
