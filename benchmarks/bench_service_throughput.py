"""Benchmark S1 — planning-service throughput (cache + parallel evaluation).

The planning service exists to amortize P² queries: a cold query pays full
synthesis + simulation, while a warm query is a fingerprint lookup plus plan
deserialization.  This benchmark runs the same workload as
``bench_synthesis_time`` (the Table 4 configurations) through the service
three times — cold, warm from the in-memory LRU, and warm from a fresh
service reading the on-disk tier — and reports per-configuration latency and
speedup.  It also checks that the process-pool evaluator reproduces the
serial ranking exactly, byte for byte.

Pass criteria: warm-cache lookups at least 10x faster than cold synthesis
for every configuration, and parallel == serial rankings.
"""

from __future__ import annotations

import time
from statistics import median

import pytest

from repro.api import P2
from repro.evaluation.config import table4_configs
from repro.service import PlanCache, PlanningRequest, PlanningService
from repro.utils.tabulate import format_table


def _ranking(plan):
    return [
        (s.matrix.describe(), s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


def _request_for(config) -> PlanningRequest:
    return PlanningRequest(
        axes=config.parallelism(),
        request=config.request(),
        bytes_per_device=config.bytes_per_device,
        algorithm=config.algorithm,
    )


@pytest.mark.benchmark(group="service-throughput")
def test_cold_vs_warm_cache_throughput(benchmark, save_artifact, bench_json, tmp_path_factory):
    configs = table4_configs(payload_scale=0.01)
    cache_root = tmp_path_factory.mktemp("plan-cache")

    def one_pass():
        rows = []
        services = {}
        rankings = {}

        def service_for(config, fresh=False):
            key = (config.system, config.num_nodes)
            if fresh or key not in services:
                services[key] = PlanningService(
                    config.topology(),
                    max_program_size=config.max_program_size,
                    cache=PlanCache(directory=cache_root / f"{key[0].value}-{key[1]}n"),
                )
            return services[key]

        for config in configs:
            request = _request_for(config)

            start = time.perf_counter()
            cold = service_for(config).submit(request)
            cold_seconds = time.perf_counter() - start
            assert not cold.stats.cache_hit

            start = time.perf_counter()
            warm = service_for(config).submit(request)
            memory_seconds = time.perf_counter() - start
            assert warm.stats.cache_tier == "memory"

            start = time.perf_counter()
            disk = service_for(config, fresh=True).submit(request)
            disk_seconds = time.perf_counter() - start
            assert disk.stats.cache_tier == "disk"

            for label, response in [("memory", warm), ("disk", disk)]:
                assert _ranking(response.plan) == _ranking(cold.plan), (
                    f"{config.name}: {label}-tier plan diverges from cold plan"
                )
            rankings[config.name] = _ranking(cold.plan)
            rows.append(
                [
                    config.name,
                    len(cold.plan.strategies),
                    cold_seconds,
                    memory_seconds * 1e3,
                    disk_seconds * 1e3,
                    cold_seconds / memory_seconds,
                    cold_seconds / disk_seconds,
                ]
            )
        return rows

    rows = benchmark.pedantic(one_pass, rounds=1, iterations=1)
    text = format_table(
        [
            "configuration",
            "strategies",
            "cold (s)",
            "warm mem (ms)",
            "warm disk (ms)",
            "mem speedup",
            "disk speedup",
        ],
        rows,
        title="Planning-service latency: cold synthesis vs warm cache",
        float_fmt="{:.3f}",
    )
    save_artifact("service_throughput", text)
    bench_json(
        "service_cold_plan",
        median(row[2] for row in rows),
        counters={
            "configurations": len(rows),
            "strategies": sum(row[1] for row in rows),
        },
    )
    bench_json(
        "service_warm_memory_lookup",
        median(row[3] for row in rows) / 1e3,
        counters={"configurations": len(rows)},
    )

    # The acceptance bar: warm lookups are >= 10x faster than cold synthesis
    # on every configuration of the bench_synthesis_time workload.
    assert all(row[5] >= 10.0 for row in rows), "memory tier slower than 10x cold"
    assert all(row[6] >= 10.0 for row in rows), "disk tier slower than 10x cold"


@pytest.mark.benchmark(group="service-throughput")
def test_plan_many_batch_dedup_throughput(benchmark, save_artifact, tmp_path_factory):
    """Batch PlanQuery throughput: duplicates inside one batch ride the cache."""
    from repro.query import PlanQuery

    config = table4_configs(payload_scale=0.01)[0]
    queries = [
        PlanQuery(
            axes=config.parallelism(),
            request=config.request(),
            bytes_per_device=config.bytes_per_device,
            algorithm=config.algorithm,
            max_program_size=config.max_program_size,
        )
    ] * 8  # one cold computation, seven memory hits

    def one_batch():
        service = PlanningService(
            config.topology(),
            max_program_size=config.max_program_size,
            cache=PlanCache(directory=tmp_path_factory.mktemp("plan-batch")),
        )
        start = time.perf_counter()
        outcomes = service.plan_many(queries)
        seconds = time.perf_counter() - start
        return outcomes, seconds

    outcomes, seconds = benchmark.pedantic(one_batch, rounds=1, iterations=1)
    tiers = [outcome.cache_tier for outcome in outcomes]
    assert tiers == [None] + ["memory"] * 7
    # Every duplicate reproduces the cold ranking exactly.
    baseline = _ranking(outcomes[0].plan)
    assert all(_ranking(outcome.plan) == baseline for outcome in outcomes[1:])

    cold_seconds = outcomes[0].total_seconds
    amortized = (seconds - cold_seconds) / 7
    text = format_table(
        ["path", "seconds"],
        [
            ["cold (first of batch)", cold_seconds],
            ["amortized duplicate", amortized],
            ["whole 8-query batch", seconds],
        ],
        title="plan_many: one cold computation amortized over an 8-query batch",
        float_fmt="{:.4f}",
    )
    save_artifact("service_plan_many", text)
    assert amortized < cold_seconds, "duplicates should be far cheaper than cold"


@pytest.mark.benchmark(group="service-throughput")
def test_parallel_evaluation_matches_serial(benchmark, save_artifact):
    config = table4_configs(payload_scale=0.01)[0]  # T4-F: A100 2 nodes, [8 4]
    topology = config.topology()
    p2 = P2(topology, max_program_size=config.max_program_size)

    def run_both():
        start = time.perf_counter()
        serial = p2.optimize(
            config.parallelism(),
            config.request(),
            bytes_per_device=config.bytes_per_device,
            algorithm=config.algorithm,
        )
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        parallel = p2.optimize(
            config.parallelism(),
            config.request(),
            bytes_per_device=config.bytes_per_device,
            algorithm=config.algorithm,
            n_workers=2,
        )
        parallel_seconds = time.perf_counter() - start
        return serial, parallel, serial_seconds, parallel_seconds

    serial, parallel, serial_seconds, parallel_seconds = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    # The contract that makes the pool safe to enable by default: identical
    # ranking, identical predicted times.
    assert _ranking(parallel) == _ranking(serial)

    text = format_table(
        ["path", "strategies", "seconds"],
        [
            ["serial", len(serial.strategies), serial_seconds],
            ["2-worker pool", len(parallel.strategies), parallel_seconds],
        ],
        title=f"Serial vs parallel evaluation ({config.name}); rankings identical",
        float_fmt="{:.3f}",
    )
    save_artifact("service_parallel", text)
