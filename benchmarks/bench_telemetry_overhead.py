"""Benchmark O1 — telemetry must be free when off and cheap when on.

The telemetry spine leaves its instrumentation permanently in the hot paths
(search driver, simulator, service); the contract that makes this acceptable
is the :class:`~repro.obs.NullRecorder`: with telemetry disabled every
instrumentation point costs one attribute lookup plus an empty method call.
This benchmark plans the same query twice per round — once under the null
recorder, once under a live :class:`~repro.obs.Recorder` — and checks:

* the disabled-path median (gated against the committed baseline, so a
  future change cannot quietly make the null path expensive);
* the enabled/disabled overhead ratio stays under ``OVERHEAD_BAR`` (spans
  and counters are cheap enough to turn on in production);
* the winner is bit-identical in both modes (telemetry observes the search,
  it never perturbs it) and every traced outcome carries a trace id.

``spans_per_plan`` is structural for a fixed workload (one plan span, one
search run, one span per candidate source, one per compiled profile class,
one per priced strategy) and therefore gates exactly.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.api import P2
from repro.evaluation.config import SystemKind, paper_payload_bytes
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.obs import NULL_RECORDER, Recorder, use_recorder
from repro.query import PlanQuery

OVERHEAD_BAR = 1.5
ROUNDS = 3


def _query(payload_scale: float) -> PlanQuery:
    nodes = 2
    return PlanQuery(
        axes=ParallelismAxes((8, 4)),
        request=ReductionRequest((0,)),
        bytes_per_device=max(1, int(paper_payload_bytes(nodes) * payload_scale)),
    )


def _plan_once(topology, query):
    # A fresh tool per plan: neither mode may warm the other's profile cache.
    tool = P2(topology)
    start = time.perf_counter()
    outcome = tool.plan(query)
    return outcome, time.perf_counter() - start


@pytest.mark.benchmark(group="telemetry-overhead")
def test_disabled_telemetry_is_free_and_enabled_is_cheap(
    benchmark, save_artifact, bench_json, payload_scale
):
    topology = SystemKind("a100").build(2)
    query = _query(payload_scale)

    def both_modes():
        disabled, enabled = [], []
        winners = set()
        spans_per_plan = strategies = 0
        traced = True
        for _ in range(ROUNDS):
            with use_recorder(NULL_RECORDER):
                outcome, seconds = _plan_once(topology, query)
            disabled.append(seconds)
            winners.add(
                (outcome.best.predicted_seconds, outcome.best.program.signature())
            )
            strategies = outcome.num_strategies

            recorder = Recorder()
            with use_recorder(recorder):
                outcome, seconds = _plan_once(topology, query)
            enabled.append(seconds)
            winners.add(
                (outcome.best.predicted_seconds, outcome.best.program.signature())
            )
            traced = traced and outcome.trace_id is not None
            spans_per_plan = len(recorder.snapshot().spans)
        return disabled, enabled, winners, spans_per_plan, strategies, traced

    disabled, enabled, winners, spans_per_plan, strategies, traced = (
        benchmark.pedantic(both_modes, rounds=1, iterations=1)
    )

    disabled_median = statistics.median(disabled)
    enabled_median = statistics.median(enabled)
    ratio = enabled_median / disabled_median
    text = (
        f"Telemetry overhead over {ROUNDS} rounds "
        f"({strategies} strategies, {spans_per_plan} spans per traced plan)\n"
        f"  disabled (NullRecorder) median: {disabled_median:.4f}s\n"
        f"  enabled  (Recorder)     median: {enabled_median:.4f}s\n"
        f"  overhead ratio: {ratio:.3f}x (bar: {OVERHEAD_BAR}x)"
    )
    save_artifact("telemetry_overhead", text)
    bench_json(
        "telemetry_overhead",
        disabled_median,
        counters={
            "rounds": ROUNDS,
            "spans_per_plan": spans_per_plan,
            "strategies": strategies,
        },
    )

    # Telemetry observes the search; it must never perturb its result.
    assert len(winners) == 1, f"telemetry changed the winner: {winners}"
    assert traced, "an enabled-telemetry outcome lost its trace_id"
    assert spans_per_plan > 0, "the traced plan recorded no spans"
    assert ratio < OVERHEAD_BAR, (
        f"enabled telemetry costs {ratio:.2f}x the disabled path "
        f"(bar: {OVERHEAD_BAR}x)"
    )
