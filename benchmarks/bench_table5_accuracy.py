"""Benchmark E3 — Table 5: top-k prediction accuracy of the simulator.

For every experiment in the accuracy set, all (matrix, program) candidates
are both predicted (analytic simulator) and measured (flow-level testbed
simulator); the benchmark reports the fraction of experiments whose
measured-best candidate appears in the predictor's top-k, per system and
overall — the rows of Table 5.  The paper reports 52% / 75% / 92% for
top-1 / top-5 / top-10; we assert the same qualitative behaviour (top-10
well above top-1, top-10 high in absolute terms).
"""

from __future__ import annotations

import pytest

from repro.evaluation.config import table5_configs
from repro.evaluation.runner import SweepRunner
from repro.evaluation.tables import build_table5


@pytest.mark.benchmark(group="table5")
def test_table5_simulator_accuracy(benchmark, payload_scale, measurement_runs, save_artifact):
    configs = table5_configs(payload_scale, quick=True)
    runner = SweepRunner(measurement_runs=measurement_runs)

    results = benchmark.pedantic(runner.run_many, args=(configs,), rounds=1, iterations=1)
    artifact = build_table5(results=results)
    save_artifact("table5_simulator_accuracy", artifact.text)

    total_row = artifact.rows[-1]
    assert total_row[0] == "Total"
    top_values = dict(zip(artifact.headers[1:], total_row[1:]))
    top1 = top_values["Top-1 (%)"]
    top10 = top_values["Top-10 (%)"]
    # Accuracy must not degrade with k and the top-10 shortlist must be useful.
    assert top10 >= top1
    assert top10 >= 60.0
