"""Benchmark — corpus warm starts: seeding cold searches from their history.

The plan corpus (``repro.corpus``) exists to make the *first* good answer
arrive sooner: a cold search seeded with its nearest historical neighbor
starts from a real incumbent instead of discovering one mid-enumeration.
This benchmark walks a payload ladder on the two-node A100 system:

* **warm rungs** — the first payloads are planned exhaustively through a
  corpus-attached :class:`~repro.service.PlanningService`, populating the
  corpus the way a sweep or a live daemon would;
* **eval rungs** — every later payload is planned twice with lossless
  pruning active (a non-binding ``max_candidates`` turns bounds on without
  truncating the stream): once seeded from the corpus, once from scratch.

Three properties are asserted, none of them statistical:

* the seeded search reaches its final incumbent at least 2x sooner
  (median ``time_to_incumbent_s`` over the eval rungs), and the incumbent
  is stamped as seeded;
* the seed makes pruning *stronger* — more entries bound-rejected, fewer
  exactly priced — because the incumbent exists before the first placement
  is even synthesized;
* seeding is lossless: an exhaustive seeded plan is bit-identical
  (entries, mnemonics, predicted floats) to the exhaustive unseeded plan.

The gated counters are structural (rungs, seeds, match counts), so they are
deterministic; the incumbent speedup is asserted here, not gated, because
both timings move together on a shared machine.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.corpus import PlanCorpus
from repro.query import PlanQuery
from repro.service import PlanningService
from repro.topology.gcp import a100_system
from repro.utils.tabulate import format_table

MB = 1 << 20
WARM_PAYLOADS = [1 * MB, 2 * MB]
EVAL_PAYLOADS = [4 * MB, 8 * MB, 16 * MB, 32 * MB]
SPEEDUP_BAR = 2.0
# Large enough to never truncate the stream: the budget only exists to turn
# on lossless bound pruning, so both sides still enumerate everything.
NON_BINDING_BUDGET = 10**9


def _query(payload: int, **kwargs) -> PlanQuery:
    # Reducing along the *inner* axis puts the winner deep in enumeration
    # order, so an unseeded search must price nearly everything before its
    # incumbent settles — the case history is supposed to accelerate.
    return PlanQuery(
        axes=(8, 4), request=(1,), bytes_per_device=payload,
        max_program_size=3, **kwargs,
    )


def _ranking(plan):
    return [
        (s.matrix.entries, s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


def _service(topology, corpus=None) -> PlanningService:
    # A fresh service per plan: neither side may warm the other's profile
    # cache, and repeated queries must re-search rather than hit the cache.
    return PlanningService(topology, max_program_size=3, corpus=corpus)


@pytest.mark.benchmark(group="corpus-warmstart")
def test_corpus_seeded_search_reaches_incumbent_sooner(
    benchmark, save_artifact, bench_json, tmp_path_factory
):
    topology = a100_system(num_nodes=2)
    corpus_dir = tmp_path_factory.mktemp("corpus")

    def ladder():
        corpus = PlanCorpus(corpus_dir / "store")
        for payload in WARM_PAYLOADS:
            _service(topology, corpus).plan(_query(payload))
        assert len(corpus) == len(WARM_PAYLOADS)

        rows = []
        seeded_ttis, unseeded_ttis = [], []
        seeds = seeded_incumbents = identical = 0
        seeded_rejected = unseeded_rejected = 0
        seeded_ranked = unseeded_ranked = 0
        total_seconds = 0.0
        for payload in EVAL_PAYLOADS:
            budgeted = _query(payload, max_candidates=NON_BINDING_BUDGET)
            start = time.perf_counter()
            seeded = _service(topology, corpus).plan(budgeted)
            unseeded = _service(topology).plan(budgeted)
            total_seconds += time.perf_counter() - start

            seeds += seeded.search["seeds"]
            seeded_incumbents += bool(seeded.search["seeded_incumbent"])
            seeded_ttis.append(seeded.search["time_to_incumbent_s"])
            unseeded_ttis.append(unseeded.search["time_to_incumbent_s"])
            seeded_rejected += seeded.search["bound_rejected"]
            unseeded_rejected += unseeded.search["bound_rejected"]
            seeded_ranked += seeded.search["ranked"]
            unseeded_ranked += unseeded.search["ranked"]

            # Losslessness: the exhaustive seeded plan (which the corpus
            # ingests as new history) matches the exhaustive unseeded one
            # bit for bit.
            exhaustive_seeded = _service(topology, corpus).plan(_query(payload))
            exhaustive_unseeded = _service(topology).plan(_query(payload))
            identical += _ranking(exhaustive_seeded.plan) == _ranking(
                exhaustive_unseeded.plan
            )
            rows.append(
                [
                    payload // MB,
                    seeded.search["seeds"],
                    seeded.search["time_to_incumbent_s"] * 1e3,
                    unseeded.search["time_to_incumbent_s"] * 1e3,
                    seeded.search["bound_rejected"],
                    unseeded.search["bound_rejected"],
                    "yes" if seeded.search["seeded_incumbent"] else "NO",
                ]
            )
        return (
            rows, seeded_ttis, unseeded_ttis, seeds, seeded_incumbents,
            identical, seeded_rejected, unseeded_rejected,
            seeded_ranked, unseeded_ranked, total_seconds,
        )

    (
        rows, seeded_ttis, unseeded_ttis, seeds, seeded_incumbents,
        identical, seeded_rejected, unseeded_rejected,
        seeded_ranked, unseeded_ranked, total_seconds,
    ) = benchmark.pedantic(ladder, rounds=1, iterations=1)

    seeded_median = statistics.median(seeded_ttis)
    unseeded_median = statistics.median(unseeded_ttis)
    speedup = unseeded_median / seeded_median if seeded_median else float("inf")
    text = format_table(
        [
            "payload (MB)", "seeds", "seeded tti (ms)", "unseeded tti (ms)",
            "seeded rejected", "unseeded rejected", "seeded incumbent",
        ],
        rows,
        title=(
            f"Corpus warm starts over a payload ladder "
            f"({len(WARM_PAYLOADS)} warm + {len(EVAL_PAYLOADS)} eval rungs): "
            f"median time-to-incumbent {unseeded_median * 1e3:.2f} ms -> "
            f"{seeded_median * 1e3:.2f} ms ({speedup:.1f}x)"
        ),
        float_fmt="{:.3f}",
    )
    save_artifact("corpus_warmstart", text)
    bench_json(
        "corpus_warmstart",
        total_seconds,
        counters={
            "eval_rungs": len(EVAL_PAYLOADS),
            "warm_rungs": len(WARM_PAYLOADS),
            "seeds": seeds,
            "seeded_incumbents": seeded_incumbents,
            "identical_rankings": identical,
        },
        extra={
            "seeded_median_tti_s": seeded_median,
            "unseeded_median_tti_s": unseeded_median,
            "tti_speedup": speedup,
            "seeded_bound_rejected": seeded_rejected,
            "unseeded_bound_rejected": unseeded_rejected,
            "seeded_ranked": seeded_ranked,
            "unseeded_ranked": unseeded_ranked,
        },
    )

    # Every eval rung found a seed and its incumbent came from history.
    assert seeds >= len(EVAL_PAYLOADS)
    assert seeded_incumbents == len(EVAL_PAYLOADS)
    # Losslessness is not statistical: every rung's plans must match.
    assert identical == len(EVAL_PAYLOADS), (
        f"corpus seeding changed the plan in "
        f"{len(EVAL_PAYLOADS) - identical} rung(s)"
    )
    # The PR acceptance bar: history halves (at least) the time to the
    # final incumbent...
    assert speedup >= SPEEDUP_BAR, (
        f"seeded search only {speedup:.1f}x sooner to incumbent "
        f"(bar: {SPEEDUP_BAR}x; seeded {seeded_median * 1e3:.2f} ms vs "
        f"unseeded {unseeded_median * 1e3:.2f} ms)"
    )
    # ...because the seed incumbent exists before enumeration starts, the
    # bounds cut deeper: more entries rejected, fewer exactly priced.
    assert seeded_rejected > unseeded_rejected, (
        f"seeding did not strengthen pruning "
        f"({seeded_rejected} vs {unseeded_rejected} bound-rejected)"
    )
    assert seeded_ranked < unseeded_ranked, (
        f"seeding did not reduce exact pricing "
        f"({seeded_ranked} vs {unseeded_ranked} ranked)"
    )
