"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and writes
the rendered artefact to ``benchmarks/output/``.  Two environment variables
control the fidelity / cost trade-off:

``REPRO_BENCH_PAYLOAD_SCALE``
    Fraction of the paper's payload (``2^29 * nodes`` float32 per GPU) used by
    the sweeps.  Defaults to ``0.02`` so the whole suite runs in a few
    minutes; set to ``1.0`` to reproduce the paper's absolute scale (the
    relative results — who wins and by how much — are unchanged because the
    payloads are firmly bandwidth-dominated either way).
``REPRO_BENCH_RUNS``
    Number of testbed measurement runs per program (default 1; the paper uses 10).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"
BENCH_RECORD_VERSION = 1


def _payload_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_PAYLOAD_SCALE", "0.02"))


def _measurement_runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "1"))


@pytest.fixture(scope="session")
def payload_scale() -> float:
    return _payload_scale()


@pytest.fixture(scope="session")
def measurement_runs() -> int:
    return _measurement_runs()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(output_dir):
    """Return a helper that writes a named artefact and echoes a short preview."""

    def _save(name: str, text: str, preview_lines: int = 12) -> Path:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        preview = "\n".join(text.splitlines()[:preview_lines])
        print(f"\n--- {name} (full output: {path}) ---\n{preview}\n")
        return path

    return _save


@pytest.fixture(scope="session")
def bench_json(output_dir):
    """Return a helper that writes one machine-readable ``BENCH_<name>.json``.

    The schema is what ``benchmarks/compare.py`` (the CI regression gate)
    consumes: a benchmark name, a median wall-clock in seconds, and integer
    ``counters`` that are deterministic for a given workload (program and
    matrix counts, cache-hit counts) and therefore gate exactly, while the
    timing gates with a relative tolerance.
    """

    def _write(name: str, median_seconds: float, counters=None, extra=None) -> Path:
        payload = {
            "format_version": BENCH_RECORD_VERSION,
            "name": name,
            "median_seconds": float(median_seconds),
            "counters": {key: int(value) for key, value in (counters or {}).items()},
        }
        # Extra top-level metrics (throughput, percentiles, ratios) ride
        # along for human/CI consumption; compare.py ignores unknown keys,
        # so only median_seconds and counters gate.
        for key, value in (extra or {}).items():
            payload.setdefault(key, value)
        path = output_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _write
