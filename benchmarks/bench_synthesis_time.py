"""Benchmark E8 — synthesis speed (paper §4.2, Result 2).

The paper reports that, with a program-size limit of 5, the longest synthesis
time over all its configurations is under 2 seconds (for up to 235 programs),
and that increasing the limit rarely yields new programs.  This benchmark
measures synthesis (placement enumeration + program synthesis + lowering) for
the largest configurations of Table 4 and prints per-configuration synthesis
time and program counts; it also checks the diminishing-returns claim by
comparing program counts at size limits 4 and 5 for one configuration.
"""

from __future__ import annotations

import time
from statistics import median

import pytest

from repro.evaluation.config import table4_configs
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ReductionRequest
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.pipeline import synthesize_all
from repro.synthesis.synthesizer import synthesize_programs
from repro.utils.tabulate import format_table


@pytest.mark.benchmark(group="synthesis-time")
def test_synthesis_time_per_configuration(benchmark, save_artifact, bench_json):
    configs = table4_configs(payload_scale=0.01)

    def synthesize_everything():
        rows = []
        for config in configs:
            start = time.perf_counter()
            candidates = synthesize_all(
                config.topology().hierarchy,
                config.parallelism(),
                config.request(),
                max_program_size=config.max_program_size,
            )
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    config.name,
                    "[" + " ".join(str(a) for a in config.axes) + "]",
                    len(candidates),
                    sum(c.num_programs for c in candidates),
                    elapsed,
                ]
            )
        return rows

    rows = benchmark.pedantic(synthesize_everything, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "axes", "matrices", "programs", "synthesis time (s)"],
        rows,
        title="Synthesis time per configuration (paper Result 2: < 2 s)",
        float_fmt="{:.3f}",
    )
    save_artifact("synthesis_time", text)
    bench_json(
        "synthesis_time",
        median(row[4] for row in rows),
        counters={
            "configurations": len(rows),
            "matrices": sum(row[2] for row in rows),
            "programs": sum(row[3] for row in rows),
        },
    )

    # Result 2 shape: every configuration synthesizes in seconds, hundreds of
    # programs at most.  (The paper's numbers are < 2 s on their machine.)
    assert all(row[4] < 30.0 for row in rows)
    assert all(row[3] <= 2000 for row in rows)


@pytest.mark.benchmark(group="synthesis-time")
def test_size_limit_diminishing_returns(benchmark, save_artifact):
    """Increasing the program-size limit beyond 5 adds few or no new programs."""
    config = table4_configs(payload_scale=0.01)[0]  # T4-F: A100 2 nodes, [8 4]
    matrix = enumerate_parallelism_matrices(
        config.topology().hierarchy, config.parallelism()
    )[1]
    hierarchy = build_synthesis_hierarchy(matrix, ReductionRequest.over(0))

    counts = {}

    def run_sizes():
        for size in (3, 4, 5):
            counts[size] = synthesize_programs(hierarchy, max_program_size=size).num_programs
        return counts

    benchmark.pedantic(run_sizes, rounds=1, iterations=1)
    text = format_table(
        ["size limit", "programs"],
        [[size, count] for size, count in sorted(counts.items())],
        title=f"Program count vs size limit for matrix {matrix.describe()}",
    )
    save_artifact("synthesis_size_limit", text)

    # The search is monotone in the size limit and all interesting patterns
    # (the Figure 10 strategies) already appear by size 3; larger limits add
    # longer variants without changing the optimum in the evaluation, which is
    # why the paper (and our sweeps) cap the size at 5.
    assert counts[3] <= counts[4] <= counts[5]
    assert counts[3] >= 10
