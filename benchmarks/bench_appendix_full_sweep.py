"""Benchmark E6 — the appendix table: the full placement/strategy sweep.

The paper's appendix tabulates, for every parallelism-axes shape on both GPU
systems with 2 and 4 nodes and both NCCL algorithms, the AllReduce time, the
optimal synthesized time and the speedup for every parallelism matrix.  The
full sweep is large; by default this benchmark runs the 2-node ring subset
(set ``REPRO_BENCH_FULL_SWEEP=1`` for everything) and prints the appendix
rows it produced.

The paper's aggregate claim over this sweep (Result 5 / abstract) is that a
synthesized program outperforms AllReduce for 69% of mappings with an average
speedup of 1.27x; the benchmark reports the same aggregate for the subset it
ran and asserts the qualitative version (a substantial fraction of mappings
benefit; the average speedup over *benefiting* mappings is in the paper's
range).
"""

from __future__ import annotations

import os

import pytest

from repro.cost.nccl import NCCLAlgorithm
from repro.evaluation.config import appendix_configs
from repro.evaluation.runner import SweepRunner
from repro.evaluation.tables import build_appendix_table


def _configs(payload_scale: float):
    if os.environ.get("REPRO_BENCH_FULL_SWEEP"):
        return appendix_configs(payload_scale)
    return appendix_configs(
        payload_scale,
        node_counts=(2,),
        algorithms=(NCCLAlgorithm.RING,),
    )


@pytest.mark.benchmark(group="appendix")
def test_appendix_full_sweep(benchmark, payload_scale, measurement_runs, save_artifact):
    configs = _configs(payload_scale)
    runner = SweepRunner(measurement_runs=measurement_runs)

    results = benchmark.pedantic(runner.run_many, args=(configs,), rounds=1, iterations=1)
    artifact = build_appendix_table(results)

    speedups = []
    for result in results:
        for matrix in result.matrices:
            speedup = matrix.speedup_over_all_reduce()
            if speedup is not None and matrix.all_reduce.evaluation_seconds > 0:
                speedups.append(speedup)
    benefiting = [s for s in speedups if s > 1.05]
    summary = (
        f"\nconfigurations: {len(results)}; mappings: {len(speedups)}; "
        f"mappings with a >5% faster synthesized program: {len(benefiting)} "
        f"({100 * len(benefiting) / max(len(speedups), 1):.0f}%); "
        f"average speedup over those mappings: "
        f"{sum(benefiting) / max(len(benefiting), 1):.2f}x "
        f"(paper: 69% of mappings, 1.27x average)"
    )
    save_artifact("appendix_full_sweep", artifact.text + summary, preview_lines=30)

    assert len(benefiting) / max(len(speedups), 1) > 0.25
    average = sum(benefiting) / max(len(benefiting), 1)
    assert 1.1 <= average <= 2.5
