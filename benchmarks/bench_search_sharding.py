"""Benchmark S4 — sharded cold-plan search vs the serial driver.

ROADMAP item 2's acceptance gate.  One appendix-scale cold plan (8-node
A100, a three-axis parallelism shape whose 7 placement matrices split into
four similarly-heavy ones and a cheap tail — so a 4-way partition has real
work on every shard and no single matrix floors the critical path) is
computed twice: serially, and partitioned across ``shards=4`` worker
processes that share a branch-and-bound incumbent
(:mod:`repro.search.sharded`).

Two properties gate, one is asserted:

* **Bit-identity** (asserted) — the exhaustive sharded plan's full ranking,
  floats and baselines equal the serial plan's exactly.  This is the
  contract that makes ``shards`` fingerprint-neutral and sharded plans
  cacheable.
* **Critical-path speedup** (asserted, machine-independent) — serial CPU
  time divided by the busiest shard's CPU time must be >= 2x.  Per-shard
  ``cpu_seconds`` come from ``time.process_time()`` inside each worker, so
  this measures how well the placement ledger splits the *work*, not how
  many cores the machine happened to have.
* **Wall-clock speedup** (asserted only with >= 4 usable cores) — the
  headline number: the sharded cold-plan median must be >= 2x faster than
  serial.  On smaller runners the wall-clock ratio is physically capped
  below the bar, so it is recorded in the JSON instead of asserted.

The committed baseline gates the deterministic counters (matrix and
strategy counts, shard width) exactly and the sharded median with a loose
tolerance (process spawn time varies across runners).
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.api import P2
from repro.cost.nccl import NCCLAlgorithm
from repro.evaluation.config import paper_payload_bytes
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import PlanQuery
from repro.topology.gcp import a100_system
from repro.utils.tabulate import format_table

SHARDS = 4
NUM_NODES = 8
SHAPE = (2, 8, 8)
REDUCE = (1,)
MAX_PROGRAM_SIZE = 3
CRITICAL_PATH_BAR = 2.0
WALL_CLOCK_BAR = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _query(payload_scale: float, shards: int = 1) -> PlanQuery:
    return PlanQuery(
        axes=ParallelismAxes(SHAPE),
        request=ReductionRequest(REDUCE),
        bytes_per_device=max(1, int(paper_payload_bytes(NUM_NODES) * payload_scale)),
        algorithm=NCCLAlgorithm.RING,
        max_program_size=MAX_PROGRAM_SIZE,
        shards=shards,
    )


def _ranking(plan):
    return [
        (s.matrix.entries, s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


@pytest.mark.benchmark(group="search-sharding")
def test_sharded_cold_plan_halves_the_critical_path(
    benchmark, save_artifact, bench_json, payload_scale
):
    topology = a100_system(num_nodes=NUM_NODES)

    def both_plans():
        # A fresh tool per plan: neither side may warm the other's profile
        # cache (the serial driver's cross-matrix signature dedup is part of
        # what sharding has to beat).
        cpu_start = time.process_time()
        wall_start = time.perf_counter()
        serial = P2(topology, max_program_size=MAX_PROGRAM_SIZE).plan(
            _query(payload_scale)
        )
        serial_wall = time.perf_counter() - wall_start
        serial_cpu = time.process_time() - cpu_start
        wall_start = time.perf_counter()
        sharded = P2(topology, max_program_size=MAX_PROGRAM_SIZE).plan(
            _query(payload_scale, shards=SHARDS)
        )
        sharded_wall = time.perf_counter() - wall_start
        return serial, serial_wall, serial_cpu, sharded, sharded_wall

    serial, serial_wall, serial_cpu, sharded, sharded_wall = benchmark.pedantic(
        both_plans, rounds=1, iterations=1
    )

    assert _ranking(serial.plan) == _ranking(sharded.plan), (
        "sharded exhaustive search is not bit-identical to serial"
    )
    assert serial.plan.baselines == sharded.plan.baselines
    assert serial.fingerprint == sharded.fingerprint

    stats = sharded.search["shard_stats"]
    shard_cpus = [entry["cpu_seconds"] for entry in stats]
    critical_path_speedup = serial_cpu / max(shard_cpus)
    wall_speedup = serial_wall / sharded_wall
    cores = _usable_cores()

    rows = [
        [
            entry["shard"],
            ",".join(str(index) for index in entry["matrices"]),
            entry["steals"],
            entry["cpu_seconds"],
            entry["seconds"],
            entry["profile_misses"],
        ]
        for entry in stats
    ]
    text = format_table(
        ["shard", "matrices", "steals", "cpu (s)", "wall (s)", "compiles"],
        rows,
        title=(
            f"Sharded cold plan ({NUM_NODES}-node A100, shape {SHAPE}, "
            f"shards={SHARDS}): serial {serial_wall:.2f}s "
            f"(cpu {serial_cpu:.2f}s) -> sharded {sharded_wall:.2f}s on "
            f"{cores} core(s); critical-path speedup "
            f"{critical_path_speedup:.2f}x, wall {wall_speedup:.2f}x"
        ),
        float_fmt="{:.3f}",
    )
    save_artifact("search_sharding", text)
    bench_json(
        "search_sharding",
        sharded_wall,
        counters={
            "shards": sharded.search["shards"],
            "matrices": sharded.search["matrices_reached"],
            "strategies": len(sharded.plan.strategies),
            "identical_ranking": 1,
        },
        extra={
            "serial_seconds": serial_wall,
            "serial_cpu_seconds": serial_cpu,
            "shard_cpu_seconds": shard_cpus,
            "shard_steals": sharded.search["shard_steals"],
            "critical_path_speedup": critical_path_speedup,
            "wall_clock_speedup": wall_speedup,
            "usable_cores": cores,
        },
    )

    # The machine-independent gate: the ledger must split the work so the
    # busiest shard holds at most half the serial CPU time.
    assert critical_path_speedup >= CRITICAL_PATH_BAR, (
        f"sharding only shortened the critical path "
        f"{critical_path_speedup:.2f}x (bar: {CRITICAL_PATH_BAR}x; "
        f"shard cpu seconds: {[f'{c:.2f}' for c in shard_cpus]})"
    )
    # The headline wall-clock gate, only meaningful when the cores exist.
    if cores >= SHARDS:
        assert wall_speedup >= WALL_CLOCK_BAR, (
            f"sharded cold plan only {wall_speedup:.2f}x faster than serial "
            f"on {cores} cores (bar: {WALL_CLOCK_BAR}x)"
        )
