"""Benchmark E2 — Table 4: synthesized reduction strategies vs. AllReduce.

Runs the seven configurations of Table 4 (rows F–L: both GPU systems, one to
three parallelism axes, ring and tree) end to end: placement synthesis,
strategy synthesis, analytic prediction and testbed measurement for every
candidate.  Prints the table rows (per-matrix AllReduce time, optimal time,
speedup, programs-outperforming counts, synthesis time) and asserts the
paper's qualitative results:

* Result 2 — synthesis itself stays fast,
* Result 3 — intra-node reductions keep AllReduce (near-)optimal,
* Result 5 — cross-node reductions see speedups in the paper's 1x–2.04x band.
"""

from __future__ import annotations

import pytest

from repro.evaluation.config import table4_configs
from repro.evaluation.runner import SweepRunner
from repro.evaluation.tables import build_table4


@pytest.mark.benchmark(group="table4")
def test_table4_synthesized_strategies(benchmark, payload_scale, measurement_runs, save_artifact):
    configs = table4_configs(payload_scale)
    runner = SweepRunner(measurement_runs=measurement_runs)

    results = benchmark.pedantic(runner.run_many, args=(configs,), rounds=1, iterations=1)
    artifact = build_table4(results=results)
    save_artifact("table4_synthesis_vs_allreduce", artifact.text, preview_lines=30)

    # Result 2: synthesis time per configuration stays in the seconds range.
    assert all(result.synthesis_seconds < 30.0 for result in results)

    speedups = []
    outperforming = 0
    total_matrices = 0
    for result in results:
        for matrix in result.matrices:
            speedup = matrix.speedup_over_all_reduce()
            if speedup is None:
                continue
            speedups.append(speedup)
            total_matrices += 1
            if speedup > 1.05:
                outperforming += 1
    # Result 5: speedups fall in the paper's band and a substantial fraction of
    # placements benefit (the paper reports 69% over all mappings, avg 1.27x).
    assert max(speedups) <= 3.0
    assert max(speedups) >= 1.3
    assert outperforming / total_matrices >= 0.3
