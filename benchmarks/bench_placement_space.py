"""Benchmark E7 — the placement-space reduction claim (§2.1, Figure 2).

The paper motivates parallelism matrices by noting that naively assigning
``4 x 4`` program shards to 16 GPUs admits ``16! > 2^44`` placements, whereas
the matrix formulation yields a handful of structured candidates.  This
benchmark measures matrix enumeration on the paper's systems and prints the
naive-vs-structured counts.
"""

from __future__ import annotations

import pytest

from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import count_naive_placements, enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes
from repro.topology.gcp import a100_system, v100_system
from repro.utils.tabulate import format_table

CASES = [
    ("figure2 rack, data 4 x shard 4",
     SystemHierarchy.from_pairs([("rack", 1), ("server", 2), ("cpu", 2), ("gpu", 4)]),
     ParallelismAxes.of(4, 4)),
    ("A100 4 nodes, [4 16]", a100_system(4).hierarchy, ParallelismAxes.of(4, 16)),
    ("A100 4 nodes, [16 2 2]", a100_system(4).hierarchy, ParallelismAxes.of(16, 2, 2)),
    ("V100 4 nodes, [8 2 2]", v100_system(4).hierarchy, ParallelismAxes.of(8, 2, 2)),
    ("A100 4 nodes, [64]", a100_system(4).hierarchy, ParallelismAxes.of(64)),
]


@pytest.mark.benchmark(group="placement-space")
def test_placement_space_reduction(benchmark, save_artifact):
    def enumerate_all():
        return [
            (name, enumerate_parallelism_matrices(hierarchy, axes), axes)
            for name, hierarchy, axes in CASES
        ]

    results = benchmark(enumerate_all)

    rows = []
    for name, matrices, axes in results:
        rows.append(
            [
                name,
                len(matrices),
                f"{count_naive_placements(axes):.2e}",
                "; ".join(m.describe() for m in matrices[:3]) + (" ..." if len(matrices) > 3 else ""),
            ]
        )
    text = format_table(
        ["configuration", "parallelism matrices", "naive assignments", "examples"],
        rows,
        title="Placement-space reduction (paper section 2.1)",
    )
    save_artifact("placement_space_reduction", text)

    figure2 = results[0][1]
    assert len(figure2) == 4
    assert count_naive_placements(ParallelismAxes.of(4, 4)) > 2**44
    # Every case collapses to a tiny structured space.
    assert all(len(matrices) <= 64 for _, matrices, _ in results)
