"""Benchmark — vectorized batch pricing vs. the scalar price_profile loop.

Payload-ladder sweeps are the simulator's hottest repeat customer: every
program is re-priced at every rung.  :class:`~repro.cost.batch.BatchPricer`
compiles each profile's per-class coefficients into numpy tables once and
prices the whole ladder with one kernel per (program, algorithm).

This benchmark takes every program the synthesis pipeline produces for the
A100 ``[8 4]`` shape and prices all of them across a 16-point payload ladder
under both NCCL algorithms, once through per-payload ``price_profile`` calls
(the scalar loop) and once through batched ``BatchPricer.price`` calls.  The
acceptance bar is a >= 5x median speedup *with exact float equality on every
(program, payload, algorithm) cell* — the batch path must be a pure
re-arrangement of the same arithmetic, never an approximation.  Program,
payload and cell counts are deterministic for the workload and gate exactly
in CI; the speedup is asserted here, not gated by the baseline.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.api import collect_strategy_entries
from repro.cost.batch import BatchPricer, have_numpy
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.profile import price_profile
from repro.cost.simulator import ProgramSimulator
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.synthesis.pipeline import synthesize_all
from repro.topology.gcp import a100_system
from repro.utils.tabulate import format_table

MB = 1 << 20
# 16 rungs spanning latency- to bandwidth-dominated payloads.
PAYLOAD_LADDER = tuple(float(1 << (10 + rung)) for rung in range(16))
ALGORITHMS = (NCCLAlgorithm.RING, NCCLAlgorithm.TREE)
SPEEDUP_BAR = 5.0
ROUNDS = 5


@pytest.mark.benchmark(group="batch-pricing")
def test_batch_pricing_vs_scalar_loop(benchmark, save_artifact, bench_json):
    if not have_numpy():
        pytest.skip("batch pricing benchmark requires numpy")
    topology = a100_system(num_nodes=2)
    request = ReductionRequest.over(0)
    candidates = synthesize_all(
        topology.hierarchy, ParallelismAxes.of(8, 4), request, max_program_size=3
    )
    entries = collect_strategy_entries(candidates, request)
    programs = [e.lowered for e in entries if e.lowered.num_steps > 0]

    simulator = ProgramSimulator(topology)
    model = simulator.cost_model
    profiles = [simulator.profile_for(program) for program in programs]
    pricers = [BatchPricer(profile) for profile in profiles]

    def scalar_ladder():
        return [
            [
                [
                    price_profile(profile, payload, algorithm, model).total_seconds
                    for payload in PAYLOAD_LADDER
                ]
                for profile in profiles
            ]
            for algorithm in ALGORITHMS
        ]

    def batch_ladder():
        return [
            [
                pricer.price(PAYLOAD_LADDER, algorithm, model).totals
                for pricer in pricers
            ]
            for algorithm in ALGORITHMS
        ]

    def one_round():
        start = time.perf_counter()
        batched = batch_ladder()
        batch_seconds = time.perf_counter() - start
        start = time.perf_counter()
        scalar = scalar_ladder()
        scalar_seconds = time.perf_counter() - start
        return batch_seconds, scalar_seconds, batched, scalar

    rounds = benchmark.pedantic(
        lambda: [one_round() for _ in range(ROUNDS)], rounds=1, iterations=1
    )
    batch_median = statistics.median(r[0] for r in rounds)
    scalar_median = statistics.median(r[1] for r in rounds)
    speedup = scalar_median / batch_median

    # Exact float equality on EVERY (algorithm, program, payload) cell of
    # every round — the acceptance contract of the batch path.
    cells = 0
    for _, _, batched, scalar in rounds:
        assert batched == scalar
        cells = sum(len(row) for grid in batched for row in grid)
    assert cells == len(programs) * len(PAYLOAD_LADDER) * len(ALGORITHMS)

    text = format_table(
        ["path", "median seconds (full grid)", "speedup"],
        [
            ["scalar price_profile loop", scalar_median, 1.0],
            ["vectorized BatchPricer", batch_median, speedup],
        ],
        title=(
            f"Batch pricing: {len(programs)} programs x "
            f"{len(PAYLOAD_LADDER)}-point ladder x {len(ALGORITHMS)} algorithms "
            f"({cells} cells, all exact-equal)"
        ),
        float_fmt="{:.4f}",
    )
    save_artifact("batch_pricing", text)
    bench_json(
        "batch_pricing",
        batch_median,
        counters={
            "programs": len(programs),
            "payloads": len(PAYLOAD_LADDER),
            "algorithms": len(ALGORITHMS),
            "cells": cells,
        },
        extra={"speedup_vs_scalar": speedup, "scalar_median_seconds": scalar_median},
    )

    assert speedup >= SPEEDUP_BAR, (
        f"batch pricing only {speedup:.1f}x faster than the scalar loop "
        f"(bar: {SPEEDUP_BAR}x)"
    )
