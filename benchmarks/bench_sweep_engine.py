"""Benchmark S2 — sweep-engine cache amortization.

The sweep engine's reason to exist is that re-running (or extending) a
scenario sweep should not pay synthesis again: every scenario query goes
through the :class:`~repro.query.Planner` protocol, so a sweep driven by a
:class:`~repro.service.engine.PlanningService` with an on-disk plan cache
answers warm re-runs with fingerprint lookups.

This benchmark runs the ``smoke`` preset cold and then warm through a fresh
service reading the same cache directory, checks the warm run is at least
5x faster (the PR acceptance bar), and checks the warm records are
bit-identical to the cold ones outside wall-clock provenance.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.evaluation.runner import SweepRunner
from repro.evaluation.scenarios import PRESETS
from repro.service import PlanCache, PlanningService
from repro.utils.tabulate import format_table

SPEEDUP_BAR = 5.0


def _service_runner(cache_dir, preset) -> SweepRunner:
    return SweepRunner(
        measure_programs=preset.measure_programs,
        measurement_runs=preset.measurement_runs,
        planner_factory=lambda topology: PlanningService(
            topology, cache=PlanCache(directory=cache_dir)
        ),
    )


def _stripped(records):
    """Records minus wall-clock fields: the deterministic sweep output."""
    stripped = []
    for record in records:
        record = json.loads(json.dumps(record))  # deep copy
        record.pop("provenance", None)
        for matrix in record.get("matrices", ()):
            matrix.pop("synthesis_seconds", None)
        stripped.append(record)
    return stripped


@pytest.mark.benchmark(group="sweep-engine")
def test_smoke_sweep_cold_vs_warm(benchmark, save_artifact, bench_json, tmp_path_factory):
    preset = PRESETS["smoke"]
    scenarios = preset.scenarios()
    cache_dir = tmp_path_factory.mktemp("sweep-cache")

    def cold_then_warm():
        cold_records = []
        with _service_runner(cache_dir, preset) as runner:
            start = time.perf_counter()
            cold_results = runner.run_stream(scenarios, on_record=cold_records.append)
            cold_seconds = time.perf_counter() - start
        assert all(not result.cache_hit for result in cold_results)

        warm_records = []
        with _service_runner(cache_dir, preset) as runner:  # fresh memory tier
            start = time.perf_counter()
            warm_results = runner.run_stream(scenarios, on_record=warm_records.append)
            warm_seconds = time.perf_counter() - start
        assert all(result.cache_tier == "disk" for result in warm_results)
        return cold_records, warm_records, cold_seconds, warm_seconds

    cold_records, warm_records, cold_seconds, warm_seconds = benchmark.pedantic(
        cold_then_warm, rounds=1, iterations=1
    )

    # Cache amortization must not change a single answer.
    assert _stripped(warm_records) == _stripped(cold_records)

    speedup = cold_seconds / warm_seconds
    text = format_table(
        ["path", "seconds", "speedup"],
        [
            ["cold (synthesis + evaluation)", cold_seconds, 1.0],
            ["warm (disk-cache lookups)", warm_seconds, speedup],
        ],
        title=f"Sweep engine: smoke preset, {len(scenarios)} scenarios, shared plan cache",
        float_fmt="{:.4f}",
    )
    save_artifact("sweep_engine", text)
    bench_json(
        "sweep_smoke_cold",
        cold_seconds,
        counters={
            "scenarios": len(scenarios),
            "programs": sum(
                sum(len(m["programs"]) for m in record["matrices"])
                for record in cold_records
            ),
        },
    )
    bench_json(
        "sweep_smoke_warm",
        warm_seconds,
        counters={"scenarios": len(scenarios)},
    )

    # The PR acceptance bar: a warm re-run through the planning service is
    # cache-amortized to at least 5x faster than the cold run.
    assert speedup >= SPEEDUP_BAR, (
        f"warm sweep only {speedup:.1f}x faster than cold (bar: {SPEEDUP_BAR}x)"
    )
