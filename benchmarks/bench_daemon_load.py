"""Benchmark S1 — the daemon under open-loop load: warm hits must be cheap.

Boots a real :class:`~repro.serve.daemon.PlanDaemon` (on a background
thread, ephemeral TCP port) and drives it with the open-loop harness
(:mod:`repro.loadgen`) over actual sockets — framing, admission queue,
executor hand-off and reply serialization are all on the measured path.

Two phases:

* **cold probe** — one sequential request per distinct query against the
  just-booted daemon; every one is a genuine cold plan (synthesis +
  simulation), giving the cold-plan latency distribution.
* **warm run** — a seeded Poisson schedule over the same query mix; every
  request is now a cache hit, giving steady-state serving latency.

The gate: the warm-phase p50 is the ``median_seconds`` the committed
baseline bounds, and the run asserts the paper-shaped serving story — a
warm cache hit must be **at least 10x** cheaper at p99 than a cold plan,
nothing is shed at this offered load, and the cache-hit ratio is exactly 1
after the probe has planned the whole mix.  The request count and mix size
are deterministic per seed, so they gate exactly.
"""

from __future__ import annotations

import pytest

from repro.loadgen import LoadHarness, QueryMix, constant_rate
from repro.obs import Recorder, render_summary
from repro.query import PlanQuery
from repro.serve import DaemonConfig, DaemonThread
from repro.service import PlanningService
from repro.topology import figure2a_system

SPEEDUP_BAR = 10.0  # cold-plan p99 / warm-hit p99
SEED = 7
DURATION_S = 4.0
# Keep the planning thread's utilization low (hits are single-digit ms): at
# 10 req/s Poisson bursts rarely stack, so the warm p99 measures serving,
# not queueing behind the bench machine's own jitter.
OFFERED_RPS = 10.0
CONCURRENCY = 4


def _mix() -> QueryMix:
    """Three distinct *reductions* over one shape (not a payload ladder).

    Distinct reduction axes mean the cold plans share no compiled profiles,
    so each probe miss pays full synthesis + simulation — the honest
    cold-plan latency the 10x bar compares against.  (A payload ladder
    would warm the profile cache on the first query and make the remaining
    "cold" plans nearly free.)
    """
    return QueryMix(
        queries=tuple(
            PlanQuery(
                axes=(4, 4),
                request=reduce_axes,
                bytes_per_device=(1 << 20) * (index + 1),
                max_program_size=3,
            )
            for index, reduce_axes in enumerate([(0,), (1,), (0, 1)])
        )
    )


@pytest.mark.benchmark(group="daemon-load")
def test_daemon_serves_warm_hits_10x_faster_than_cold_plans(
    benchmark, save_artifact, bench_json
):
    recorder = Recorder()
    service = PlanningService(
        figure2a_system(), max_program_size=3, recorder=recorder
    )
    mix = _mix()

    def serve_and_load():
        with DaemonThread(
            service, DaemonConfig(port=0, queue_limit=64), recorder=recorder
        ) as handle:
            host, port = handle.address
            harness = LoadHarness(
                mix,
                constant_rate(OFFERED_RPS),
                DURATION_S,
                host=host,
                port=port,
                seed=SEED,
                concurrency=CONCURRENCY,
                tenants=("alpha", "beta"),
            )
            cold = harness.probe("cold")
            warm = harness.run("warm")
            daemon_snapshot = harness.fetch_daemon_snapshot()
            return cold, warm, daemon_snapshot, len(harness.schedule())

    cold, warm, daemon_snapshot, scheduled = benchmark.pedantic(
        serve_and_load, rounds=1, iterations=1
    )

    text = "\n".join(
        [
            f"Daemon load ({OFFERED_RPS:g} req/s x {DURATION_S:g}s, "
            f"{mix.distinct} distinct queries, {CONCURRENCY} connections)",
            f"  {cold.describe()}",
            f"  {warm.describe()}",
            "",
            render_summary(daemon_snapshot, title="daemon telemetry"),
        ]
    )
    save_artifact("daemon_load", text)

    # The probe hits a genuinely cold daemon; the run is all cache hits.
    assert cold.cache_misses == mix.distinct and cold.cache_hits == 0
    assert cold.miss_latency is not None and warm.hit_latency is not None
    assert warm.offered == scheduled, "the open loop dropped arrivals"
    assert warm.sent == warm.ok, (
        f"{warm.sent - warm.ok} of {warm.sent} requests failed "
        f"(shed {warm.shed}, rate-limited {warm.rate_limited}, errors {warm.errors})"
    )
    assert warm.shed == 0, f"{warm.shed} requests shed at {OFFERED_RPS:g} req/s"
    assert warm.cache_hit_ratio == 1.0, (
        f"cache-hit ratio {warm.cache_hit_ratio:.3f} after the probe planned the mix"
    )
    assert warm.throughput_rps > 0

    # The daemon saw everything the harness sent (probe + run), shed nothing.
    served = daemon_snapshot.counters.get("serve.ok", 0)
    assert served == cold.ok + warm.ok
    assert daemon_snapshot.counters.get("serve.shed", 0) == 0

    cold_p99 = cold.miss_latency["p99_s"]
    warm_hit_p99 = warm.hit_latency["p99_s"]
    speedup = cold_p99 / warm_hit_p99
    assert speedup >= SPEEDUP_BAR, (
        f"warm cache hits are only {speedup:.1f}x faster than cold plans at p99 "
        f"({warm_hit_p99 * 1e3:.1f}ms vs {cold_p99 * 1e3:.1f}ms; bar: {SPEEDUP_BAR:g}x)"
    )

    bench_json(
        "daemon_load",
        warm.latency["p50_s"],
        counters={
            # Deterministic per seed: the Poisson schedule and the mix size.
            "requests": scheduled,
            "distinct_queries": mix.distinct,
        },
        extra={
            "throughput_rps": warm.throughput_rps,
            "p50_latency_s": warm.latency["p50_s"],
            "p99_latency_s": warm.latency["p99_s"],
            "max_latency_s": warm.latency["max_s"],
            "shed_rate": warm.shed_rate,
            "cache_hit_ratio": warm.cache_hit_ratio,
            "cold_p99_latency_s": cold_p99,
            "warm_hit_p99_latency_s": warm_hit_p99,
            "cold_warm_p99_ratio": speedup,
        },
    )
