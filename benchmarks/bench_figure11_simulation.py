"""Benchmark E4/E5 — Figure 11: per-program measured vs. simulated times.

Reproduces the two panels of Figure 11:

* (a) V100, 4 nodes, ring, parallelism ``[2 16]``, reduction on axis 1;
* (b) A100, 4 nodes, tree, parallelism ``[4 2 8]``, reduction on axes 0 and 2.

For each, every synthesized program of every parallelism matrix is measured
on the testbed simulator and predicted by the analytic simulator; the series
(sorted by measured time, as in the figure) is printed and saved.  The
paper's claim is that the predictions "follow the same trend" — asserted here
as a high Spearman rank correlation between the two orderings.
"""

from __future__ import annotations

import pytest

from repro.evaluation.config import figure11_configs
from repro.evaluation.figures import build_figure11
from repro.evaluation.runner import SweepRunner


@pytest.mark.benchmark(group="figure11")
@pytest.mark.parametrize("panel", [0, 1], ids=["11a-v100-ring", "11b-a100-tree"])
def test_figure11_panel(panel, benchmark, payload_scale, measurement_runs, save_artifact):
    config = figure11_configs(payload_scale)[panel]
    runner = SweepRunner(measurement_runs=measurement_runs)

    result = benchmark.pedantic(runner.run, args=(config,), rounds=1, iterations=1)
    series = build_figure11(config, result=result)
    save_artifact(f"figure11_{config.name}", series.render(), preview_lines=25)

    assert series.num_points > 20
    # The predictions must follow the measured trend (paper §5, Figure 11).
    assert series.spearman_correlation() > 0.8
