"""Benchmark E9 — ablation over the synthesis hierarchies (§2.5, §3.4, Theorem 3.2).

P2 synthesizes over the reduction-axis hierarchy (d).  This ablation runs the
synthesizer over all four candidate hierarchies for the paper's Figure 2d
running example and a two-axis GCP configuration, and reports for each
variant: the number of virtual devices (search-space size), synthesis time,
how many programs were synthesized, and how many *valid lowered* programs
they produce after lowering.  The expected picture — and what the benchmark
asserts — is that variant (d) is both the cheapest to search and covers every
valid lowered program the other variants find (the content of Theorem 3.2).
"""

from __future__ import annotations

import time

import pytest

from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.hierarchy import HierarchyVariant, build_synthesis_hierarchy
from repro.synthesis.lowering import lower_synthesized
from repro.synthesis.synthesizer import synthesize_programs
from repro.topology.gcp import a100_system
from repro.utils.tabulate import format_table

VARIANTS = [
    HierarchyVariant.SYSTEM,
    HierarchyVariant.COLUMN,
    HierarchyVariant.ROW,
    HierarchyVariant.REDUCTION,
    HierarchyVariant.REDUCTION_COLLAPSED,
]

CASES = [
    (
        "figure2d: rack system, data 4 x shard 4, reduce shards",
        SystemHierarchy.from_pairs([("rack", 1), ("server", 2), ("cpu", 2), ("gpu", 4)]),
        ParallelismAxes.of(4, 4),
        ((1, 1, 2, 2), (1, 2, 1, 2)),
        ReductionRequest.over(1),
    ),
    (
        "a100 2 nodes, [4 8], reduce axis 0",
        a100_system(2).hierarchy,
        ParallelismAxes.of(4, 8),
        ((2, 2), (1, 8)),
        ReductionRequest.over(0),
    ),
]

MAX_SIZE = 3


def _run_case(name, hierarchy, axes, entries, request):
    matrix = next(
        m for m in enumerate_parallelism_matrices(hierarchy, axes) if m.entries == entries
    )
    placement = DevicePlacement(matrix)
    rows = []
    valid_signatures = {}
    for variant in VARIANTS:
        synthesis_hierarchy = build_synthesis_hierarchy(matrix, request, variant)
        start = time.perf_counter()
        result = synthesize_programs(synthesis_hierarchy, max_program_size=MAX_SIZE)
        elapsed = time.perf_counter() - start
        signatures = set()
        for program in result.programs:
            lowered = lower_synthesized(program, synthesis_hierarchy, placement)
            if lowered.validates_against(placement, request):
                signatures.add(lowered.signature())
        valid_signatures[variant] = signatures
        rows.append(
            [
                name,
                variant.value,
                synthesis_hierarchy.num_virtual_devices,
                result.num_programs,
                len(signatures),
                elapsed,
            ]
        )
    return rows, valid_signatures


@pytest.mark.benchmark(group="hierarchy-ablation")
def test_hierarchy_ablation(benchmark, save_artifact):
    def run_all():
        all_rows = []
        all_signatures = []
        for case in CASES:
            rows, signatures = _run_case(*case)
            all_rows.extend(rows)
            all_signatures.append(signatures)
        return all_rows, all_signatures

    all_rows, all_signatures = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["case", "hierarchy variant", "virtual devices", "programs",
         "valid lowered programs", "synthesis time (s)"],
        all_rows,
        title=f"Synthesis-hierarchy ablation (program size limit {MAX_SIZE})",
        float_fmt="{:.3f}",
    )
    save_artifact("hierarchy_ablation", text, preview_lines=20)

    for signatures in all_signatures:
        reduction = signatures[HierarchyVariant.REDUCTION]
        collapsed = signatures[HierarchyVariant.REDUCTION_COLLAPSED]
        # Theorem 3.2: the reduction-axis hierarchy covers everything the
        # system hierarchy can express, and strictly more.
        assert signatures[HierarchyVariant.SYSTEM] <= reduction
        assert len(reduction) >= len(signatures[HierarchyVariant.SYSTEM])
        # Collapsing same-level factors does not lose strategies here.
        assert collapsed
    # The search space of (d) is never larger than that of (b)/(c).
    for rows in (all_rows[:5], all_rows[5:]):
        sizes = {row[1]: row[2] for row in rows}
        assert sizes[HierarchyVariant.REDUCTION.value] <= sizes[HierarchyVariant.ROW.value]
        assert sizes[HierarchyVariant.REDUCTION_COLLAPSED.value] <= sizes[
            HierarchyVariant.REDUCTION.value
        ]
