"""Benchmark S3 — compiled simulation profiles (the simulator's fast path).

The planner's inner loop simulates every candidate program, and sweeps
re-simulate the same programs across payload ladders.  The compile/price
split (:mod:`repro.cost.profile`) pays Hoare semantics and contention
analysis once per program signature; re-pricing a cached profile for another
payload is a closed-form loop over group equivalence classes.

This benchmark takes every program the synthesis pipeline produces for the
A100 ``[8 4]`` shape, re-prices the whole set across a 4-point payload
ladder through a warm profile cache, and compares against full re-simulation
(the per-group reference path).  The PR acceptance bar is a >= 5x median
speedup.  ``profile_classes`` (total equivalence classes across the compiled
profiles) and program counts are deterministic for the workload and gate
exactly in CI; the speedup is asserted here, not gated by the baseline.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.api import collect_strategy_entries
from repro.cost.simulator import ProgramSimulator
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.synthesis.pipeline import synthesize_all
from repro.topology.gcp import a100_system
from repro.utils.tabulate import format_table

MB = 1 << 20
PAYLOAD_LADDER = tuple(scale * 64 * MB for scale in (0.001, 0.01, 0.1, 1.0))
SPEEDUP_BAR = 5.0
ROUNDS = 5


@pytest.mark.benchmark(group="simulation-profile")
def test_profile_reprice_vs_full_simulation(benchmark, save_artifact, bench_json):
    topology = a100_system(num_nodes=2)
    request = ReductionRequest.over(0)
    candidates = synthesize_all(
        topology.hierarchy, ParallelismAxes.of(8, 4), request, max_program_size=3
    )
    entries = collect_strategy_entries(candidates, request)
    programs = [e.lowered for e in entries if e.lowered.num_steps > 0]

    simulator = ProgramSimulator(topology)
    # Warm the profile cache: every signature compiled exactly once.
    for program in programs:
        simulator.profile_for(program)
    profile_classes = sum(
        simulator.profile_for(program).num_classes for program in programs
    )

    def price_ladder():
        for payload in PAYLOAD_LADDER:
            for program in programs:
                simulator.simulate(program, payload)

    def simulate_ladder():
        for payload in PAYLOAD_LADDER:
            for program in programs:
                simulator.simulate_reference(program, payload)

    def one_round():
        start = time.perf_counter()
        price_ladder()
        price_seconds = time.perf_counter() - start
        start = time.perf_counter()
        simulate_ladder()
        full_seconds = time.perf_counter() - start
        return price_seconds, full_seconds

    rounds = benchmark.pedantic(
        lambda: [one_round() for _ in range(ROUNDS)], rounds=1, iterations=1
    )
    price_median = statistics.median(r[0] for r in rounds)
    full_median = statistics.median(r[1] for r in rounds)
    speedup = full_median / price_median

    # Sanity: the fast path and the reference path agree to the last ulp on
    # one probe payload (the full contract lives in tests/test_cost_profile.py).
    probe = PAYLOAD_LADDER[1]
    assert all(
        simulator.simulate(p, probe) == simulator.simulate_reference(p, probe)
        for p in programs[:5]
    )

    # The ladder-memoized batch path prices one vectorized kernel per
    # signature (not per rung) and returns the very same result objects.
    # Its counters are deterministic for the workload and gate exactly.
    ladder_simulator = ProgramSimulator(topology)
    ladder_simulator.set_payload_ladder(PAYLOAD_LADDER)
    for payload in PAYLOAD_LADDER:
        for program in programs:
            assert ladder_simulator.simulate(program, payload) == simulator.simulate(
                program, payload
            )

    text = format_table(
        ["path", "median seconds (ladder)", "speedup"],
        [
            ["full re-simulation (semantics + contention)", full_median, 1.0],
            ["profile re-pricing (cached compile)", price_median, speedup],
        ],
        title=(
            f"Simulation profiles: {len(programs)} programs x "
            f"{len(PAYLOAD_LADDER)}-point payload ladder "
            f"({profile_classes} equivalence classes)"
        ),
        float_fmt="{:.4f}",
    )
    save_artifact("simulation_profile", text)
    bench_json(
        "simulation_profile",
        price_median,
        counters={
            "programs": len(programs),
            "payloads": len(PAYLOAD_LADDER),
            "profile_classes": profile_classes,
            "ladder_batch_prices": ladder_simulator.batch_prices,
            "ladder_batch_payloads": ladder_simulator.batch_payloads,
            "ladder_batch_fallbacks": ladder_simulator.batch_fallbacks,
        },
    )

    # The PR acceptance bar: re-pricing a cached program across the ladder is
    # at least 5x faster than full re-simulation.
    assert speedup >= SPEEDUP_BAR, (
        f"profile re-pricing only {speedup:.1f}x faster than full simulation "
        f"(bar: {SPEEDUP_BAR}x)"
    )
