"""Benchmark E1 — Table 3: impact of parallelism placement on AllReduce.

Regenerates, for every parallelism matrix of the paper's four shape groups
(A100 ``[2 32]``/``[4 16]``/``[8 8]``, V100 ``[8 4]``, 4 nodes each), the
AllReduce time for reduction on axis 0 and axis 1 under NCCL ring and tree —
the rows of Table 3.  The paper's headline (Result 1) is the enormous spread
between matrices for a fixed reduction axis (up to 448x); the benchmark
asserts that the spread is reproduced (>50x) and prints the full table.
"""

from __future__ import annotations

import pytest

from repro.evaluation.tables import build_table3


@pytest.mark.benchmark(group="table3")
def test_table3_placement_impact(benchmark, payload_scale, save_artifact):
    artifact = benchmark.pedantic(
        build_table3,
        kwargs=dict(payload_scale=payload_scale, measured=True),
        rounds=1,
        iterations=1,
    )
    save_artifact("table3_placement_impact", artifact.text, preview_lines=20)

    # Result 1: for at least one shape group and reduction axis the spread
    # across matrices exceeds 50x (the paper reports up to 448x).
    spreads = []
    by_shape = {}
    for row in artifact.rows:
        by_shape.setdefault(row[0], []).append(row)
    for rows in by_shape.values():
        for column in (2, 3, 4, 5):
            times = [row[column] for row in rows if row[column] > 0]
            if len(times) >= 2:
                spreads.append(max(times) / min(times))
    assert max(spreads) > 50.0
