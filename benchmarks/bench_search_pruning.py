"""Benchmark S3 — budgeted branch-and-bound search vs exhaustive enumeration.

The streaming search driver's reason to exist: considering *fewer*
candidates, not just pricing them faster.  This benchmark runs the appendix
grid's 4-node data-parallel rows (both GCP systems, both NCCL algorithms —
the workload family whose winners surface early in enumeration order) twice:

* **exhaustive** — the full collect-evaluate-rank spine, every placement
  synthesized and every strategy priced;
* **budgeted + pruned** — ``PlanQuery.max_candidates`` caps consideration,
  which makes the synthesis source iterate program sizes lazily (the deepest
  iterative-deepening pass is never run for placements the budget cuts) and
  turns on lossless lower-bound pruning against the incumbent.

The acceptance bar: the budgeted run is at least 3x faster *and* returns the
bit-identical best strategy (cost and program signature) for every scenario.
The ``considered`` counter is structural (min(budget, entries) per scenario)
and gates exactly in the committed baseline; the speedup is asserted here,
not gated, because the two timings move together on a shared machine.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.api import P2
from repro.evaluation.config import appendix_configs
from repro.evaluation.scenarios import scenarios_from_configs
from repro.utils.tabulate import format_table

SPEEDUP_BAR = 3.0
CANDIDATE_BUDGET = 24


def _scenarios(payload_scale: float):
    configs = [
        config
        for config in appendix_configs(payload_scale)
        if config.reduction_axes == (0,) and config.num_nodes == 4
    ]
    return scenarios_from_configs(configs)


def _plan(scenario, query):
    # A fresh tool per plan: neither side may warm the other's profile cache.
    tool = P2(scenario.topology(), max_program_size=query.max_program_size)
    start = time.perf_counter()
    outcome = tool.plan(query)
    return outcome, time.perf_counter() - start


@pytest.mark.benchmark(group="search-pruning")
def test_budgeted_search_beats_exhaustive_with_same_winner(
    benchmark, save_artifact, bench_json, payload_scale
):
    scenarios = _scenarios(payload_scale)
    assert scenarios, "the appendix grid lost its 4-node data-parallel rows"

    def both_sweeps():
        rows = []
        exhaustive_total = budgeted_total = 0.0
        considered = bound_rejected = winners_matched = 0
        for scenario in scenarios:
            exhaustive, exhaustive_seconds = _plan(scenario, scenario.query())
            budgeted_query = dataclasses.replace(
                scenario.query(), max_candidates=CANDIDATE_BUDGET
            )
            budgeted, budgeted_seconds = _plan(scenario, budgeted_query)
            exhaustive_total += exhaustive_seconds
            budgeted_total += budgeted_seconds
            considered += budgeted.search["considered"]
            bound_rejected += budgeted.search["bound_rejected"]
            same_winner = (
                budgeted.best.predicted_seconds == exhaustive.best.predicted_seconds
                and budgeted.best.program.signature()
                == exhaustive.best.program.signature()
            )
            winners_matched += same_winner
            rows.append(
                [
                    scenario.name,
                    exhaustive.num_strategies,
                    budgeted.search["considered"],
                    exhaustive_seconds,
                    budgeted_seconds,
                    exhaustive_seconds / budgeted_seconds,
                    "yes" if same_winner else "NO",
                ]
            )
        return (
            rows,
            exhaustive_total,
            budgeted_total,
            considered,
            bound_rejected,
            winners_matched,
        )

    (
        rows,
        exhaustive_total,
        budgeted_total,
        considered,
        bound_rejected,
        winners_matched,
    ) = benchmark.pedantic(both_sweeps, rounds=1, iterations=1)

    speedup = exhaustive_total / budgeted_total
    text = format_table(
        [
            "scenario",
            "strategies",
            "considered",
            "exhaustive (s)",
            "budgeted (s)",
            "speedup",
            "same winner",
        ],
        rows,
        title=(
            f"Budgeted+pruned search (max_candidates={CANDIDATE_BUDGET}) vs "
            f"exhaustive: {len(scenarios)} scenarios, total "
            f"{exhaustive_total:.2f}s -> {budgeted_total:.2f}s "
            f"({speedup:.1f}x)"
        ),
        float_fmt="{:.3f}",
    )
    save_artifact("search_pruning", text)
    bench_json(
        "search_pruning",
        budgeted_total,
        counters={
            "scenarios": len(scenarios),
            "considered": considered,
            "winners_matched": winners_matched,
        },
    )

    # Losslessness is not statistical: every scenario's best must match.
    assert winners_matched == len(scenarios), (
        f"budgeted search changed the winner in "
        f"{len(scenarios) - winners_matched} scenario(s)"
    )
    # The PR acceptance bar: candidate budgets + pruning beat exhaustive
    # enumeration by at least 3x on the appendix-scale grid.
    assert speedup >= SPEEDUP_BAR, (
        f"budgeted search only {speedup:.1f}x faster than exhaustive "
        f"(bar: {SPEEDUP_BAR}x; {bound_rejected} bound-rejected)"
    )
