"""Choosing one placement for a model with two reduction axes.

Megatron-style training combines data parallelism with parameter sharding
(tensor parallelism): every step all-reduces activations over the sharding
axis *and* gradients over the data axis.  Section 4.1 of the paper points out
that a placement that is perfect for one reduction can be terrible for the
other (the B1 vs. B3 trade-off in Table 3), so the placement must be chosen
with all reductions in mind.

This example uses :class:`repro.planner.MultiReductionPlanner` to enumerate
every placement of (data=4, shard=16) on 4 A100 nodes, price both reductions
for each placement (each with its own best synthesized strategy), and pick
the placement minimising the weighted combined cost.

Run with ``python examples/megatron_parameter_sharding.py``.
"""

from __future__ import annotations

from repro.evaluation.workloads import megatron_sharded_layer
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.planner import MultiReductionPlanner, WeightedReduction
from repro.topology.gcp import a100_system

MB = 1 << 20


def main() -> None:
    system = a100_system(num_nodes=4)
    axes = ParallelismAxes.of(4, 16, names=("data", "shard"))
    workload = megatron_sharded_layer(data_parallel=4, model_parallel=16)

    # Gradients reduce once per step over the data axis; the sharded layers
    # all-reduce activations over the shard axis several times per step
    # (weight 4 here), each with a smaller payload.
    reductions = [
        WeightedReduction(
            name="gradients",
            request=ReductionRequest.over(0),
            bytes_per_device=max(workload.phases[1].bytes_per_device, 256 * MB),
            weight=1.0,
        ),
        WeightedReduction(
            name="activations",
            request=ReductionRequest.over(1),
            bytes_per_device=max(workload.phases[0].bytes_per_device, 128 * MB),
            weight=4.0,
        ),
    ]

    planner = MultiReductionPlanner(system)
    plan = planner.plan(axes, reductions)

    print(f"system: {system.name}; parallelism: {axes.describe()}")
    print()
    print(plan.describe(top_k=5))
    print()

    best = plan.best
    print(f"best combined placement: {best.matrix.describe()}")
    for choice in best.choices:
        print(
            f"  {choice.reduction.name:12s}: {choice.seconds * 1e3:8.2f} ms with "
            f"{choice.mnemonic:10s} ({choice.speedup_over_all_reduce:.2f}x over AllReduce)"
        )
    print()
    advantage = plan.advantage_over_single_axis_choice()
    if advantage > 1.01:
        print(
            "picking the placement greedily for the heaviest reduction alone would be "
            f"{advantage:.2f}x slower overall — the paper's B1/B3 trade-off: a placement "
            "that makes one reduction nearly free can make the other catastrophic, so all "
            "reductions must be priced together."
        )
    else:
        print(
            "here the greedy single-reduction choice happens to coincide with the combined "
            "optimum; shift the payload balance and it no longer does (the paper's B1/B3 "
            "trade-off)."
        )


if __name__ == "__main__":
    main()
