"""Walk through the paper's running example (Figures 2 and 3) step by step.

The system is the rack of Figure 2a: 1 rack, 2 servers, 2 CPUs per server,
4 GPUs per CPU.  The workload combines 4-way data parallelism with 4
parameter shards.  This example shows, with the library's own objects:

* every parallelism matrix (Figure 2b/2c/2d and the fourth one),
* the device markers ``n/m`` of Figure 2 for a chosen matrix,
* the reduction groups for a reduction over the sharding axis,
* the synthesis hierarchy P2 derives from the matrix (Table 1),
* every synthesized reduction strategy, including the two highlighted in
  Figure 3, with their predicted cost on a plausible rack network.

Run with ``python examples/placement_exploration.py``.
"""

from __future__ import annotations

from repro.baselines.allreduce import default_all_reduce
from repro.cost.simulator import simulate_program
from repro.dsl.pretty import program_mnemonic
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import lower_synthesized
from repro.synthesis.synthesizer import synthesize_programs
from repro.topology.gcp import figure2a_system
from repro.utils.tabulate import format_table

MB = 1 << 20
GPU_NAMES = [f"{chr(ord('A') + cpu)}{gpu}" for cpu in range(4) for gpu in range(4)]


def main() -> None:
    system = figure2a_system()
    hierarchy = system.hierarchy
    axes = ParallelismAxes.of(4, 4, names=("data", "shard"))
    request = ReductionRequest.over(1)  # reduce along parameter sharding

    print(f"system hierarchy: {hierarchy.describe()}")
    print(f"parallelism axes: {axes.describe()}, {request.describe(axes)}")
    print()

    # 1. Placement synthesis (Figure 2).
    matrices = enumerate_parallelism_matrices(hierarchy, axes)
    print(f"{len(matrices)} parallelism matrices (vs 16! > 2^44 naive assignments):")
    for matrix in matrices:
        print(f"  {matrix.describe()}")
    print()

    # 2. The Figure 2d matrix in detail: device markers and reduction groups.
    matrix = next(m for m in matrices if m.entries == ((1, 1, 2, 2), (1, 2, 1, 2)))
    placement = DevicePlacement(matrix)
    print(f"device markers (data/shard) for matrix {matrix.describe()}:")
    markers = [
        f"{GPU_NAMES[d]}={placement.describe_device(d)}" for d in range(hierarchy.num_devices)
    ]
    for start in range(0, 16, 4):
        print("  " + "  ".join(markers[start : start + 4]))
    groups = placement.reduction_groups(request)
    print("reduction groups (devices holding the same batch, different shards):")
    for group in groups:
        print("  {" + ", ".join(GPU_NAMES[d] for d in group) + "}")
    print()

    # 3. The synthesis hierarchy P2 uses (Table 1, entry 3).
    synthesis_hierarchy = build_synthesis_hierarchy(matrix, request)
    print(f"synthesis hierarchy: {synthesis_hierarchy.describe()}")
    print()

    # 4. Strategy synthesis (Figure 3) and costing on the rack network.
    result = synthesize_programs(synthesis_hierarchy, max_program_size=3)
    print(f"{result.num_programs} strategies synthesized in {result.elapsed_seconds:.3f}s")
    rows = []
    baseline = default_all_reduce(placement, request)
    baseline_time = simulate_program(baseline, system, 64 * MB).total_seconds
    for synthesized in result.programs:
        lowered = lower_synthesized(synthesized, synthesis_hierarchy, placement)
        seconds = simulate_program(lowered, system, 64 * MB).total_seconds
        rows.append(
            [
                program_mnemonic(synthesized.program),
                synthesized.describe(synthesis_hierarchy.names),
                seconds * 1e3,
                baseline_time / seconds if seconds > 0 else 1.0,
            ]
        )
    rows.sort(key=lambda r: r[2])
    print(
        format_table(
            ["strategy", "program", "time (ms)", "speedup vs AllReduce"],
            rows[:12],
            title="Synthesized reduction strategies for the Figure 2d placement (64 MB per GPU)",
            float_fmt="{:.2f}",
        )
    )


if __name__ == "__main__":
    main()
