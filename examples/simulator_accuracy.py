"""How well does the analytic simulator rank strategies? (Figure 11 / Table 5.)

P2 synthesizes hundreds of (placement, strategy) candidates; evaluating all of
them on real hardware is expensive, so the analytic simulator is used to
short-list a handful.  This example runs one configuration end to end, prints
the measured-vs-simulated series of Figure 11 and the rank of the truly best
program in the simulator's ordering.

Run with ``python examples/simulator_accuracy.py``.
"""

from __future__ import annotations

from repro.cost.nccl import NCCLAlgorithm
from repro.evaluation.accuracy import rank_of_measured_best
from repro.evaluation.config import ExperimentConfig, SystemKind
from repro.evaluation.figures import build_figure11
from repro.evaluation.runner import SweepRunner


def main() -> None:
    # The Figure 11a configuration, scaled down so the example runs in seconds.
    config = ExperimentConfig(
        name="figure11a-demo",
        system=SystemKind.V100,
        num_nodes=4,
        axes=(2, 16),
        reduction_axes=(1,),
        algorithm=NCCLAlgorithm.RING,
        payload_scale=0.05,
        max_program_size=4,
    )
    print(config.describe())
    print()

    runner = SweepRunner(measurement_runs=2)
    result = runner.run(config)
    print(result.describe())
    print()

    series = build_figure11(config, result=result)
    print(series.render(max_rows=20))
    print()

    rank = rank_of_measured_best(result)
    print(f"the measured-best program is ranked #{rank} by the simulator "
          f"out of {result.total_programs} candidates")
    print("(Table 5 of the paper aggregates this rank over all experiments: "
          "52% top-1, 75% top-5, 92% top-10)")


if __name__ == "__main__":
    main()
