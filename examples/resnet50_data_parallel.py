"""ResNet-50 data-parallel training on 4 nodes of 8 V100 GPUs.

The paper's introduction reports that P2 improved ResNet-50 data-parallel
training by 15% on exactly this system.  This example rebuilds that
experiment on the simulated substrate:

* the per-step gradient all-reduce payload is the full ResNet-50 model
  (25.6M float32 parameters, ~102 MB),
* the default strategy is a single AllReduce over all 32 replicas,
* P2 instead picks a placement-aware hierarchical strategy,
* the end-to-end effect is computed with the training-step model from
  :mod:`repro.evaluation.workloads`.

Run with ``python examples/resnet50_data_parallel.py``.
"""

from __future__ import annotations

from repro.api import P2
from repro.evaluation.workloads import resnet50_data_parallel
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import PlanQuery
from repro.topology.gcp import v100_system


def main() -> None:
    num_nodes = 4
    system = v100_system(num_nodes=num_nodes)
    replicas = system.num_devices  # 32-way data parallelism
    # Per-replica batch of 64 images: roughly 75 ms of compute per step on a
    # V100, which puts the gradient all-reduce at ~25-35% of the step — the
    # regime of the paper's ResNet-50 experiment.
    workload = resnet50_data_parallel(replicas, compute_seconds=0.075)
    gradient_bytes = workload.phases[0].bytes_per_device

    print(f"system: {system.name} ({replicas} GPUs)")
    print(f"gradient payload per GPU: {gradient_bytes / 1e6:.1f} MB")
    print()

    p2 = P2(system)
    plan = p2.plan(
        PlanQuery(
            axes=ParallelismAxes.of(replicas, names=("data",)),
            request=ReductionRequest.over(0),
            bytes_per_device=gradient_bytes,
        )
    ).plan

    default = plan.default_all_reduce()
    best = plan.best
    print(plan.describe(top_k=5))
    print()

    # Use the testbed measurements (which include cross-PCIe-domain losses and
    # noise, like the real system) for the end-to-end comparison.
    default_comm = p2.measure(default, gradient_bytes, num_runs=3).total_seconds
    best_comm = p2.measure(best, gradient_bytes, num_runs=3).total_seconds
    print(f"default AllReduce: {default_comm * 1e3:.1f} ms per step (measured)")
    print(f"best strategy:     {best_comm * 1e3:.1f} ms per step "
          f"({best.mnemonic}, matrix {best.matrix.describe()})")

    # Translate the communication improvement into an end-to-end step improvement.
    baseline_step = workload.step_time({"gradients": default_comm})
    optimized_step = workload.step_time({"gradients": best_comm})
    improvement = workload.improvement(
        {"gradients": default_comm}, {"gradients": best_comm}
    )
    print()
    print(f"step time with default AllReduce: {baseline_step * 1e3:.1f} ms "
          f"({workload.communication_fraction({'gradients': default_comm}) * 100:.0f}% communication)")
    print(f"step time with P2 strategy:       {optimized_step * 1e3:.1f} ms")
    print(f"end-to-end training-step improvement: {improvement * 100:.1f}% "
          f"(paper reports ~15% on this system)")

    # Confirm the chosen strategy is numerically correct.
    report = p2.verify(best, ReductionRequest.over(0))
    print()
    print(f"numerical verification: {report.describe()}")


if __name__ == "__main__":
    main()
