"""Projecting communication costs for a hypothetical future system.

The paper's conclusion suggests P2 is "also useful for establishing
projections about communication costs when investigating new system
hierarchies".  This example models a three-level data-center design — racks
of nodes of GPUs with three very different interconnect tiers — that does not
exist in the paper's evaluation, and asks:

* which placement of (data x shard) parallelism minimises gradient reduction
  time on it, and
* how much a proposed NIC upgrade (25 GB/s instead of 8 GB/s) would actually
  help once the reduction strategy is re-synthesized for the new balance.

Run with ``python examples/custom_topology.py``.
"""

from __future__ import annotations

from repro.api import P2
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import PlanQuery
from repro.topology.builders import hierarchical_system
from repro.topology.links import GB, LinkKind

MB = 1 << 20


def build_system(nic_gbps: float):
    """Two racks x 4 nodes x 8 GPUs with a rack network, per-node NICs and NVSwitches."""
    return hierarchical_system(
        levels=[("rack", 2), ("node", 4), ("gpu", 8)],
        bandwidths=[3 * GB, nic_gbps * GB, 200 * GB],
        kinds=[LinkKind.DCN, LinkKind.NIC, LinkKind.NVSWITCH],
        name=f"future-dc-{nic_gbps:.0f}gbps",
        nic_level=1,
    )


def main() -> None:
    # 32-way data parallelism (necessarily spanning several nodes) combined
    # with 2-way sharding; the gradient reduction runs over the data axis.
    query = PlanQuery(
        axes=ParallelismAxes.of(32, 2, names=("data", "shard")),
        request=ReductionRequest.over(0),
        bytes_per_device=512 * MB,
        max_program_size=3,
    )

    for nic_gbps in (8.0, 25.0):
        system = build_system(nic_gbps)
        p2 = P2(system, max_program_size=3)
        plan = p2.plan(query).plan
        best = plan.best
        default = plan.default_all_reduce()
        print(f"=== {system.name} ===")
        print(system.describe())
        print()
        print(plan.describe(top_k=5))
        print()
        print(f"best placement/strategy: {best.matrix.describe()} / {best.mnemonic} "
              f"-> {best.predicted_seconds * 1e3:.1f} ms")
        print(f"default AllReduce (best placement): {default.predicted_seconds * 1e3:.1f} ms")
        print(f"speedup from synthesis on this hierarchy: {plan.speedup_over_default():.2f}x")
        print()

    print("note how the proposed NIC upgrade changes the projection: the absolute "
          "reduction time drops by ~3x, and the benefit of the hierarchical strategy "
          "over a plain AllReduce shrinks (the slow tier it works around got faster) — "
          "exactly the kind of what-if analysis the paper's conclusion describes.")


if __name__ == "__main__":
    main()
