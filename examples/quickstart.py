"""Quickstart: synthesize and rank reduction strategies for one system.

This example mirrors the paper's core workflow:

1. describe the hardware (2 nodes x 16 A100 GPUs),
2. describe the parallelism (8-way data parallelism x 4-way parameter
   sharding) and which axis must be reduced (the data-parallel gradients),
3. let P2 enumerate every parallelism placement and every reduction strategy,
   rank them with the topology-aware simulator, and
4. inspect, verify and (testbed-)measure the winner.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.api import P2
from repro.cost.nccl import NCCLAlgorithm
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import PlanQuery
from repro.topology.gcp import a100_system

MB = 1 << 20


def main() -> None:
    # 1. The system: 2 nodes, each with 16 A100s behind one NVSwitch and one NIC.
    system = a100_system(num_nodes=2)
    print(system.describe())
    print()

    # 2. The workload as a PlanQuery: 8-way data parallelism, 4-way parameter
    #    sharding, gradient reduction over the data-parallel axis, 256 MB per
    #    GPU.  The query object is the planning API's currency — the same
    #    dict-serializable form drives the planning service and the sweeps.
    query = PlanQuery(
        axes=ParallelismAxes.of(8, 4, names=("data", "shard")),
        request=ReductionRequest.over(0),
        bytes_per_device=256 * MB,
        algorithm=NCCLAlgorithm.RING,
    )

    # 3. Synthesize placements + strategies and rank them.  The outcome
    #    carries the ranked plan plus provenance: timings, search counters
    #    and the speedup over each paper baseline.
    p2 = P2(system)
    outcome = p2.plan(query)
    plan = outcome.plan
    print(plan.describe(top_k=8))
    print()
    for name, speedup in sorted(outcome.baseline_speedups().items()):
        rendered = "inf" if speedup is None else f"{speedup:.2f}"
        print(f"speedup over {name} baseline (best placement): {rendered}x")
    print()

    best = plan.best
    default = plan.default_all_reduce()
    print(f"default AllReduce (best placement): {default.describe()}")
    print(f"best synthesized strategy:          {best.describe()}")
    print(f"predicted speedup over the default: {plan.speedup_over_default():.2f}x")
    print("(the 8-way reduction fits inside one node, so the best move is the")
    print(" placement itself: keep the data-parallel axis local and AllReduce there)")
    print()

    # Placement is often constrained in practice (e.g. the sharding axis must
    # stay inside a node because of its own activation all-reduces).  Pin the
    # placement that spreads the data axis across nodes and compare the
    # synthesized strategies against the default AllReduce *for that matrix*.
    constrained_matrix = next(
        s.matrix for s in plan.strategies if s.matrix.describe() == "[[2 4] [1 4]]"
    )
    constrained = plan.strategies_for_matrix(constrained_matrix)
    constrained_best = constrained[0]
    constrained_default = plan.default_all_reduce(constrained_matrix)
    print(f"with the placement pinned to {constrained_matrix.describe()} (data axis crosses nodes):")
    print(f"  default AllReduce:       {constrained_default.predicted_seconds:.4f}s")
    print(f"  best synthesized ({constrained_best.mnemonic}): {constrained_best.predicted_seconds:.4f}s "
          f"-> {constrained_default.predicted_seconds / constrained_best.predicted_seconds:.2f}x speedup")
    print()

    # 4a. Why is it fast?  Per-step breakdown from the analytic simulator.
    detail = p2.simulate(constrained_best, bytes_per_device)
    print(detail.describe())
    print()

    # 4b. Check the strategy actually computes the requested reduction, and
    #     measure it on the flow-level testbed simulator.
    report = p2.verify(constrained_best, request)
    print(f"numerical verification: {report.describe()}")
    measurement = p2.measure(constrained_best, bytes_per_device, num_runs=3)
    print(f"testbed measurement:    {measurement.describe()}")


if __name__ == "__main__":
    main()
