"""Cross-module property-based tests.

These tie the whole stack together on randomly drawn (small) problem
instances: every synthesized program must lower, validate symbolically,
verify numerically, and be priceable by both the analytic simulator and the
testbed simulator with sane relationships between the results.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator, simulate_program
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.runtime.verification import verify_against_placement
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import lower_synthesized
from repro.synthesis.synthesizer import synthesize_programs
from repro.topology.builders import hierarchical_system
from repro.topology.gcp import a100_system
from repro.topology.links import GB

MB = 1 << 20

# Small hierarchies keep every example fast while still exercising multi-level
# structure (2 or 3 levels, 4-16 devices).
SYSTEM_SHAPES = st.sampled_from(
    [
        (2, 2),
        (2, 4),
        (4, 2),
        (2, 8),
        (2, 2, 2),
        (2, 2, 4),
    ]
)


def _axes_for(total: int, num_axes: int):
    """Deterministic factorization of ``total`` into ``num_axes`` axis sizes."""
    sizes = []
    remaining = total
    for _ in range(num_axes - 1):
        factor = 2 if remaining % 2 == 0 and remaining > 1 else 1
        sizes.append(factor)
        remaining //= factor
    sizes.append(remaining)
    return ParallelismAxes(tuple(sizes))


class TestSynthesisToNumericsPipeline:
    @given(SYSTEM_SHAPES, st.integers(min_value=1, max_value=2), st.integers(min_value=0, max_value=1))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_program_is_correct_end_to_end(self, shape, num_axes, reduction_axis):
        hierarchy = SystemHierarchy.from_cardinalities(list(shape))
        axes = _axes_for(hierarchy.num_devices, num_axes)
        reduction_axis = min(reduction_axis, axes.num_axes - 1)
        if axes.sizes[reduction_axis] < 2:
            return  # nothing to reduce
        request = ReductionRequest.over(reduction_axis)
        for matrix in enumerate_parallelism_matrices(hierarchy, axes):
            placement = DevicePlacement(matrix)
            synthesis_hierarchy = build_synthesis_hierarchy(matrix, request)
            result = synthesize_programs(synthesis_hierarchy, max_program_size=3)
            for synthesized in result.programs[:20]:
                lowered = lower_synthesized(synthesized, synthesis_hierarchy, placement)
                assert lowered.validates_against(placement, request)
                report = verify_against_placement(lowered, placement, request, elems_per_chunk=1)
                assert report.ok, report.describe()

    @given(SYSTEM_SHAPES)
    @settings(max_examples=8, deadline=None)
    def test_all_reduce_baseline_always_correct(self, shape):
        hierarchy = SystemHierarchy.from_cardinalities(list(shape))
        axes = ParallelismAxes.of(hierarchy.num_devices)
        request = ReductionRequest.over(0)
        matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
        placement = DevicePlacement(matrix)
        program = default_all_reduce(placement, request)
        assert verify_against_placement(program, placement, request).ok


class TestCostModelProperties:
    @given(
        st.floats(min_value=8, max_value=400),
        st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=20, deadline=None)
    def test_more_nic_bandwidth_never_hurts(self, nic_gbs, payload_mb):
        axes = ParallelismAxes.of(32)
        request = ReductionRequest.over(0)

        def time_with(bandwidth_gbs):
            system = hierarchical_system(
                [("node", 2), ("gpu", 16)],
                bandwidths=[bandwidth_gbs * GB, 270 * GB],
                name="prop",
            )
            matrix = enumerate_parallelism_matrices(system.hierarchy, axes)[0]
            placement = DevicePlacement(matrix)
            program = default_all_reduce(placement, request)
            return simulate_program(program, system, payload_mb * MB).total_seconds

        assert time_with(nic_gbs * 2) <= time_with(nic_gbs) + 1e-12

    @given(st.integers(min_value=1, max_value=512), st.integers(min_value=2, max_value=512))
    @settings(max_examples=20, deadline=None)
    def test_larger_payload_never_faster(self, small_mb, extra_mb):
        system = a100_system(num_nodes=2)
        axes = ParallelismAxes.of(32)
        request = ReductionRequest.over(0)
        matrix = enumerate_parallelism_matrices(system.hierarchy, axes)[0]
        placement = DevicePlacement(matrix)
        program = default_all_reduce(placement, request)
        simulator = ProgramSimulator(system, CostModel())
        small = simulator.simulate(program, small_mb * MB).total_seconds
        large = simulator.simulate(program, (small_mb + extra_mb) * MB).total_seconds
        assert large >= small

    @given(st.sampled_from(list(NCCLAlgorithm)), st.integers(min_value=16, max_value=1024))
    @settings(max_examples=10, deadline=None)
    def test_prediction_positive_and_finite(self, algorithm, payload_mb):
        system = a100_system(num_nodes=2)
        axes = ParallelismAxes.of(8, 4)
        request = ReductionRequest.over(0)
        for matrix in enumerate_parallelism_matrices(system.hierarchy, axes):
            placement = DevicePlacement(matrix)
            program = default_all_reduce(placement, request)
            seconds = simulate_program(
                program, system, payload_mb * MB, algorithm
            ).total_seconds
            assert 0 < seconds < 3600
