"""Tests for repro.topology (links, machine topologies, builders, GCP systems)."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.hierarchy.levels import SystemHierarchy
from repro.topology.builders import flat_system, hierarchical_system
from repro.topology.gcp import a100_system, v100_system
from repro.topology.links import (
    DCN_NIC_8GBS,
    GB,
    NVLINK_RING_135GBS,
    NVSWITCH_270GBS,
    PCIE_32GBS,
    LinkKind,
    LinkSpec,
)
from repro.topology.topology import MachineTopology


class TestLinkSpec:
    def test_valid_link(self):
        link = LinkSpec("x", LinkKind.NIC, 8 * GB, 5e-6)
        assert link.bandwidth == 8 * GB

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(TopologyError):
            LinkSpec("x", LinkKind.NIC, 0, 1e-6)

    def test_rejects_negative_latency(self):
        with pytest.raises(TopologyError):
            LinkSpec("x", LinkKind.NIC, 1e9, -1e-6)

    def test_scaled(self):
        link = DCN_NIC_8GBS.scaled(2.0)
        assert link.bandwidth == pytest.approx(16 * GB)
        with pytest.raises(TopologyError):
            DCN_NIC_8GBS.scaled(0)

    def test_transfer_time(self):
        link = LinkSpec("x", LinkKind.NIC, 1e9, 1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)
        with pytest.raises(TopologyError):
            link.transfer_time(-1)

    def test_shared_medium_classification(self):
        assert LinkKind.NIC.is_shared_medium
        assert LinkKind.NVLINK_RING.is_shared_medium
        assert LinkKind.PCIE.is_shared_medium
        assert not LinkKind.NVSWITCH.is_shared_medium

    def test_describe(self):
        assert "GB/s" in NVSWITCH_270GBS.describe()


class TestMachineTopology:
    def test_interconnect_count_must_match_levels(self):
        hierarchy = SystemHierarchy.from_cardinalities([2, 4])
        with pytest.raises(TopologyError):
            MachineTopology("bad", hierarchy, (DCN_NIC_8GBS,))

    def test_nic_level_range_checked(self):
        hierarchy = SystemHierarchy.from_cardinalities([2, 4])
        with pytest.raises(TopologyError):
            MachineTopology("bad", hierarchy, (DCN_NIC_8GBS, NVSWITCH_270GBS), nic_level=5)

    def test_span_level_and_links(self, a100_2node):
        # Devices 0 and 1 are in the same node: span = gpu level (1), NVSwitch.
        assert a100_2node.span_level([0, 1]) == 1
        assert a100_2node.link_for_group([0, 1]).kind == LinkKind.NVSWITCH
        # Devices 0 and 16 are in different nodes: span = node level (0), NIC.
        assert a100_2node.span_level([0, 16]) == 0
        assert a100_2node.link_for_group([0, 16]).kind == LinkKind.NIC

    def test_span_level_needs_two_devices(self, a100_2node):
        with pytest.raises(TopologyError):
            a100_2node.span_level([3])

    def test_crosses_nic(self, a100_2node):
        assert a100_2node.crosses_nic([0, 16])
        assert not a100_2node.crosses_nic([0, 15])

    def test_nic_instances_touched(self, a100_2node):
        assert a100_2node.nic_instances_touched([0, 16]) == ((0,), (1,))
        assert a100_2node.nic_instances_touched([0, 1, 2]) == ((0,),)

    def test_effective_cross_bandwidth_uses_host_link(self, v100_2node, a100_2node):
        assert v100_2node.effective_cross_bandwidth() == pytest.approx(8 * GB)
        assert a100_2node.effective_cross_bandwidth() == pytest.approx(8 * GB)

    def test_devices_per_nic_instance(self, a100_2node, v100_2node):
        assert a100_2node.devices_per_nic_instance == 16
        assert v100_2node.devices_per_nic_instance == 8

    def test_describe_lists_levels(self, v100_2node):
        text = v100_2node.describe()
        assert "nvlink-ring" in text and "NICs" in text

    def test_with_hierarchy_compatible_only(self, a100_2node):
        renamed = SystemHierarchy.from_cardinalities([2, 16], ["host", "accelerator"])
        replaced = a100_2node.with_hierarchy(renamed)
        assert replaced.hierarchy.names == ("host", "accelerator")
        with pytest.raises(TopologyError):
            a100_2node.with_hierarchy(SystemHierarchy.from_cardinalities([4, 8]))
        with pytest.raises(TopologyError):
            a100_2node.with_hierarchy(SystemHierarchy.from_cardinalities([32]))


class TestBuilders:
    def test_flat_system(self):
        system = flat_system(8, bandwidth=50 * GB)
        assert system.num_devices == 8
        assert system.span_level([0, 7]) == 0
        with pytest.raises(TopologyError):
            flat_system(0)

    def test_hierarchical_system(self):
        system = hierarchical_system(
            [("node", 2), ("gpu", 4)], bandwidths=[8 * GB, 100 * GB]
        )
        assert system.num_devices == 8
        assert system.interconnect_for_level(0).bandwidth == pytest.approx(8 * GB)
        assert system.interconnect_for_level(1).kind == LinkKind.NVSWITCH

    def test_hierarchical_system_argument_validation(self):
        with pytest.raises(TopologyError):
            hierarchical_system([("node", 2), ("gpu", 4)], bandwidths=[8 * GB])
        with pytest.raises(TopologyError):
            hierarchical_system(
                [("node", 2), ("gpu", 4)], bandwidths=[8 * GB, 9 * GB], latencies=[1e-6]
            )
        with pytest.raises(TopologyError):
            hierarchical_system(
                [("node", 2), ("gpu", 4)],
                bandwidths=[8 * GB, 9 * GB],
                kinds=[LinkKind.NIC],
            )


class TestGCPSystems:
    def test_a100_matches_paper_shape(self):
        system = a100_system(num_nodes=4)
        assert system.hierarchy.cardinalities == (4, 16)
        assert system.interconnect_for_level(1) is NVSWITCH_270GBS
        assert system.interconnect_for_level(0) is DCN_NIC_8GBS
        assert system.host_link is None

    def test_v100_matches_paper_shape(self):
        system = v100_system(num_nodes=2)
        assert system.hierarchy.cardinalities == (2, 8)
        assert system.interconnect_for_level(1) is NVLINK_RING_135GBS
        assert system.host_link is PCIE_32GBS

    def test_bandwidth_assumptions_from_section5(self):
        assert DCN_NIC_8GBS.bandwidth == pytest.approx(8 * GB)
        assert PCIE_32GBS.bandwidth == pytest.approx(32 * GB)
        assert NVLINK_RING_135GBS.bandwidth == pytest.approx(135 * GB)
        assert NVSWITCH_270GBS.bandwidth == pytest.approx(270 * GB)

    def test_invalid_node_counts_rejected(self):
        with pytest.raises(TopologyError):
            a100_system(0)
        with pytest.raises(TopologyError):
            v100_system(num_nodes=2, gpus_per_node=0)

    def test_figure2a_system(self, figure2a_machine):
        assert figure2a_machine.num_devices == 16
        assert figure2a_machine.hierarchy.names == ("rack", "server", "cpu", "gpu")
        assert figure2a_machine.nic_level == 1
        # GPUs under one CPU use the fast local link.
        assert figure2a_machine.link_for_group([0, 1]).kind == LinkKind.NVLINK_RING
        # GPUs under the same server but different CPUs stay below the NIC ...
        assert not figure2a_machine.crosses_nic([0, 4])
        # ... while GPUs under different servers cross it.
        assert figure2a_machine.crosses_nic([0, 8])
