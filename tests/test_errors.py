"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        exception_types = [
            obj
            for obj in vars(errors).values()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert errors.ReproError in exception_types
        for exc in exception_types:
            assert issubclass(exc, errors.ReproError)

    def test_specialisations(self):
        assert issubclass(errors.PlacementError, errors.HierarchyError)
        assert issubclass(errors.InvalidCollectiveError, errors.SemanticsError)
        assert issubclass(errors.LoweringError, errors.SynthesisError)
        assert issubclass(errors.VerificationError, errors.RuntimeExecutionError)

    def test_single_except_clause_catches_everything(self):
        for exc in (
            errors.HierarchyError,
            errors.DSLError,
            errors.SynthesisError,
            errors.TopologyError,
            errors.CostModelError,
            errors.EvaluationError,
        ):
            with pytest.raises(errors.ReproError):
                raise exc("boom")
