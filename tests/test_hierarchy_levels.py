"""Tests for repro.hierarchy.levels (SystemHierarchy)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HierarchyError
from repro.hierarchy.levels import Level, SystemHierarchy


class TestLevel:
    def test_valid(self):
        level = Level("gpu", 4)
        assert level.name == "gpu" and level.cardinality == 4

    def test_rejects_empty_name(self):
        with pytest.raises(HierarchyError):
            Level("", 4)

    def test_rejects_non_positive_cardinality(self):
        with pytest.raises(HierarchyError):
            Level("gpu", 0)


class TestConstruction:
    def test_from_pairs(self, figure2a_hierarchy):
        assert figure2a_hierarchy.names == ("rack", "server", "cpu", "gpu")
        assert figure2a_hierarchy.cardinalities == (1, 2, 2, 4)

    def test_from_cardinalities_default_names(self):
        h = SystemHierarchy.from_cardinalities([2, 8])
        assert h.names == ("level0", "level1")

    def test_from_cardinalities_with_names(self):
        h = SystemHierarchy.from_cardinalities([2, 8], ["node", "gpu"])
        assert h.names == ("node", "gpu")

    def test_name_length_mismatch(self):
        with pytest.raises(HierarchyError):
            SystemHierarchy.from_cardinalities([2, 8], ["only-one"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(HierarchyError):
            SystemHierarchy.from_pairs([("gpu", 2), ("gpu", 4)])

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(HierarchyError):
            SystemHierarchy(())


class TestQueries:
    def test_num_devices(self, figure2a_hierarchy):
        assert figure2a_hierarchy.num_devices == 16

    def test_level_index(self, figure2a_hierarchy):
        assert figure2a_hierarchy.level_index("cpu") == 2
        with pytest.raises(HierarchyError):
            figure2a_hierarchy.level_index("tpu")

    def test_len_iter_getitem(self, figure2a_hierarchy):
        assert len(figure2a_hierarchy) == 4
        assert [level.name for level in figure2a_hierarchy] == [
            "rack",
            "server",
            "cpu",
            "gpu",
        ]
        assert figure2a_hierarchy[3].cardinality == 4

    def test_describe(self, figure2a_hierarchy):
        assert figure2a_hierarchy.describe() == "[(rack, 1), (server, 2), (cpu, 2), (gpu, 4)]"


class TestDeviceAddressing:
    def test_roundtrip_all_devices(self, figure2a_hierarchy):
        for d in range(figure2a_hierarchy.num_devices):
            coords = figure2a_hierarchy.device_coordinates(d)
            assert figure2a_hierarchy.device_id(coords) == d

    def test_device_zero_is_all_zero(self, figure2a_hierarchy):
        assert figure2a_hierarchy.device_coordinates(0) == (0, 0, 0, 0)

    def test_devices_under_cpu(self, figure2a_hierarchy):
        # First CPU of the first server holds devices 0..3 (the paper's A0..A3).
        assert figure2a_hierarchy.devices_under(2, (0, 0, 0)) == [0, 1, 2, 3]
        # Second CPU of the second server holds devices 12..15 (D0..D3).
        assert figure2a_hierarchy.devices_under(2, (0, 1, 1)) == [12, 13, 14, 15]

    def test_devices_under_validates_arguments(self, figure2a_hierarchy):
        with pytest.raises(HierarchyError):
            figure2a_hierarchy.devices_under(5, (0,))
        with pytest.raises(HierarchyError):
            figure2a_hierarchy.devices_under(2, (0, 0))

    def test_ancestor_instance(self, figure2a_hierarchy):
        assert figure2a_hierarchy.ancestor_instance(13, 1) == (0, 1)
        assert figure2a_hierarchy.ancestor_instance(13, 2) == (0, 1, 1)

    def test_lowest_common_level(self, figure2a_hierarchy):
        # A0, A1 share rack, server and cpu (level 2).
        assert figure2a_hierarchy.lowest_common_level([0, 1]) == 2
        # A0, B0 share rack and server only (level 1).
        assert figure2a_hierarchy.lowest_common_level([0, 4]) == 1
        # A0, C0 share only the rack (level 0).
        assert figure2a_hierarchy.lowest_common_level([0, 8]) == 0
        # A single device shares everything with itself.
        assert figure2a_hierarchy.lowest_common_level([5]) == 3

    def test_lowest_common_level_needs_devices(self, figure2a_hierarchy):
        with pytest.raises(HierarchyError):
            figure2a_hierarchy.lowest_common_level([])

    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_device_count_is_product(self, cards):
        h = SystemHierarchy.from_cardinalities(cards)
        product = 1
        for c in cards:
            product *= c
        assert h.num_devices == product
        # Round-trip a few device ids.
        for d in range(0, h.num_devices, max(1, h.num_devices // 7)):
            assert h.device_id(h.device_coordinates(d)) == d
