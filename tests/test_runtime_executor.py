"""Tests for the in-memory collective executor and numerical verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.allreduce import default_all_reduce
from repro.baselines.blueconnect import blueconnect
from repro.baselines.hierarchical import reduce_allreduce_broadcast
from repro.errors import RuntimeExecutionError, VerificationError
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.hierarchy.levels import SystemHierarchy
from repro.runtime.cluster import SimCluster
from repro.runtime.executor import CollectiveExecutor, execute_program
from repro.runtime.verification import verify_against_placement, verify_program
from repro.semantics.collectives import Collective
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import LoweredProgram, LoweredStep, lower_synthesized
from repro.synthesis.synthesizer import synthesize_programs


class TestIndividualCollectives:
    def test_all_reduce_sums_buffers(self):
        cluster = SimCluster.create(2, elems_per_chunk=2, init=lambda d: np.full(4, float(d + 1)))
        CollectiveExecutor(cluster).all_reduce([0, 1])
        np.testing.assert_array_equal(cluster[0].full_payload(), np.full(4, 3.0))
        np.testing.assert_array_equal(cluster[1].full_payload(), np.full(4, 3.0))

    def test_reduce_scatter_keeps_contiguous_blocks(self):
        cluster = SimCluster.create(2, elems_per_chunk=1, init=lambda d: np.arange(2, dtype=float))
        CollectiveExecutor(cluster).reduce_scatter([0, 1])
        assert cluster[0].sorted_valid_chunks == (0,)
        assert cluster[1].sorted_valid_chunks == (1,)
        np.testing.assert_array_equal(cluster[0].chunk(0), [0.0])
        np.testing.assert_array_equal(cluster[1].chunk(1), [2.0])

    def test_all_gather_restores_full_payload(self):
        cluster = SimCluster.create(2, elems_per_chunk=1)
        executor = CollectiveExecutor(cluster)
        executor.reduce_scatter([0, 1])
        executor.all_gather([0, 1])
        assert cluster[0].num_valid_chunks == 2
        np.testing.assert_array_equal(cluster[0].full_payload(), cluster[1].full_payload())

    def test_reduce_clears_non_roots(self):
        cluster = SimCluster.create(2, elems_per_chunk=1)
        CollectiveExecutor(cluster).reduce([0, 1])
        assert cluster[0].num_valid_chunks == 2
        assert cluster[1].num_valid_chunks == 0

    def test_broadcast_copies_root(self):
        cluster = SimCluster.create(2, elems_per_chunk=1)
        executor = CollectiveExecutor(cluster)
        executor.reduce([0, 1])
        executor.broadcast([0, 1])
        np.testing.assert_array_equal(cluster[0].full_payload(), cluster[1].full_payload())

    def test_group_validation(self):
        cluster = SimCluster.create(3)
        executor = CollectiveExecutor(cluster)
        with pytest.raises(RuntimeExecutionError):
            executor.all_reduce([0])
        with pytest.raises(RuntimeExecutionError):
            executor.all_reduce([0, 0])
        with pytest.raises(RuntimeExecutionError):
            executor.all_reduce([0, 7])

    def test_mismatched_chunk_sets_rejected(self):
        cluster = SimCluster.create(4, elems_per_chunk=1)
        executor = CollectiveExecutor(cluster)
        executor.reduce_scatter([0, 1])
        with pytest.raises(RuntimeExecutionError):
            executor.all_reduce([0, 1])

    def test_reduce_scatter_divisibility_checked(self):
        cluster = SimCluster.create(3, elems_per_chunk=1)
        with pytest.raises(RuntimeExecutionError):
            CollectiveExecutor(cluster).reduce_scatter([0, 1])

    def test_all_gather_ownership_conflicts_rejected(self):
        cluster = SimCluster.create(2, elems_per_chunk=1)
        with pytest.raises(RuntimeExecutionError):
            CollectiveExecutor(cluster).all_gather([0, 1])


class TestProgramExecution:
    def test_execute_records_trace(self):
        cluster = SimCluster.create(4, elems_per_chunk=1)
        program = LoweredProgram(
            4,
            (
                LoweredStep(Collective.REDUCE_SCATTER, ((0, 1), (2, 3))),
                LoweredStep(Collective.ALL_GATHER, ((0, 1), (2, 3))),
            ),
        )
        trace = execute_program(program, cluster)
        assert trace.num_events == 8  # 2 steps x 2 groups x 2 devices
        assert len(trace.events_for_step(0)) == 4

    def test_device_count_mismatch(self):
        cluster = SimCluster.create(2)
        program = LoweredProgram(4, (LoweredStep(Collective.ALL_REDUCE, ((0, 1),)),))
        with pytest.raises(RuntimeExecutionError):
            execute_program(program, cluster)


class TestVerification:
    def test_default_all_reduce_verifies(self, figure2d_placement, shard_reduction):
        program = default_all_reduce(figure2d_placement, shard_reduction)
        report = verify_against_placement(program, figure2d_placement, shard_reduction)
        assert report.ok
        assert report.max_abs_error < 1e-9

    def test_blueconnect_and_hierarchical_verify(
        self, figure2d_synthesis_hierarchy, figure2d_placement, shard_reduction
    ):
        for builder in (blueconnect, reduce_allreduce_broadcast):
            program = builder(figure2d_synthesis_hierarchy, figure2d_placement)
            report = verify_against_placement(program, figure2d_placement, shard_reduction)
            assert report.ok, report.describe()

    def test_every_synthesized_program_is_numerically_correct(self):
        hierarchy = SystemHierarchy.from_cardinalities([2, 4], ["node", "gpu"])
        axes = ParallelismAxes.of(4, 2)
        request = ReductionRequest.over(0)
        matrix = enumerate_parallelism_matrices(hierarchy, axes)[1]
        placement = DevicePlacement(matrix)
        synthesis_hierarchy = build_synthesis_hierarchy(matrix, request)
        result = synthesize_programs(synthesis_hierarchy, max_program_size=3)
        assert result.num_programs > 0
        for synthesized in result.programs:
            lowered = lower_synthesized(synthesized, synthesis_hierarchy, placement)
            report = verify_against_placement(lowered, placement, request)
            assert report.ok, synthesized.describe(synthesis_hierarchy.names)

    def test_wrong_program_fails_verification(self):
        # An AllReduce over the wrong groups does not implement the request.
        program = LoweredProgram(
            4, (LoweredStep(Collective.ALL_REDUCE, ((0, 1), (2, 3))),)
        )
        report = verify_program(program, [[0, 2], [1, 3]])
        assert not report.ok
        with pytest.raises(VerificationError):
            verify_program(program, [[0, 2], [1, 3]], raise_on_failure=True)

    def test_incomplete_program_fails_verification(self):
        program = LoweredProgram(
            4, (LoweredStep(Collective.REDUCE_SCATTER, ((0, 1), (2, 3))),)
        )
        report = verify_program(program, [[0, 1], [2, 3]])
        assert not report.ok
        assert any("chunks" in failure for failure in report.failures)

    def test_report_mentions_uncovered_devices(self):
        program = LoweredProgram(4, (LoweredStep(Collective.ALL_REDUCE, ((0, 1),)),))
        report = verify_program(program, [[0, 1]])
        assert not report.ok
        assert any("cover" in failure for failure in report.failures)

    def test_describe(self, figure2d_placement, shard_reduction):
        program = default_all_reduce(figure2d_placement, shard_reduction)
        report = verify_against_placement(program, figure2d_placement, shard_reduction)
        assert report.describe().startswith("PASS")
