"""Tests for the XLA-style emission of lowered programs."""

from __future__ import annotations

import pytest

from repro.baselines.allreduce import default_all_reduce
from repro.baselines.blueconnect import blueconnect
from repro.baselines.hierarchical import reduce_allreduce_broadcast
from repro.compile import (
    emit_xla_module,
    parse_xla_module,
    program_from_module,
)
from repro.errors import ReproError
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.topology.gcp import a100_system


@pytest.fixture(scope="module")
def setup():
    system = a100_system(num_nodes=2)
    axes = ParallelismAxes.of(32)
    request = ReductionRequest.over(0)
    matrix = enumerate_parallelism_matrices(system.hierarchy, axes)[0]
    placement = DevicePlacement(matrix)
    hierarchy = build_synthesis_hierarchy(matrix, request)
    return placement, hierarchy, request


class TestEmission:
    def test_blueconnect_module_structure(self, setup):
        placement, hierarchy, _ = setup
        program = blueconnect(hierarchy, placement)
        module = emit_xla_module(program, element_count=1 << 20)
        text = module.render()
        assert text.startswith("HloModule p2_reduction, num_devices=32")
        assert "reduce-scatter" in text and "all-gather" in text
        assert "replica_groups=" in text and "channel_id=1" in text
        assert text.strip().splitlines()[-1].startswith("ROOT")

    def test_shapes_track_reduce_scatter_and_all_gather(self, setup):
        placement, hierarchy, _ = setup
        program = blueconnect(hierarchy, placement)
        module = emit_xla_module(program, element_count=1 << 20)
        elements = [op.element_count for op in module.ops]
        # RS shrinks by the local group size (16), AG restores it.
        assert elements[0] == (1 << 20) // 16
        assert elements[1] == (1 << 20) // 16
        assert elements[2] == 1 << 20

    def test_rooted_collectives_carry_root(self, setup):
        placement, hierarchy, _ = setup
        program = reduce_allreduce_broadcast(hierarchy, placement)
        module = emit_xla_module(program, element_count=1024)
        assert module.ops[0].root == module.ops[0].replica_groups[0][0]
        assert module.ops[1].root is None

    def test_indivisible_reduce_scatter_rejected(self, setup):
        placement, hierarchy, _ = setup
        program = blueconnect(hierarchy, placement)
        with pytest.raises(ReproError):
            emit_xla_module(program, element_count=7)

    def test_invalid_element_count(self, setup):
        placement, _, request = setup
        program = default_all_reduce(placement, request)
        with pytest.raises(ReproError):
            emit_xla_module(program, element_count=0)


class TestRoundTrip:
    @pytest.mark.parametrize("builder", ["allreduce", "blueconnect", "hierarchical"])
    def test_parse_inverts_emit(self, setup, builder):
        placement, hierarchy, request = setup
        if builder == "allreduce":
            program = default_all_reduce(placement, request)
        elif builder == "blueconnect":
            program = blueconnect(hierarchy, placement)
        else:
            program = reduce_allreduce_broadcast(hierarchy, placement)
        module = emit_xla_module(program, element_count=1 << 16)
        parsed = parse_xla_module(module.render())
        assert parsed.num_devices == 32
        rebuilt = program_from_module(parsed)
        assert rebuilt.signature() == program.signature()
        # The rebuilt program still implements the requested reduction.
        assert rebuilt.validates_against(placement, request)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_xla_module("HloModule x, num_devices=4\n%bad = ???")
        with pytest.raises(ReproError):
            parse_xla_module("%step0 = f32[4] all-reduce(%param), replica_groups={{0,1}}, channel_id=1")

    def test_parse_rejects_unknown_opcode(self):
        text = (
            "HloModule m, num_devices=4\n"
            "%step0 = f32[4] all-to-all(%param), replica_groups={{0,1}}, channel_id=1\n"
        )
        with pytest.raises(ReproError):
            parse_xla_module(text)
