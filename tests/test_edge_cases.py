"""Additional edge-case coverage across modules.

These tests target behaviours not exercised elsewhere: degenerate reduction
requests, collapsed vs. uncollapsed reduction hierarchies producing the same
lowered strategies, contention on the deeper Figure 2a machine, prediction-only
sweep serialization, and report rendering corner cases.
"""

from __future__ import annotations


from repro.analysis import results_from_json, results_to_json
from repro.baselines.allreduce import default_all_reduce
from repro.cost.contention import analyze_step_contention
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import simulate_program
from repro.evaluation.config import ExperimentConfig, SystemKind
from repro.evaluation.report import render_matrix_result
from repro.evaluation.runner import SweepRunner
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective
from repro.synthesis.hierarchy import HierarchyVariant, build_synthesis_hierarchy
from repro.synthesis.lowering import LoweredStep, lower_synthesized
from repro.synthesis.synthesizer import synthesize_programs

MB = 1 << 20


class TestDegenerateReductions:
    def test_reduction_axis_of_size_one_needs_no_communication(self, figure2a_hierarchy):
        axes = ParallelismAxes.of(1, 16)
        matrix = enumerate_parallelism_matrices(figure2a_hierarchy, axes)[0]
        placement = DevicePlacement(matrix)
        request = ReductionRequest.over(0)
        program = default_all_reduce(placement, request)
        assert program.num_steps == 0
        assert program.validates_against(placement, request)

    def test_all_axes_reduced_gives_single_group(self, figure2d_placement):
        request = ReductionRequest.over(0, 1)
        groups = figure2d_placement.reduction_groups(request)
        assert len(groups) == 1
        program = default_all_reduce(figure2d_placement, request)
        assert program.steps[0].group_size == 16


class TestCollapsedVersusUncollapsed:
    def test_collapsing_respects_hardware_boundaries(self, figure2a_hierarchy):
        """Collapsing same-level factors (paper §2.5) keeps the canonical
        strategies and additionally enables groupings aligned with hardware
        levels that the uncollapsed row-major ordering cannot slice out.

        Group members may be ordered differently by the two variants, so the
        comparison normalises each group to its root plus its member set.
        """
        axes = ParallelismAxes.of(4, 4)
        request = ReductionRequest.over(0, 1)
        matrix = enumerate_parallelism_matrices(figure2a_hierarchy, axes)[0]
        placement = DevicePlacement(matrix)

        def normalised(lowered):
            return tuple(
                (
                    step.collective.value,
                    frozenset((group[0], frozenset(group)) for group in step.groups),
                )
                for step in lowered.steps
            )

        def lowered_set(variant):
            hierarchy = build_synthesis_hierarchy(matrix, request, variant)
            result = synthesize_programs(hierarchy, max_program_size=2)
            return {
                normalised(lower_synthesized(p, hierarchy, placement))
                for p in result.programs
            }

        collapsed = lowered_set(HierarchyVariant.REDUCTION_COLLAPSED)
        uncollapsed = lowered_set(HierarchyVariant.REDUCTION)
        # The size-1 and size-2 canonical strategies over the whole group
        # (AllReduce, Reduce-Broadcast, ReduceScatter-AllGather) exist in both.
        shared = collapsed & uncollapsed
        assert len(shared) >= 3
        # Collapsing adds hierarchical patterns whose first step reduces within
        # each server (a hardware boundary), e.g. AllReduce-AllReduce.
        server_groups = frozenset(
            {(0, frozenset(range(0, 8))), (8, frozenset(range(8, 16)))}
        )
        assert any(
            program[0][0] == "AllReduce" and program[0][1] == server_groups
            for program in collapsed
        )
        assert len(collapsed) > len(shared)


class TestFigure2aMachineCosting:
    def test_nic_level_in_the_middle_of_the_hierarchy(self, figure2a_machine):
        # Groups crossing servers load the per-server NICs even though the
        # NIC-owning level is not the root.
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 8), (1, 9), (2, 10), (3, 11)))
        contention = analyze_step_contention(step, figure2a_machine)
        assert all(g.crosses_nic for g in contention.groups)
        assert contention.max_sharing >= 4

    def test_costs_ordered_by_span(self, figure2a_machine):
        request = ReductionRequest.over(1)
        axes = ParallelismAxes.of(4, 4)
        matrices = enumerate_parallelism_matrices(figure2a_machine.hierarchy, axes)
        times = {}
        for matrix in matrices:
            placement = DevicePlacement(matrix)
            program = default_all_reduce(placement, request)
            times[matrix.describe()] = simulate_program(
                program, figure2a_machine, 64 * MB
            ).total_seconds
        # Shards inside one CPU (Figure 2b layout) reduce fastest; shards spread
        # over servers are slower.
        assert times["[[1 2 2 1] [1 1 1 4]]"] < times["[[1 1 2 2] [1 2 1 2]]"]


class TestPredictionOnlySerialization:
    def test_roundtrip_without_measurements(self):
        config = ExperimentConfig(
            name="edge-pred-only",
            system=SystemKind.A100,
            num_nodes=2,
            axes=(32,),
            reduction_axes=(0,),
            payload_scale=0.002,
            max_program_size=2,
        )
        results = SweepRunner(measure_programs=False).run_many([config])
        restored = results_from_json(results_to_json(results))
        program = restored[0].matrices[0].programs[0]
        assert program.measured_seconds is None
        assert program.evaluation_seconds == program.predicted_seconds


class TestReportRendering:
    def test_matrix_report_without_measurements(self):
        config = ExperimentConfig(
            name="edge-report",
            system=SystemKind.V100,
            num_nodes=2,
            axes=(16,),
            reduction_axes=(0,),
            payload_scale=0.002,
            max_program_size=2,
        )
        result = SweepRunner(measure_programs=False).run(config)
        text = render_matrix_result(result.matrices[0], max_programs=2)
        assert "predicted" in text
        assert "speedup" in text


class TestTreeAlgorithmEndToEnd:
    def test_tree_sweep_runs_and_orders_like_ring(self):
        base = ExperimentConfig(
            name="edge-tree",
            system=SystemKind.A100,
            num_nodes=2,
            axes=(4, 8),
            reduction_axes=(0,),
            payload_scale=0.002,
            max_program_size=3,
        )
        runner = SweepRunner(measurement_runs=1)
        ring = runner.run(base)
        tree = runner.run(base.with_algorithm(NCCLAlgorithm.TREE))
        # Under both algorithms the intra-node placement beats the cross-node one.
        def best_time(result, description):
            matrix = next(m for m in result.matrices if m.matrix_description == description)
            return matrix.best().evaluation_seconds

        for result in (ring, tree):
            assert best_time(result, "[[1 4] [2 4]]") < best_time(result, "[[2 2] [1 8]]")
