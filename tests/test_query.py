"""Tests for the PlanQuery/PlanOutcome object model (repro.query)."""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

import pytest

from repro.api import P2, OptimizationPlan
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError, HierarchyError, QueryError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import Planner, PlanQuery
from repro.service import PlanningService
from repro.service.fingerprint import (
    FINGERPRINT_VERSION,
    canonical_plan_query,
    plan_query_fingerprint,
    query_fingerprint,
)
from repro.topology.gcp import a100_system

MB = 1 << 20


def _ranking(plan):
    return [
        (s.matrix.describe(), s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


@pytest.fixture(scope="module")
def topology():
    return a100_system(num_nodes=2)


@pytest.fixture(scope="module")
def query_84():
    return PlanQuery(
        axes=ParallelismAxes.of(8, 4),
        request=ReductionRequest.over(0),
        bytes_per_device=64 * MB,
        max_program_size=3,
    )


@pytest.fixture(scope="module")
def outcome_84(topology, query_84):
    return P2(topology, max_program_size=3).plan(query_84)


class TestPlanQueryRoundTrip:
    QUERIES = [
        PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(0), 64 * MB),
        PlanQuery(
            ParallelismAxes.of(2, 16, names=("dp", "tp")),
            ReductionRequest.over(1),
            1 * MB,
            algorithm=NCCLAlgorithm.TREE,
        ),
        PlanQuery(
            ParallelismAxes.of(32),
            ReductionRequest.over(0),
            7,
            max_matrices=3,
            max_program_size=2,
        ),
        PlanQuery(
            ParallelismAxes.of(4, 4, 2),
            ReductionRequest.over(0, 2),
            1 << 28,
            max_matrices=None,
            max_program_size=5,
        ),
    ]

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.describe())
    def test_dict_roundtrip_is_lossless(self, query):
        assert PlanQuery.from_dict(query.to_dict()) == query

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.describe())
    def test_json_roundtrip_is_lossless(self, query):
        assert PlanQuery.from_json(query.to_json()) == query
        # and the encoding is plain, strict JSON
        assert json.loads(query.to_json()) == query.to_dict()

    def test_to_dict_key_order_is_stable(self, query_84):
        assert list(query_84.to_dict().keys()) == [
            "axes",
            "request",
            "bytes_per_device",
            "algorithm",
            "max_matrices",
            "max_program_size",
            "max_candidates",
            "time_budget_s",
        ]

    def test_from_dict_accepts_legacy_file_shape(self):
        legacy = {"axes": [8, 4], "reduce": [0], "bytes": 64 * MB, "algorithm": "tree"}
        query = PlanQuery.from_dict(legacy, max_program_size=3)
        assert query == PlanQuery(
            ParallelismAxes.of(8, 4),
            ReductionRequest.over(0),
            64 * MB,
            algorithm=NCCLAlgorithm.TREE,
            max_program_size=3,
        )

    def test_from_dict_defaults_only_fill_missing_keys(self):
        data = PlanQuery(
            ParallelismAxes.of(4, 4), ReductionRequest.over(0), 5 * MB, max_matrices=2
        ).to_dict()
        query = PlanQuery.from_dict(data, bytes_per_device=1, max_matrices=9)
        assert query.bytes_per_device == 5 * MB  # dict value wins
        assert query.max_matrices == 2  # explicit key wins over the default
        legacy = {"axes": [4, 4], "reduce": [0]}
        assert PlanQuery.from_dict(legacy, bytes_per_device=3 * MB).bytes_per_device == 3 * MB

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(QueryError):
            PlanQuery.from_dict({"reduce": [0]})  # no axes
        with pytest.raises(QueryError):
            PlanQuery.from_dict({"axes": [8, 4]})  # no request/reduce
        with pytest.raises(QueryError):
            PlanQuery.from_dict({"axes": [8, 4], "reduce": [0]})  # no payload anywhere
        with pytest.raises(QueryError):
            PlanQuery.from_dict([1, 2, 3])  # not an object

    def test_from_spec_parses_legacy_cli_strings(self):
        query = PlanQuery.from_spec("2,16:1:1048576:tree", max_program_size=3)
        assert query == PlanQuery(
            ParallelismAxes.of(2, 16),
            ReductionRequest.over(1),
            1 << 20,
            algorithm=NCCLAlgorithm.TREE,
            max_program_size=3,
        )
        defaulted = PlanQuery.from_spec("8,4:0", bytes_per_device=64 * MB)
        assert defaulted.bytes_per_device == 64 * MB
        assert defaulted.algorithm == NCCLAlgorithm.RING

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(QueryError):
            PlanQuery.from_spec("oops")
        with pytest.raises(QueryError):
            PlanQuery.from_spec("8x4:0:123")
        with pytest.raises(QueryError):
            PlanQuery.from_spec("8,4:0:123:nccl")
        with pytest.raises(QueryError):
            PlanQuery.from_spec("8,4:0")  # no payload and no default


class TestPlanQueryValidation:
    def test_coerces_loose_inputs_to_one_canonical_form(self):
        loose = PlanQuery((8, 4), (0,), 1 * MB, algorithm="ring")
        strict = PlanQuery(
            ParallelismAxes.of(8, 4), ReductionRequest.over(0), 1 * MB,
            algorithm=NCCLAlgorithm.RING,
        )
        assert loose == strict

    def test_rejects_bad_payload(self):
        with pytest.raises(QueryError):
            PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(0), 0)
        # QueryError is an EvaluationError, so pre-redesign handlers still fire.
        with pytest.raises(EvaluationError):
            PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(0), -1)

    def test_rejects_non_integral_payload(self):
        with pytest.raises(QueryError):
            PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(0), 100.9)
        with pytest.raises(QueryError):
            PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(0), True)
        # an integral float (as JSON parsers may produce) is accepted exactly
        query = PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(0), 1048576.0)
        assert query.bytes_per_device == 1 << 20

    def test_rejects_bad_algorithm(self):
        with pytest.raises(QueryError):
            PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(0), 1, algorithm="nccl")

    def test_rejects_bad_limits(self):
        with pytest.raises(QueryError):
            PlanQuery(
                ParallelismAxes.of(8, 4), ReductionRequest.over(0), 1, max_program_size=0
            )
        with pytest.raises(QueryError):
            PlanQuery(
                ParallelismAxes.of(8, 4), ReductionRequest.over(0), 1, max_matrices=0
            )

    def test_rejects_out_of_range_reduction_axis(self):
        with pytest.raises(HierarchyError):
            PlanQuery(ParallelismAxes.of(8, 4), ReductionRequest.over(2), 1 * MB)


class TestGoldenFingerprint:
    """Pin the v3 canonical form: changing it must force a version bump."""

    def test_version_is_3(self):
        assert FINGERPRINT_VERSION == 3

    def test_canonical_form_golden(self, topology, query_84):
        canonical = canonical_plan_query(topology, query_84, CostModel())
        assert sorted(canonical.keys()) == [
            "cost_model",
            "fingerprint_version",
            "query",
            "topology",
        ]
        assert canonical["fingerprint_version"] == 3
        assert canonical["query"] == {
            "axes": {"sizes": [8, 4], "names": ["data", "model"]},
            "request": {"axes": [0]},
            "bytes_per_device": 67108864,
            "algorithm": "ring",
            "max_matrices": None,
            "max_program_size": 3,
            "max_candidates": None,
            "time_budget_s": None,
        }

    def test_fingerprint_is_sha256_of_compact_encoding(self, topology, query_84):
        canonical = canonical_plan_query(topology, query_84, CostModel())
        encoded = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        assert (
            plan_query_fingerprint(topology, query_84, CostModel())
            == hashlib.sha256(encoded.encode("utf-8")).hexdigest()
        )

    def test_loose_argument_shim_agrees(self, topology, query_84):
        assert plan_query_fingerprint(topology, query_84, CostModel()) == query_fingerprint(
            topology,
            query_84.axes,
            query_84.request,
            query_84.bytes_per_device,
            query_84.algorithm,
            CostModel(),
            query_84.max_program_size,
            query_84.max_matrices,
        )


class TestPlannerProtocol:
    def test_p2_and_service_satisfy_the_protocol(self, topology):
        assert isinstance(P2(topology), Planner)
        assert isinstance(PlanningService(topology), Planner)

    def test_p2_and_service_rankings_are_identical(self, topology, query_84, outcome_84):
        served = PlanningService(topology, max_program_size=3).plan(query_84)
        assert _ranking(served.plan) == _ranking(outcome_84.plan)
        assert [s.program.signature() for s in served.plan.strategies] == [
            s.program.signature() for s in outcome_84.plan.strategies
        ]
        assert served.fingerprint == outcome_84.fingerprint

    def test_outcome_carries_provenance(self, topology, query_84, outcome_84):
        assert outcome_84.cache_tier is None and not outcome_84.cache_hit
        assert outcome_84.synthesis_seconds > 0
        assert outcome_84.evaluation_seconds > 0
        assert outcome_84.total_seconds >= outcome_84.synthesis_seconds
        assert len(outcome_84.fingerprint) == 64
        assert "[cold]" in outcome_84.describe()

        service = PlanningService(topology, max_program_size=3)
        service.plan(query_84)
        warm = service.plan(query_84)
        assert warm.cache_tier == "memory" and warm.cache_hit
        assert "[memory]" in warm.describe()

    def test_service_honours_query_search_limits(self, topology):
        # The service's own max_program_size is only a default for legacy
        # requests; a PlanQuery carries its own.
        service = PlanningService(topology, max_program_size=5)
        limited = service.plan(
            PlanQuery(
                ParallelismAxes.of(8, 4),
                ReductionRequest.over(0),
                32 * MB,
                max_matrices=1,
                max_program_size=3,
            )
        )
        assert limited.num_candidates == 1

    def test_p2_routes_to_service_with_differing_default_limit(self, topology, query_84):
        # The query carries its own max_program_size, so the service's default
        # being different is not a conflict on the query-based route.
        service = PlanningService(topology, max_program_size=5)
        routed = P2(topology, max_program_size=3).plan(query_84, service=service)
        direct = P2(topology, max_program_size=3).plan(query_84)
        assert _ranking(routed.plan) == _ranking(direct.plan)

    def test_plan_many_records_pool_size_in_provenance(self, topology, query_84):
        outcomes = P2(topology, max_program_size=3).plan_many([query_84], n_workers=2)
        assert outcomes[0].n_workers == 2

    def test_plan_many_preserves_order_and_dedupes(self, topology, query_84):
        other = PlanQuery(
            ParallelismAxes.of(8, 4), ReductionRequest.over(1), 64 * MB,
            max_program_size=3,
        )
        service = PlanningService(topology, max_program_size=3)
        outcomes = service.plan_many([query_84, other, query_84])
        assert [o.query for o in outcomes] == [query_84, other, query_84]
        assert [o.cache_tier for o in outcomes] == [None, None, "memory"]

    def test_p2_plan_many(self, topology, query_84, outcome_84):
        outcomes = P2(topology, max_program_size=3).plan_many([query_84, query_84])
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert _ranking(outcome.plan) == _ranking(outcome_84.plan)

    def test_outcome_to_dict_is_json_safe(self, outcome_84):
        encoded = json.dumps(outcome_84.to_dict(), sort_keys=True)
        decoded = json.loads(encoded)
        assert decoded["query"] == outcome_84.query.to_dict()
        assert decoded["cache_hit"] is False
        assert decoded["num_strategies"] == len(outcome_84.plan.strategies)
        restored = OptimizationPlan.from_dict(decoded["plan"])
        assert _ranking(restored) == _ranking(outcome_84.plan)


class TestPlanJsonRoundTrip:
    def test_ranking_and_speedup_survive_json(self, outcome_84):
        plan = outcome_84.plan
        restored = OptimizationPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert _ranking(restored) == _ranking(plan)
        assert restored.speedup_over_default() == plan.speedup_over_default()
        assert restored.bytes_per_device == plan.bytes_per_device

    def test_restored_strategies_record_their_payload(self, outcome_84):
        plan = outcome_84.plan
        restored = OptimizationPlan.from_dict(plan.to_dict())
        assert all(
            s.bytes_per_device == plan.bytes_per_device for s in restored.strategies
        )

    def test_standalone_strategy_roundtrip_is_self_describing(self, outcome_84):
        from repro.api import RankedStrategy

        strategy = outcome_84.plan.default_all_reduce()
        restored = RankedStrategy.from_dict(strategy.to_dict(), strategy.candidate)
        assert restored.bytes_per_device == strategy.bytes_per_device
        assert restored.program.signature() == strategy.program.signature()

    def test_strategy_from_dict_does_not_mutate_the_candidate(self, outcome_84):
        from repro.api import RankedStrategy

        strategy = outcome_84.plan.default_all_reduce()
        before = len(strategy.candidate.programs)
        RankedStrategy.from_dict(strategy.to_dict(), strategy.candidate)
        RankedStrategy.from_dict(strategy.to_dict(), strategy.candidate)
        assert len(strategy.candidate.programs) == before

    def test_double_plan_roundtrip_does_not_accumulate_programs(self, outcome_84):
        once = OptimizationPlan.from_dict(outcome_84.plan.to_dict())
        twice = OptimizationPlan.from_dict(once.to_dict())
        assert [len(c.programs) for c in twice.candidates] == [
            len(c.programs) for c in once.candidates
        ]


class TestLegacyShim:
    """The pre-redesign P2.optimize signature keeps working, byte for byte."""

    def test_positional_call(self, topology, query_84, outcome_84):
        plan = P2(topology, max_program_size=3).optimize(
            query_84.axes, query_84.request, query_84.bytes_per_device
        )
        assert _ranking(plan) == _ranking(outcome_84.plan)

    def test_keyword_call_with_limits(self, topology):
        plan = P2(topology, max_program_size=3).optimize(
            axes=ParallelismAxes.of(8, 4),
            request=ReductionRequest.over(0),
            bytes_per_device=32 * MB,
            algorithm=NCCLAlgorithm.RING,
            max_matrices=1,
        )
        assert len(plan.candidates) == 1

    def test_invalid_payload_still_raises_evaluation_error(self, topology):
        with pytest.raises(EvaluationError):
            P2(topology).optimize(ParallelismAxes.of(32), ReductionRequest.over(0), 0)


class TestSimulatePayloadProvenance:
    """P2.simulate no longer invents a magic 1 MiB payload."""

    def test_strategies_record_the_query_payload(self, query_84, outcome_84):
        assert all(
            s.bytes_per_device == query_84.bytes_per_device
            for s in outcome_84.plan.strategies
        )

    def test_simulate_defaults_to_the_originating_payload(self, topology, outcome_84):
        p2 = P2(topology, max_program_size=3)
        strategy = outcome_84.plan.default_all_reduce()
        implicit = p2.simulate(strategy)
        explicit = p2.simulate(strategy, bytes_per_device=strategy.bytes_per_device)
        assert implicit.total_seconds == explicit.total_seconds
        # and the recorded payload is the query's, not 1 MiB
        assert strategy.bytes_per_device == 64 * MB

    def test_simulate_without_any_payload_is_an_error(self, topology, outcome_84):
        p2 = P2(topology, max_program_size=3)
        orphan = replace(outcome_84.plan.default_all_reduce(), bytes_per_device=None)
        with pytest.raises(EvaluationError):
            p2.simulate(orphan)


class TestMultiReductionPlannerIntegration:
    def test_plan_with_matches_best_placement(self, topology):
        from repro.planner import MultiReductionPlanner, WeightedReduction

        reductions = [
            WeightedReduction("gradients", ReductionRequest.over(0), 32 * MB),
            WeightedReduction("activations", ReductionRequest.over(1), 8 * MB, weight=4),
        ]
        planner = MultiReductionPlanner(topology, max_program_size=3)
        direct = planner.plan(ParallelismAxes.of(2, 16), reductions)
        routed = planner.plan_with(
            P2(topology, max_program_size=3), ParallelismAxes.of(2, 16), reductions
        )
        assert routed.best.matrix == direct.best.matrix
        assert routed.best.total_seconds == pytest.approx(direct.best.total_seconds)

    def test_plan_with_rejects_mismatched_planner_topology(self, topology):
        from repro.planner import MultiReductionPlanner, WeightedReduction
        from repro.topology.gcp import v100_system

        planner = MultiReductionPlanner(topology, max_program_size=3)
        with pytest.raises(EvaluationError):
            planner.plan_with(
                P2(v100_system(num_nodes=2), max_program_size=3),
                ParallelismAxes.of(8, 4),
                [WeightedReduction("gradients", ReductionRequest.over(0), 1 * MB)],
            )

    def test_queries_for_feeds_the_service_cache(self, topology):
        from repro.planner import MultiReductionPlanner, WeightedReduction

        reductions = [
            WeightedReduction("gradients", ReductionRequest.over(0), 32 * MB),
        ]
        planner = MultiReductionPlanner(topology, max_program_size=3)
        queries = planner.queries_for(ParallelismAxes.of(8, 4), reductions)
        assert [q.bytes_per_device for q in queries] == [32 * MB]

        service = PlanningService(topology, max_program_size=3)
        service.plan_many(queries)  # warm the cache
        routed = planner.plan_with(service, ParallelismAxes.of(8, 4), reductions)
        assert service.cache.stats.hits >= 1
        assert routed.best.total_seconds >= 0.0
