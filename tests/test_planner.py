"""Tests for repro.planner (multi-reduction placement planning)."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.planner import MultiReductionPlanner, WeightedReduction
from repro.topology.gcp import a100_system

MB = 1 << 20


@pytest.fixture(scope="module")
def planner():
    return MultiReductionPlanner(a100_system(num_nodes=4), max_program_size=3)


@pytest.fixture(scope="module")
def plan(planner):
    axes = ParallelismAxes.of(4, 16, names=("data", "shard"))
    reductions = [
        WeightedReduction("gradients", ReductionRequest.over(0), 512 * MB, weight=1.0),
        WeightedReduction("activations", ReductionRequest.over(1), 64 * MB, weight=4.0),
    ]
    return planner.plan(axes, reductions)


class TestWeightedReduction:
    def test_validation(self):
        with pytest.raises(EvaluationError):
            WeightedReduction("", ReductionRequest.over(0), 1)
        with pytest.raises(EvaluationError):
            WeightedReduction("g", ReductionRequest.over(0), 0)
        with pytest.raises(EvaluationError):
            WeightedReduction("g", ReductionRequest.over(0), 1, weight=0)


class TestMultiReductionPlanner:
    def test_plan_covers_every_matrix(self, plan):
        assert len(plan.placements) == 3
        matrices = {p.matrix.describe() for p in plan.placements}
        assert matrices == {"[[1 4] [4 4]]", "[[2 2] [2 8]]", "[[4 1] [1 16]]"}

    def test_placements_sorted_by_combined_cost(self, plan):
        totals = [p.total_seconds for p in plan.placements]
        assert totals == sorted(totals)
        assert plan.best.total_seconds == totals[0]

    def test_each_choice_not_worse_than_allreduce(self, plan):
        for placement in plan.placements:
            for choice in placement.choices:
                assert choice.seconds <= choice.all_reduce_seconds + 1e-12
                assert choice.speedup_over_all_reduce >= 1.0

    def test_weights_affect_objective(self, plan):
        evaluation = plan.best
        expected = sum(
            c.seconds * c.reduction.weight for c in evaluation.choices
        )
        assert evaluation.total_seconds == pytest.approx(expected)

    def test_choice_lookup(self, plan):
        evaluation = plan.best
        assert evaluation.choice_for("gradients").reduction.name == "gradients"
        with pytest.raises(EvaluationError):
            evaluation.choice_for("nope")

    def test_best_balances_both_axes(self, plan):
        """The combined-best placement is at least as good as picking the
        placement greedily for the heaviest reduction alone."""
        assert plan.advantage_over_single_axis_choice() >= 1.0

    def test_placement_for(self, plan):
        matrix = plan.best.matrix
        assert plan.placement_for(matrix) is plan.best

    def test_describe(self, plan):
        text = plan.describe(top_k=3)
        assert "gradients" in text and "activations" in text

    def test_argument_validation(self, planner):
        axes = ParallelismAxes.of(4, 16)
        with pytest.raises(EvaluationError):
            planner.plan(axes, [])
        duplicated = [
            WeightedReduction("g", ReductionRequest.over(0), 1 * MB),
            WeightedReduction("g", ReductionRequest.over(1), 1 * MB),
        ]
        with pytest.raises(EvaluationError):
            planner.plan(axes, duplicated)

    def test_singleton_reduction_axis_costs_nothing(self, planner):
        axes = ParallelismAxes.of(1, 64)
        reductions = [WeightedReduction("g", ReductionRequest.over(0), 4 * MB)]
        plan = planner.plan(axes, reductions)
        assert plan.best.total_seconds == 0.0
