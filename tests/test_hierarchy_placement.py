"""Tests for repro.hierarchy.placement (DevicePlacement)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement


class TestGridConversions:
    def test_grid_roundtrip_all_devices(self, figure2d_placement):
        for device in range(figure2d_placement.num_devices):
            grid = figure2d_placement.device_to_grid(device)
            assert figure2d_placement.grid_to_device(grid) == device

    def test_grid_shape_validation(self, figure2d_placement):
        with pytest.raises(PlacementError):
            figure2d_placement.grid_to_device([[0, 0, 0, 0]])  # one row missing
        with pytest.raises(PlacementError):
            figure2d_placement.grid_to_device([[0, 0, 0], [0, 0, 0]])
        with pytest.raises(PlacementError):
            figure2d_placement.grid_to_device([[0, 0, 0, 5], [0, 0, 0, 0]])

    def test_device_zero_grid_is_all_zero(self, figure2d_placement):
        grid = figure2d_placement.device_to_grid(0)
        assert all(all(d == 0 for d in row) for row in grid)


class TestParallelCoordinates:
    def test_every_shard_combination_appears_once(self, figure2d_placement):
        coords = {figure2d_placement.parallel_coordinates(d)
                  for d in range(figure2d_placement.num_devices)}
        assert coords == {(n, m) for n in range(4) for m in range(4)}

    def test_coordinate_roundtrip(self, figure2d_placement):
        for device in range(figure2d_placement.num_devices):
            coords = figure2d_placement.parallel_coordinates(device)
            assert figure2d_placement.device_for_coordinates(coords) == device

    def test_axis_coordinate_matches_parallel_coordinates(self, figure2d_placement):
        for device in range(figure2d_placement.num_devices):
            coords = figure2d_placement.parallel_coordinates(device)
            assert figure2d_placement.axis_coordinate(device, 0) == coords[0]
            assert figure2d_placement.axis_coordinate(device, 1) == coords[1]

    def test_wrong_coordinate_count_rejected(self, figure2d_placement):
        with pytest.raises(PlacementError):
            figure2d_placement.device_for_coordinates((1,))

    def test_coordinate_table_matches(self, figure2d_placement):
        table = figure2d_placement.coordinate_table
        assert len(table) == 16
        assert table[3] == figure2d_placement.parallel_coordinates(3)

    def test_describe_device_marker(self, figure2d_placement):
        marker = figure2d_placement.describe_device(0)
        assert marker == "0/0"


class TestFigure2Interpretation:
    """The worked interpretation of Figure 2b in §2.1 of the paper."""

    def test_figure2b_each_cpu_is_one_replica(self, figure2_matrices):
        matrix = next(m for m in figure2_matrices if m.entries == ((1, 2, 2, 1), (1, 1, 1, 4)))
        placement = DevicePlacement(matrix)
        hierarchy = matrix.hierarchy
        # Every CPU holds one full data-parallel replica: all 4 GPUs under a CPU
        # share the same data coordinate and carry the 4 different shards.
        for server in range(2):
            for cpu in range(2):
                devices = hierarchy.devices_under(2, (0, server, cpu))
                data_coords = {placement.axis_coordinate(d, 0) for d in devices}
                shard_coords = sorted(placement.axis_coordinate(d, 1) for d in devices)
                assert len(data_coords) == 1
                assert shard_coords == [0, 1, 2, 3]

    def test_figure2d_gpu_level_splits_both_axes(self, figure2d_placement):
        # In Figure 2d each CPU's 4 GPUs cover 2 data coordinates x 2 shards.
        hierarchy = figure2d_placement.matrix.hierarchy
        devices = hierarchy.devices_under(2, (0, 0, 0))
        data_coords = {figure2d_placement.axis_coordinate(d, 0) for d in devices}
        shard_coords = {figure2d_placement.axis_coordinate(d, 1) for d in devices}
        assert len(data_coords) == 2 and len(shard_coords) == 2


class TestReductionGroups:
    def test_groups_partition_devices(self, figure2d_placement, shard_reduction):
        groups = figure2d_placement.reduction_groups(shard_reduction)
        flattened = [d for g in groups for d in g]
        assert sorted(flattened) == list(range(16))
        assert len(groups) == 4 and all(len(g) == 4 for g in groups)

    def test_group_members_differ_only_on_reduction_axis(
        self, figure2d_placement, shard_reduction
    ):
        for group in figure2d_placement.reduction_groups(shard_reduction):
            data_coords = {figure2d_placement.axis_coordinate(d, 0) for d in group}
            shard_coords = {figure2d_placement.axis_coordinate(d, 1) for d in group}
            assert len(data_coords) == 1
            assert len(shard_coords) == len(group)

    def test_multi_axis_reduction_single_group(self, figure2d_placement):
        request = ReductionRequest.over(0, 1)
        groups = figure2d_placement.reduction_groups(request)
        assert len(groups) == 1 and len(groups[0]) == 16

    def test_reduction_group_of(self, figure2d_placement, shard_reduction):
        group = figure2d_placement.reduction_group_of(5, shard_reduction)
        assert 5 in group

    def test_group_ordering_follows_reduction_digits(self):
        # For a [[2 1] [1 16]] placement on [2 16] the axis-0 reduction pairs
        # device i with device i+16, and the group is ordered by the axis-0
        # coordinate (node 0 first).
        hierarchy = SystemHierarchy.from_cardinalities([2, 16], ["node", "gpu"])
        matrices = enumerate_parallelism_matrices(hierarchy, ParallelismAxes.of(2, 16))
        matrix = next(m for m in matrices if m.entries == ((2, 1), (1, 16)))
        placement = DevicePlacement(matrix)
        groups = placement.reduction_groups(ReductionRequest.over(0))
        assert [0, 16] in groups and [15, 31] in groups

    def test_placement_table(self, figure2d_placement):
        table = figure2d_placement.placement_table()
        assert len(table) == 16
        assert table[0] == (0, (0, 0))


class TestPlacementProperties:
    @given(st.sampled_from([(4, 4), (2, 8), (8, 2), (16, 1), (2, 2)]))
    @settings(max_examples=10, deadline=None)
    def test_bijection_for_every_matrix(self, axes_sizes):
        hierarchy = SystemHierarchy.from_cardinalities([2, 2, 4])
        axes = ParallelismAxes(axes_sizes)
        for matrix in enumerate_parallelism_matrices(hierarchy, axes):
            placement = DevicePlacement(matrix)
            coords = {placement.parallel_coordinates(d) for d in range(16)}
            assert len(coords) == 16  # bijection between devices and shard coordinates
