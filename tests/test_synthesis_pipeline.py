"""Tests for repro.synthesis.pipeline (the end-to-end P2 front end)."""

from __future__ import annotations

import pytest

from repro.errors import SynthesisError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.synthesis.pipeline import synthesize_all


@pytest.fixture(scope="module")
def small_system():
    return SystemHierarchy.from_cardinalities([2, 4], ["node", "gpu"])


class TestSynthesizeAll:
    def test_candidates_cover_every_matrix(self, small_system):
        candidates = synthesize_all(
            small_system, ParallelismAxes.of(4, 2), ReductionRequest.over(0),
            max_program_size=3,
        )
        descriptions = {c.matrix.describe() for c in candidates}
        assert descriptions == {"[[1 4] [2 1]]", "[[2 2] [1 2]]"}

    def test_every_candidate_has_programs_and_default(self, small_system):
        candidates = synthesize_all(
            small_system, ParallelismAxes.of(8), ReductionRequest.over(0),
            max_program_size=3,
        )
        assert len(candidates) == 1
        candidate = candidates[0]
        assert candidate.num_programs > 1
        default = candidate.default_program
        assert default is not None and default.is_default_all_reduce
        assert default.lowered.num_steps == 1

    def test_candidate_describe(self, small_system):
        candidates = synthesize_all(
            small_system, ParallelismAxes.of(8), ReductionRequest.over(0),
            max_program_size=2,
        )
        assert "programs" in candidates[0].describe()
        assert candidates[0].programs[0].describe()

    def test_max_matrices_cap(self, figure2a_hierarchy, figure2_axes):
        candidates = synthesize_all(
            figure2a_hierarchy, figure2_axes, ReductionRequest.over(1),
            max_program_size=2, max_matrices=2,
        )
        assert len(candidates) == 2

    def test_infeasible_shape_raises(self, small_system):
        with pytest.raises(SynthesisError):
            synthesize_all(small_system, ParallelismAxes.of(3), ReductionRequest.over(0))

    def test_invalid_reduction_axis_raises(self, small_system):
        with pytest.raises(Exception):
            synthesize_all(small_system, ParallelismAxes.of(8), ReductionRequest.over(3))

    def test_all_lowered_programs_validate(self, small_system):
        candidates = synthesize_all(
            small_system, ParallelismAxes.of(4, 2), ReductionRequest.over(1),
            max_program_size=3, validate=True,
        )
        request = ReductionRequest.over(1)
        for candidate in candidates:
            for program in candidate.programs:
                assert program.lowered.validates_against(candidate.placement, request)

    def test_synthesis_time_recorded(self, small_system):
        candidates = synthesize_all(
            small_system, ParallelismAxes.of(8), ReductionRequest.over(0),
            max_program_size=3,
        )
        assert all(c.synthesis_seconds >= 0 for c in candidates)
