"""Tests for repro.synthesis.hierarchy (the four synthesis hierarchies, §2.5/§3.4)."""

from __future__ import annotations

import pytest

from repro.errors import SynthesisError
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.state import DeviceState
from repro.synthesis.hierarchy import (
    HierarchyVariant,
    SynthesisHierarchy,
    SynthesisLevel,
    build_synthesis_hierarchy,
)


class TestVariantsOnFigure2d:
    """The synthesis hierarchies of Table 1 (first example) for the Figure 2d matrix."""

    def test_system_variant(self, figure2d_matrix, shard_reduction):
        hierarchy = build_synthesis_hierarchy(
            figure2d_matrix, shard_reduction, HierarchyVariant.SYSTEM
        )
        assert hierarchy.radices == (1, 1, 2, 2, 4)  # root + [1 2 2 4]
        assert hierarchy.num_virtual_devices == 16
        assert hierarchy.free_positions == ()

    def test_column_variant(self, figure2d_matrix, shard_reduction):
        hierarchy = build_synthesis_hierarchy(
            figure2d_matrix, shard_reduction, HierarchyVariant.COLUMN
        )
        assert hierarchy.radices == (1, 1, 1, 1, 2, 2, 1, 2, 2)  # root + column-major
        assert hierarchy.num_virtual_devices == 16

    def test_row_variant(self, figure2d_matrix, shard_reduction):
        hierarchy = build_synthesis_hierarchy(
            figure2d_matrix, shard_reduction, HierarchyVariant.ROW
        )
        assert hierarchy.radices == (1, 1, 1, 2, 2, 1, 2, 1, 2)  # root + row-major
        assert hierarchy.num_virtual_devices == 16

    def test_reduction_variant(self, figure2d_matrix, shard_reduction):
        hierarchy = build_synthesis_hierarchy(
            figure2d_matrix, shard_reduction, HierarchyVariant.REDUCTION
        )
        assert hierarchy.radices == (1, 1, 2, 1, 2)  # root + the reduction row [1 2 1 2]
        assert hierarchy.num_virtual_devices == 4
        # The non-reduction (data) axis positions stay free for lowering.
        assert len(hierarchy.free_positions) == 4

    def test_reduction_collapsed_variant(self, figure2d_synthesis_hierarchy):
        assert figure2d_synthesis_hierarchy.radices == (1, 1, 2, 1, 2)
        assert figure2d_synthesis_hierarchy.num_virtual_devices == 4

    def test_collapsing_merges_same_level_factors(self):
        # Reduce over both axes: the collapsed hierarchy is the system hierarchy.
        hierarchy = SystemHierarchy.from_pairs(
            [("rack", 1), ("server", 2), ("cpu", 2), ("gpu", 4)]
        )
        axes = ParallelismAxes.of(4, 4)
        matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
        collapsed = build_synthesis_hierarchy(
            matrix, ReductionRequest.over(0, 1), HierarchyVariant.REDUCTION_COLLAPSED
        )
        assert collapsed.radices == (1, 1, 2, 2, 4)
        uncollapsed = build_synthesis_hierarchy(
            matrix, ReductionRequest.over(0, 1), HierarchyVariant.REDUCTION
        )
        assert uncollapsed.num_virtual_devices == collapsed.num_virtual_devices == 16


class TestVirtualDeviceMapping:
    def test_virtual_roundtrip(self, figure2d_synthesis_hierarchy):
        hierarchy = figure2d_synthesis_hierarchy
        for virtual in range(hierarchy.num_virtual_devices):
            digits = hierarchy.virtual_to_position_digits(virtual)
            assert hierarchy.position_digits_to_virtual(digits) == virtual

    def test_physical_device_mapping_respects_reduction_groups(
        self, figure2d_synthesis_hierarchy, figure2d_placement, shard_reduction
    ):
        hierarchy = figure2d_synthesis_hierarchy
        placement = figure2d_placement
        groups = placement.reduction_groups(shard_reduction)
        for free_digits in hierarchy.free_radix:
            physical = [
                hierarchy.physical_device(placement, v, free_digits)
                for v in range(hierarchy.num_virtual_devices)
            ]
            # Each full sweep of the virtual devices for one free assignment is
            # exactly one reduction group, in group order.
            assert physical in groups

    def test_physical_device_validates_free_digits(
        self, figure2d_synthesis_hierarchy, figure2d_placement
    ):
        with pytest.raises(SynthesisError):
            figure2d_synthesis_hierarchy.physical_device(figure2d_placement, 0, (0,))

    def test_physical_device_rejects_other_matrix(
        self, figure2d_synthesis_hierarchy, figure2_matrices
    ):
        other = next(m for m in figure2_matrices if m.entries == ((1, 2, 2, 1), (1, 1, 1, 4)))
        with pytest.raises(SynthesisError):
            figure2d_synthesis_hierarchy.physical_device(DevicePlacement(other), 0, (0, 0, 0, 0))


class TestGoals:
    def test_reduction_variant_goal_is_full(self, figure2d_synthesis_hierarchy):
        goal = figure2d_synthesis_hierarchy.goal()
        assert all(s == DeviceState.full(4) for s in goal)

    def test_row_variant_goal_groups_by_non_reduction_axes(
        self, figure2d_matrix, shard_reduction
    ):
        hierarchy = build_synthesis_hierarchy(
            figure2d_matrix, shard_reduction, HierarchyVariant.ROW
        )
        goal = hierarchy.goal()
        # Each device's goal row has exactly 4 contributors (its shard group).
        for virtual in range(hierarchy.num_virtual_devices):
            assert bin(goal[virtual].row(0)).count("1") == 4

    def test_initial_context(self, figure2d_synthesis_hierarchy):
        init = figure2d_synthesis_hierarchy.initial_context()
        assert init.num_devices == 4


class TestValidation:
    def test_level_radix_must_match_positions(self, figure2d_matrix, shard_reduction):
        good = build_synthesis_hierarchy(figure2d_matrix, shard_reduction)
        bad_levels = list(good.levels)
        bad_levels[2] = SynthesisLevel(
            name=bad_levels[2].name, radix=3, positions=bad_levels[2].positions
        )
        with pytest.raises(SynthesisError):
            SynthesisHierarchy(
                variant=good.variant,
                matrix=good.matrix,
                reduction_axes=good.reduction_axes,
                levels=tuple(bad_levels),
            )

    def test_duplicate_positions_rejected(self, figure2d_matrix, shard_reduction):
        good = build_synthesis_hierarchy(figure2d_matrix, shard_reduction)
        with pytest.raises(SynthesisError):
            SynthesisHierarchy(
                variant=good.variant,
                matrix=good.matrix,
                reduction_axes=good.reduction_axes,
                levels=good.levels + (good.levels[2],),
            )

    def test_reduction_axes_validated(self, figure2d_matrix):
        with pytest.raises(Exception):
            build_synthesis_hierarchy(figure2d_matrix, ReductionRequest.over(5))

    def test_describe(self, figure2d_synthesis_hierarchy):
        text = figure2d_synthesis_hierarchy.describe()
        assert "reduction-collapsed" in text
