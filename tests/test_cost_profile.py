"""Tests for repro.cost.profile: the compile/price split of the simulator.

The central contract: pricing a compiled :class:`SimulationProfile` is
**bit-identical** to the per-group reference simulation
(:meth:`ProgramSimulator.simulate_reference`) — exact ``==`` on every float,
never ``approx`` — across payload ladders and both NCCL algorithms.  The
property test below exercises it over every program the synthesis pipeline
produces for a deterministic sample of shapes on both GCP systems.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.api import collect_strategy_entries, evaluate_entries_serial
from repro.baselines.allreduce import default_all_reduce
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.profile import compile_profile, price_profile
from repro.cost.simulator import ProgramSimulator
from repro.errors import CostModelError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective
from repro.synthesis.lowering import LoweredProgram, LoweredStep
from repro.synthesis.pipeline import synthesize_all
from repro.topology.links import LinkKind, LinkSpec
from repro.topology.topology import MachineTopology

MB = 1 << 20
PAYLOAD_LADDER = (0, 1 << 10, 1 << 20, 123456789, 1 << 30)
ALGORITHMS = (NCCLAlgorithm.RING, NCCLAlgorithm.TREE)


def synthesized_programs(topology, axes_sizes, request_axes, max_program_size=3):
    """Every lowered program (baselines included) for one planning shape."""
    axes = ParallelismAxes.of(*axes_sizes)
    request = ReductionRequest(tuple(request_axes))
    candidates = synthesize_all(
        topology.hierarchy, axes, request, max_program_size=max_program_size
    )
    entries = collect_strategy_entries(candidates, request)
    return [entry.lowered for entry in entries if entry.lowered.num_steps > 0]


class TestBitIdenticalPricing:
    """Profile pricing == reference simulation, to the last ulp."""

    @pytest.mark.parametrize(
        "axes_sizes, request_axes",
        [((8, 4), (0,)), ((32,), (0,)), ((4, 8), (1,)), ((2, 4, 4), (0, 2))],
    )
    def test_a100_programs_price_identically(self, a100_2node, axes_sizes, request_axes):
        programs = synthesized_programs(a100_2node, axes_sizes, request_axes)
        assert programs, "fixture produced no programs"
        simulator = ProgramSimulator(a100_2node)
        rng = random.Random(20260728)
        sample = rng.sample(programs, min(len(programs), 12))
        for program in sample:
            profile = compile_profile(program, a100_2node)
            for payload in PAYLOAD_LADDER:
                for algorithm in ALGORITHMS:
                    reference = simulator.simulate_reference(program, payload, algorithm)
                    priced = price_profile(
                        profile, payload, algorithm, simulator.cost_model
                    )
                    # Exact dataclass equality: same floats for total and
                    # every step, same bottleneck links, sharings, payloads.
                    assert priced == reference
                    # The cached fast path goes through the same arithmetic.
                    assert simulator.simulate(program, payload, algorithm) == reference

    def test_v100_host_link_programs_price_identically(self, v100_2node):
        programs = synthesized_programs(v100_2node, (4, 4), (0,))
        simulator = ProgramSimulator(v100_2node)
        for program in programs:
            profile = compile_profile(program, v100_2node)
            for payload in PAYLOAD_LADDER:
                for algorithm in ALGORITHMS:
                    assert price_profile(
                        profile, payload, algorithm, simulator.cost_model
                    ) == simulator.simulate_reference(program, payload, algorithm)

    def test_custom_cost_model_prices_identically(self, a100_2node):
        model = CostModel(
            launch_overhead=1e-3, small_message_bytes=1 << 24, small_message_efficiency=0.25
        )
        simulator = ProgramSimulator(a100_2node, model)
        for program in synthesized_programs(a100_2node, (8, 4), (0,))[:6]:
            for payload in PAYLOAD_LADDER:
                assert simulator.simulate(program, payload) == simulator.simulate_reference(
                    program, payload
                )


class TestEquivalenceClasses:
    def test_replicated_cross_node_step_collapses_to_one_class(self, a100_2node):
        # 16 concurrent pair-groups, one per (gpu_i, gpu_i+16): all replicas
        # of one virtual grouping, so the analysis collapses to one class.
        step = LoweredStep(Collective.ALL_REDUCE, tuple((i, i + 16) for i in range(16)))
        program = LoweredProgram(num_devices=32, steps=(step,))
        profile = compile_profile(program, a100_2node)
        assert profile.steps[0].num_groups == 16
        assert profile.steps[0].num_classes == 1
        assert profile.steps[0].classes[0].count == 16
        assert profile.num_classes == 1
        assert profile.num_groups == 16

    def test_profile_is_payload_and_algorithm_independent(self, a100_2node):
        program = default_all_reduce(
            DevicePlacement(
                enumerate_parallelism_matrices(
                    a100_2node.hierarchy, ParallelismAxes.of(32)
                )[0]
            ),
            ReductionRequest.over(0),
        )
        profile = compile_profile(program, a100_2node)
        a = price_profile(profile, 64 * MB, NCCLAlgorithm.RING)
        b = price_profile(profile, 2 * MB, NCCLAlgorithm.TREE)
        assert a.bytes_per_device != b.bytes_per_device
        assert a.algorithm != b.algorithm

    def test_profiles_are_picklable_and_replica_count_independent(self, a100_2node):
        wide = LoweredStep(Collective.ALL_REDUCE, tuple((i, i + 16) for i in range(16)))
        narrow = LoweredStep(Collective.ALL_REDUCE, tuple((i, i + 16) for i in range(4)))
        wide_profile = compile_profile(
            LoweredProgram(num_devices=32, steps=(wide,), label="x"), a100_2node
        )
        narrow_profile = compile_profile(
            LoweredProgram(num_devices=32, steps=(narrow,), label="x"), a100_2node
        )
        assert pickle.loads(pickle.dumps(wide_profile)) == wide_profile
        # The whole point of shipping profiles to workers: replicas collapse
        # to one class, so the wire size does not grow with the group count.
        assert len(pickle.dumps(wide_profile)) == len(pickle.dumps(narrow_profile))


class TestExplicitEdgePaths:
    def zero_cost_topology(self) -> MachineTopology:
        def zero(name, kind, bw):
            return LinkSpec(name, kind, bandwidth=bw, latency=0.0)

        return MachineTopology(
            name="zero-latency",
            hierarchy=SystemHierarchy.from_pairs([("node", 2), ("gpu", 2)]),
            interconnects=(
                zero("nic", LinkKind.NIC, 8e9),
                zero("nvswitch", LinkKind.NVSWITCH, 270e9),
            ),
        )

    def test_empty_program_prices_to_zero_with_no_steps(self, a100_2node):
        program = LoweredProgram(num_devices=32, steps=(), label="noop")
        simulator = ProgramSimulator(a100_2node)
        for result in (
            simulator.simulate(program, 1 * MB),
            simulator.simulate_reference(program, 1 * MB),
            compile_profile(program, a100_2node).price(1 * MB),
        ):
            assert result.total_seconds == 0.0
            assert result.steps == ()

    def test_zero_payload_zero_overhead_reports_first_groups_link(self):
        """The worst-link fallback is the first group's link, not an accident.

        With zero payload, zero launch overhead and zero link latency every
        group prices to exactly 0.0s; the strict ``>`` never fires and the
        step must still report a real bottleneck link — pinned here to the
        first group's — with the 0.0 payload it was priced at.
        """
        topology = self.zero_cost_topology()
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 2), (1, 3)))
        program = LoweredProgram(num_devices=4, steps=(step,))
        model = CostModel(launch_overhead=0.0)
        simulator = ProgramSimulator(topology, model)
        for result in (
            simulator.simulate(program, 0),
            simulator.simulate_reference(program, 0),
            compile_profile(program, topology).price(0, cost_model=model),
        ):
            assert result.total_seconds == 0.0
            assert result.steps[0].seconds == 0.0
            assert result.steps[0].bottleneck_link == "nic"
            assert result.steps[0].payload_bytes == 0.0

    def test_zero_payload_with_latency_still_prices_positive(self, a100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 16),))
        program = LoweredProgram(num_devices=32, steps=(step,))
        simulator = ProgramSimulator(a100_2node)
        result = simulator.simulate(program, 0)
        assert result == simulator.simulate_reference(program, 0)
        assert result.total_seconds > 0.0  # launch overhead + hop latency
        assert result.steps[0].payload_bytes == 0.0

    def test_device_count_mismatch_rejected_at_compile(self, a100_2node, a100_4node):
        program = LoweredProgram(
            num_devices=64, steps=(LoweredStep(Collective.ALL_REDUCE, ((0, 1),)),)
        )
        with pytest.raises(CostModelError):
            compile_profile(program, a100_2node)
        with pytest.raises(CostModelError):
            ProgramSimulator(a100_2node).simulate(program, 1 * MB)

    def test_negative_payload_rejected_at_price(self, a100_2node):
        program = LoweredProgram(
            num_devices=32, steps=(LoweredStep(Collective.ALL_REDUCE, ((0, 1),)),)
        )
        profile = compile_profile(program, a100_2node)
        with pytest.raises(CostModelError):
            price_profile(profile, -1)


class TestProfileCache:
    def test_payload_ladder_hits_after_first_compile(self, a100_2node):
        programs = synthesized_programs(a100_2node, (8, 4), (0,))
        simulator = ProgramSimulator(a100_2node)
        unique_signatures = {p.signature() for p in programs}
        for payload in (1 * MB, 4 * MB, 16 * MB, 64 * MB):
            for program in programs:
                simulator.simulate(program, payload)
        assert simulator.profile_misses == len(unique_signatures)
        assert simulator.profile_hits == 4 * len(programs) - len(unique_signatures)
        assert simulator.cached_profiles == len(unique_signatures)

    def test_lru_evicts_oldest_signature(self, a100_2node):
        programs = [
            LoweredProgram(
                num_devices=32,
                steps=(LoweredStep(Collective.ALL_REDUCE, ((0, 1 + i),)),),
            )
            for i in range(3)
        ]
        simulator = ProgramSimulator(a100_2node, profile_cache_size=2)
        for program in programs:
            simulator.simulate(program, 1 * MB)
        assert simulator.cached_profiles == 2
        # The first program was evicted: simulating it again recompiles.
        misses_before = simulator.profile_misses
        simulator.simulate(programs[0], 1 * MB)
        assert simulator.profile_misses == misses_before + 1

    def test_cache_hit_keeps_the_programs_own_label(self, a100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 16),))
        first = LoweredProgram(num_devices=32, steps=(step,), label="first")
        twin = LoweredProgram(num_devices=32, steps=(step,), label="twin")
        simulator = ProgramSimulator(a100_2node)
        assert simulator.simulate(first, MB).label == "first"
        assert simulator.simulate(twin, MB).label == "twin"  # hit, relabelled
        assert simulator.profile_hits == 1

    def test_clear_profiles(self, a100_2node):
        program = LoweredProgram(
            num_devices=32, steps=(LoweredStep(Collective.ALL_REDUCE, ((0, 16),)),)
        )
        simulator = ProgramSimulator(a100_2node)
        simulator.simulate(program, MB)
        simulator.clear_profiles()
        assert simulator.cached_profiles == 0


class TestStaleBindingGuards:
    def test_p2_rebinding_cost_model_rebuilds_the_simulator(self, a100_2node):
        from repro.api import P2

        p2 = P2(a100_2node)
        first = p2.simulator
        assert p2.simulator is first  # stable while the fields are stable
        p2.cost_model = CostModel(launch_overhead=1e-3)
        second = p2.simulator
        assert second is not first
        assert second.cost_model == p2.cost_model

    def test_mismatched_device_count_is_rejected_not_deduped(self, a100_2node):
        from repro.service.parallel import ParallelEvaluator

        step = LoweredStep(Collective.ALL_REDUCE, ((0, 1),))
        fits = LoweredProgram(num_devices=32, steps=(step,))
        misfit = LoweredProgram(num_devices=16, steps=(step,))  # same signature
        assert fits.signature() == misfit.signature()
        with ParallelEvaluator(a100_2node, n_workers=1) as evaluator:
            with pytest.raises(CostModelError):
                evaluator.evaluate([fits, misfit], 1 * MB)


class TestEntryDeduplication:
    def test_serial_evaluation_dedups_identical_signatures(self, a100_2node):
        axes = ParallelismAxes.of(8, 4)
        request = ReductionRequest.over(0)
        candidates = synthesize_all(
            a100_2node.hierarchy, axes, request, max_program_size=3
        )
        entries = collect_strategy_entries(candidates, request)
        simulator = ProgramSimulator(a100_2node)
        predicted = evaluate_entries_serial(
            entries, a100_2node, CostModel(), 64 * MB, NCCLAlgorithm.RING, simulator
        )
        # Every entry still gets its prediction, and the values match a
        # dedup-free reference evaluation exactly.
        reference = ProgramSimulator(a100_2node)
        expected = [
            0.0
            if entry.lowered.num_steps == 0
            else reference.simulate_reference(
                entry.lowered, 64 * MB, NCCLAlgorithm.RING
            ).total_seconds
            for entry in entries
        ]
        assert predicted == expected
        # Only distinct signatures hit the simulator at all.
        unique = {
            e.lowered.signature() for e in entries if e.lowered.num_steps > 0
        }
        assert simulator.profile_hits + simulator.profile_misses == len(unique)
