"""Tests for plan serialization and the two-tier plan cache."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.api import P2
from repro.errors import ServiceError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.service.cache import (
    PLAN_FORMAT_VERSION,
    PlanCache,
    plan_from_dict,
    plan_to_dict,
)
from repro.topology.gcp import a100_system

MB = 1 << 20


def _ranking(plan):
    return [
        (s.matrix.describe(), s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


@pytest.fixture(scope="module")
def plan():
    p2 = P2(a100_system(num_nodes=2), max_program_size=3)
    return p2.optimize(
        ParallelismAxes.of(8, 4), ReductionRequest.over(0), bytes_per_device=64 * MB
    )


class TestPlanRoundTrip:
    def test_ranking_survives_roundtrip(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert _ranking(restored) == _ranking(plan)

    def test_programs_survive_roundtrip(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert [s.program.signature() for s in restored.strategies] == [
            s.program.signature() for s in plan.strategies
        ]

    def test_query_fields_survive_roundtrip(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.axes == plan.axes
        assert restored.request.axes == plan.request.axes
        assert restored.bytes_per_device == plan.bytes_per_device
        assert restored.algorithm == plan.algorithm

    def test_restored_plan_supports_the_plan_api(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.best.mnemonic == plan.best.mnemonic
        assert restored.speedup_over_default() == plan.speedup_over_default()
        assert restored.default_all_reduce().is_default_all_reduce
        assert len(restored.candidates) == len(plan.candidates)

    def test_restored_strategies_verify_numerically(self, plan):
        p2 = P2(a100_system(num_nodes=2), max_program_size=3)
        restored = plan_from_dict(plan_to_dict(plan))
        report = p2.verify(restored.best, ReductionRequest.over(0))
        assert report.ok

    def test_json_safe(self, plan):
        encoded = json.dumps(plan_to_dict(plan))
        assert _ranking(plan_from_dict(json.loads(encoded))) == _ranking(plan)

    def test_version_gate(self, plan):
        data = plan_to_dict(plan)
        data["format_version"] = PLAN_FORMAT_VERSION + 1
        with pytest.raises(ServiceError):
            plan_from_dict(data)


class TestMemoryTier:
    def test_get_miss_then_hit(self, plan):
        cache = PlanCache()
        assert cache.get("abc") is None
        cache.put("abc", plan_to_dict(plan))
        assert cache.lookup("abc") == (plan_to_dict(plan), "memory")
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        cache.get("a")  # refresh "a": now "b" is least recently used
        cache.put("c", {"n": 3})
        assert cache.get("a") is not None
        assert cache.get("b") is None  # evicted
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ServiceError):
            PlanCache(capacity=0)


class TestDiskTier:
    def test_persists_across_cache_instances(self, plan, tmp_path):
        first = PlanCache(directory=tmp_path)
        first.put("deadbeef", plan_to_dict(plan))

        second = PlanCache(directory=tmp_path)
        loaded, tier = second.lookup("deadbeef")
        assert tier == "disk"
        assert _ranking(plan_from_dict(loaded)) == _ranking(plan)
        # A second lookup is served from memory (disk hit promoted).
        assert second.lookup("deadbeef")[1] == "memory"

    def test_plan_written_by_a_previous_process_loads(self, tmp_path):
        """End-to-end restart test: one process writes the cache, another reads it."""
        script = (
            "import sys\n"
            "from repro.service import PlanCache, PlanningService, PlanningRequest\n"
            "from repro.topology.gcp import a100_system\n"
            "from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest\n"
            "service = PlanningService(a100_system(num_nodes=1), max_program_size=2,\n"
            "                          cache=PlanCache(sys.argv[1]))\n"
            "response = service.submit(PlanningRequest(\n"
            "    ParallelismAxes.of(4, 4), ReductionRequest.over(0), 1 << 20))\n"
            "print(response.stats.fingerprint)\n"
            "print(response.plan.best.predicted_seconds)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        output = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        fingerprint, best_seconds = output.stdout.split()

        from repro.service import PlanningRequest, PlanningService

        service = PlanningService(
            a100_system(num_nodes=1), max_program_size=2, cache=PlanCache(tmp_path)
        )
        response = service.submit(
            PlanningRequest(ParallelismAxes.of(4, 4), ReductionRequest.over(0), 1 << 20)
        )
        assert response.stats.fingerprint == fingerprint
        assert response.stats.cache_tier == "disk"
        assert repr(response.plan.best.predicted_seconds) == best_seconds

    def test_corrupted_entry_is_a_miss_and_removed(self, plan, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("feedface", plan_to_dict(plan))
        path = tmp_path / "feedface.json"
        path.write_text("{ not json at all")

        fresh = PlanCache(directory=tmp_path)
        assert fresh.get("feedface") is None
        assert fresh.stats.corrupt_entries == 1
        assert not path.exists()

    def test_wrong_fingerprint_in_envelope_is_corrupt(self, plan, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("aaaa", plan_to_dict(plan))
        (tmp_path / "aaaa.json").rename(tmp_path / "bbbb.json")

        fresh = PlanCache(directory=tmp_path)
        assert fresh.get("bbbb") is None
        assert fresh.stats.corrupt_entries == 1

    def test_stale_format_version_is_corrupt(self, plan, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("cafe", plan_to_dict(plan))
        path = tmp_path / "cafe.json"
        envelope = json.loads(path.read_text())
        envelope["format_version"] = PLAN_FORMAT_VERSION + 1
        path.write_text(json.dumps(envelope))

        fresh = PlanCache(directory=tmp_path)
        assert fresh.get("cafe") is None
        assert fresh.stats.corrupt_entries == 1

    def test_clear_empties_both_tiers(self, plan, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("one", plan_to_dict(plan))
        cache.put("two", plan_to_dict(plan))
        removed = cache.clear()
        # Each plan lives in both tiers but counts once.
        assert removed == 2
        assert cache.num_memory_entries == 0
        assert cache.disk_fingerprints() == []

    def test_discard_drops_one_entry_from_both_tiers(self, plan, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("one", plan_to_dict(plan))
        cache.put("two", plan_to_dict(plan))
        cache.discard("one", corrupt=True)
        assert cache.get("one") is None
        assert cache.get("two") is not None
        assert cache.disk_fingerprints() == ["two"]
        assert cache.stats.corrupt_entries == 1

    def test_describe_mentions_both_tiers(self, plan, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("one", plan_to_dict(plan))
        text = cache.describe()
        assert "memory 1" in text
        assert "disk 1" in text
