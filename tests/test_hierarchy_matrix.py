"""Tests for repro.hierarchy.matrix (parallelism-matrix enumeration, paper §3.1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import (
    ParallelismMatrix,
    count_naive_placements,
    enumerate_parallelism_matrices,
)
from repro.hierarchy.parallelism import ParallelismAxes


def _matrix(hierarchy, axes, entries):
    return ParallelismMatrix(hierarchy, axes, tuple(tuple(r) for r in entries))


class TestParallelismMatrixValidation:
    def test_valid_matrix(self, figure2a_hierarchy, figure2_axes):
        matrix = _matrix(figure2a_hierarchy, figure2_axes, [[1, 1, 2, 2], [1, 2, 1, 2]])
        assert matrix.num_rows == 2 and matrix.num_cols == 4
        assert matrix.num_devices == 16

    def test_column_product_must_match_hierarchy(self, figure2a_hierarchy, figure2_axes):
        with pytest.raises(PlacementError, match="column"):
            _matrix(figure2a_hierarchy, figure2_axes, [[1, 1, 2, 4], [1, 2, 1, 2]])

    def test_row_product_must_match_axis(self, figure2a_hierarchy, figure2_axes):
        with pytest.raises(PlacementError, match="row"):
            _matrix(figure2a_hierarchy, figure2_axes, [[1, 2, 2, 2], [1, 1, 1, 2]])

    def test_factor_below_one_rejected(self, figure2a_hierarchy, figure2_axes):
        with pytest.raises(PlacementError):
            _matrix(figure2a_hierarchy, figure2_axes, [[1, 1, 2, 0], [1, 2, 1, 2]])

    def test_wrong_row_count_rejected(self, figure2a_hierarchy, figure2_axes):
        with pytest.raises(PlacementError):
            _matrix(figure2a_hierarchy, figure2_axes, [[1, 2, 2, 4]])

    def test_wrong_column_count_rejected(self, figure2a_hierarchy, figure2_axes):
        with pytest.raises(PlacementError):
            _matrix(figure2a_hierarchy, figure2_axes, [[1, 1, 2], [1, 2, 2]])


class TestAccessorsAndFlattenings:
    @pytest.fixture
    def matrix(self, figure2a_hierarchy, figure2_axes):
        return _matrix(figure2a_hierarchy, figure2_axes, [[1, 1, 2, 2], [1, 2, 1, 2]])

    def test_row_column_factor(self, matrix):
        assert matrix.row(0) == (1, 1, 2, 2)
        assert matrix.column(3) == (2, 2)
        assert matrix.factor(1, 1) == 2

    def test_row_major_flattening_is_hierarchy_c(self, matrix):
        assert matrix.row_major_factors() == (1, 1, 2, 2, 1, 2, 1, 2)

    def test_column_major_flattening_is_hierarchy_b(self, matrix):
        assert matrix.column_major_factors() == (1, 1, 1, 2, 2, 1, 2, 2)

    def test_reduction_axis_factors_is_hierarchy_d(self, matrix):
        assert matrix.reduction_axis_factors([1]) == (1, 2, 1, 2)
        assert matrix.reduction_axis_factors([0, 1]) == (1, 1, 2, 2, 1, 2, 1, 2)

    def test_collapsed_reduction_factors(self, matrix):
        assert matrix.collapsed_reduction_factors([1]) == (1, 2, 1, 2)
        # Collapsing both axes gives the system hierarchy itself.
        assert matrix.collapsed_reduction_factors([0, 1]) == (1, 2, 2, 4)

    def test_collapsed_matches_paper_table1_example(self):
        # Paper Table 1 second example: a 3x3 matrix with rows [1 2 3],[4 5 6],[7 8 9]
        # (treated as factors), reduction over rows 0 and 2 collapses to [7 16 27].
        hierarchy = SystemHierarchy.from_cardinalities([1 * 4 * 7, 2 * 5 * 8, 3 * 6 * 9])
        axes = ParallelismAxes.of(1 * 2 * 3, 4 * 5 * 6, 7 * 8 * 9)
        matrix = _matrix(hierarchy, axes, [[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert matrix.collapsed_reduction_factors([0, 2]) == (7, 16, 27)
        assert matrix.reduction_axis_factors([0, 2]) == (1, 2, 3, 7, 8, 9)

    def test_describe(self, matrix):
        assert matrix.describe() == "[[1 1 2 2] [1 2 1 2]]"


class TestEnumeration:
    def test_figure2_running_example_has_four_matrices(self, figure2_matrices):
        # Hierarchy [1 2 2 4] with axes [4 4]: exactly the placements of Figure 2
        # (the three shown there plus the fully-swapped one).
        descriptions = {m.describe() for m in figure2_matrices}
        assert len(figure2_matrices) == 4
        assert "[[1 2 2 1] [1 1 1 4]]" in descriptions  # Figure 2b
        assert "[[1 2 1 2] [1 1 2 2]]" in descriptions  # Figure 2c
        assert "[[1 1 2 2] [1 2 1 2]]" in descriptions  # Figure 2d

    def test_single_axis_enumeration(self):
        hierarchy = SystemHierarchy.from_cardinalities([4, 16], ["node", "gpu"])
        matrices = enumerate_parallelism_matrices(hierarchy, ParallelismAxes.of(64))
        assert [m.describe() for m in matrices] == ["[[4 16]]"]

    def test_two_axis_a100_example(self):
        hierarchy = SystemHierarchy.from_cardinalities([4, 16], ["node", "gpu"])
        matrices = enumerate_parallelism_matrices(hierarchy, ParallelismAxes.of(4, 16))
        descriptions = {m.describe() for m in matrices}
        # The three matrices of Table 3 row B.
        assert descriptions == {"[[1 4] [4 4]]", "[[2 2] [2 8]]", "[[4 1] [1 16]]"}

    def test_infeasible_total_returns_empty(self):
        hierarchy = SystemHierarchy.from_cardinalities([2, 8])
        assert enumerate_parallelism_matrices(hierarchy, ParallelismAxes.of(5)) == []

    def test_max_results_cap(self, figure2a_hierarchy, figure2_axes):
        capped = enumerate_parallelism_matrices(figure2a_hierarchy, figure2_axes, max_results=2)
        assert len(capped) == 2

    def test_all_results_unique_and_valid(self, figure2_matrices):
        descriptions = [m.describe() for m in figure2_matrices]
        assert len(set(descriptions)) == len(descriptions)

    @given(
        st.lists(st.sampled_from([1, 2, 3, 4]), min_size=1, max_size=3),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_enumeration_matches_brute_force_count(self, cards, num_axes):
        """Every enumerated matrix is valid, and the count matches a brute-force search."""
        hierarchy = SystemHierarchy.from_cardinalities(cards)
        total = hierarchy.num_devices
        # Split the total into num_axes axis sizes (greedy: all in axis 0).
        axes_sizes = [total] + [1] * (num_axes - 1)
        axes = ParallelismAxes(tuple(axes_sizes))
        matrices = enumerate_parallelism_matrices(hierarchy, axes)

        # Brute force over all digit assignments.
        from itertools import product as iproduct

        from repro.utils.factorization import ordered_factorizations

        per_column_options = [
            list(ordered_factorizations(c, num_axes)) for c in cards
        ]
        count = 0
        for combo in iproduct(*per_column_options):
            row_products = [
                math.prod(combo[j][i] for j in range(len(cards))) for i in range(num_axes)
            ]
            if row_products == axes_sizes:
                count += 1
        assert len(matrices) == count


class TestNaivePlacementCount:
    def test_matches_factorial(self):
        assert count_naive_placements(ParallelismAxes.of(4, 4)) == math.factorial(16)

    def test_paper_claim_more_than_2_to_44(self):
        # §2.1: (4*4)! > 2^44.
        assert count_naive_placements(ParallelismAxes.of(4, 4)) > 2**44
