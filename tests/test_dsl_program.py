"""Tests for repro.dsl.program and repro.dsl.forms and repro.dsl.pretty."""

from __future__ import annotations

import pytest

from repro.dsl.forms import InsideGroup, Master, Parallel
from repro.dsl.pretty import describe_instruction, describe_program, program_mnemonic
from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.errors import DSLError, InvalidCollectiveError
from repro.semantics.collectives import Collective
from repro.semantics.goals import all_reduce_goal, initial_context

RADICES = (1, 2, 2)  # root, 2 nodes, 2 gpus each -> 4 devices


class TestForms:
    def test_describe_with_and_without_names(self):
        assert InsideGroup().describe() == "InsideGroup"
        assert Parallel(1).describe() == "Parallel(L1)"
        assert Parallel(1).describe(["root", "node"]) == "Parallel(node)"
        assert Master(0).describe(["root"]) == "Master(root)"

    def test_ancestor_property(self):
        assert InsideGroup().ancestor is None
        assert Parallel(2).ancestor == 2
        assert Master(1).ancestor == 1

    def test_negative_levels_rejected(self):
        with pytest.raises(DSLError):
            Parallel(-1)
        with pytest.raises(DSLError):
            Master(-2)


class TestReductionInstruction:
    def test_valid_instruction(self):
        instr = ReductionInstruction(1, Parallel(0), Collective.ALL_REDUCE)
        assert instr.slice_level == 1

    def test_form_must_be_strict_ancestor(self):
        with pytest.raises(DSLError):
            ReductionInstruction(1, Parallel(1), Collective.ALL_REDUCE)
        with pytest.raises(DSLError):
            ReductionInstruction(0, Master(0), Collective.REDUCE)

    def test_negative_slice_rejected(self):
        with pytest.raises(DSLError):
            ReductionInstruction(-1, InsideGroup(), Collective.ALL_REDUCE)

    def test_groups_and_apply(self):
        instr = ReductionInstruction(1, InsideGroup(), Collective.ALL_REDUCE)
        groups = instr.groups(RADICES)
        assert groups == ((0, 1), (2, 3))
        context = initial_context(4)
        after = instr.apply(context, RADICES)
        assert after[0].row(0) == 0b0011
        assert after[2].row(0) == 0b1100

    def test_apply_raises_when_no_groups(self):
        instr = ReductionInstruction(2, InsideGroup(), Collective.ALL_REDUCE)
        with pytest.raises(InvalidCollectiveError):
            instr.apply(initial_context(4), RADICES)

    def test_describe_uses_level_names(self):
        instr = ReductionInstruction(1, Parallel(0), Collective.REDUCE)
        text = instr.describe(["root", "node", "gpu"])
        assert "node" in text and "Reduce" in text


class TestReductionProgram:
    def make_blueconnect(self):
        return ReductionProgram.of(
            ReductionInstruction(1, InsideGroup(), Collective.REDUCE_SCATTER),
            ReductionInstruction(1, Parallel(0), Collective.ALL_REDUCE),
            ReductionInstruction(1, InsideGroup(), Collective.ALL_GATHER),
        )

    def test_single_all_reduce_achieves_goal(self):
        program = ReductionProgram.single_all_reduce()
        assert program.achieves(initial_context(4), all_reduce_goal(4), RADICES)

    def test_blueconnect_achieves_goal(self):
        program = self.make_blueconnect()
        assert program.achieves(initial_context(4), all_reduce_goal(4), RADICES)

    def test_hierarchical_reduce_broadcast_achieves_goal(self):
        program = ReductionProgram.of(
            ReductionInstruction(1, InsideGroup(), Collective.REDUCE),
            ReductionInstruction(1, Master(0), Collective.ALL_REDUCE),
            ReductionInstruction(1, InsideGroup(), Collective.BROADCAST),
        )
        assert program.achieves(initial_context(4), all_reduce_goal(4), RADICES)

    def test_invalid_program_detected(self):
        # AllReduce twice over the same groups folds data twice (Figure 4b).
        program = ReductionProgram.of(
            ReductionInstruction(1, InsideGroup(), Collective.ALL_REDUCE),
            ReductionInstruction(1, InsideGroup(), Collective.ALL_REDUCE),
        )
        assert not program.is_valid(initial_context(4), RADICES)
        assert not program.achieves(initial_context(4), all_reduce_goal(4), RADICES)

    def test_incomplete_program_does_not_achieve(self):
        program = ReductionProgram.of(
            ReductionInstruction(1, InsideGroup(), Collective.ALL_REDUCE)
        )
        assert program.is_valid(initial_context(4), RADICES)
        assert not program.achieves(initial_context(4), all_reduce_goal(4), RADICES)

    def test_append_is_persistent(self):
        program = ReductionProgram.of()
        extended = program.append(
            ReductionInstruction(0, InsideGroup(), Collective.ALL_REDUCE)
        )
        assert len(program) == 0 and len(extended) == 1

    def test_iteration_indexing_and_size(self):
        program = self.make_blueconnect()
        assert program.size == 3
        assert program[1].collective == Collective.ALL_REDUCE
        assert [i.collective for i in program] == [
            Collective.REDUCE_SCATTER,
            Collective.ALL_REDUCE,
            Collective.ALL_GATHER,
        ]

    def test_collectives_used_and_rooted(self):
        program = self.make_blueconnect()
        assert program.collectives_used() == (
            Collective.REDUCE_SCATTER,
            Collective.ALL_REDUCE,
            Collective.ALL_GATHER,
        )
        assert not program.uses_rooted_collectives()
        rooted = ReductionProgram.of(
            ReductionInstruction(1, InsideGroup(), Collective.REDUCE)
        )
        assert rooted.uses_rooted_collectives()

    def test_signature_distinguishes_programs(self):
        a = self.make_blueconnect()
        b = ReductionProgram.single_all_reduce()
        assert a.signature() != b.signature()
        assert a.signature() == self.make_blueconnect().signature()

    def test_describe_empty_and_nonempty(self):
        assert ReductionProgram.of().describe() == "<empty program>"
        assert "AllReduce" in ReductionProgram.single_all_reduce().describe()


class TestPretty:
    def test_program_mnemonic(self):
        program = ReductionProgram.of(
            ReductionInstruction(1, InsideGroup(), Collective.REDUCE_SCATTER),
            ReductionInstruction(1, Parallel(0), Collective.ALL_REDUCE),
            ReductionInstruction(1, InsideGroup(), Collective.ALL_GATHER),
        )
        assert program_mnemonic(program) == "RS-AR-AG"
        assert program_mnemonic(ReductionProgram.of()) == "<empty>"

    def test_describe_program_multiline(self):
        program = ReductionProgram.single_all_reduce()
        multiline = describe_program(program, multiline=True)
        assert multiline.startswith("  step 0:")
        single = describe_program(program)
        assert "AllReduce" in single

    def test_describe_instruction(self):
        instr = ReductionInstruction(0, InsideGroup(), Collective.BROADCAST)
        assert "Broadcast" in describe_instruction(instr)
