"""Tests for the plan corpus: store, neighbor lookup, seeding, service wiring.

The losslessness contract threads through everything here: a corpus seed may
only make a search *faster*, never change its answer, so the integration
tests compare seeded plans against unseeded ones field-by-field (including
the predicted-seconds floats) rather than approximately.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import OptimizationPlan
from repro.corpus import (
    CorpusSeeder,
    PlanCorpus,
    context_fingerprint,
    nearest_records,
    warm_from_corpus,
)
from repro.corpus.store import CORPUS_FORMAT_VERSION, CorpusRecord
from repro.obs.recorder import Recorder
from repro.query import PlanOutcome, PlanQuery
from repro.serve import DaemonConfig, DaemonThread, PlanClient
from repro.service import PlanningService
from repro.topology.gcp import figure2a_system


def _query(payload=1 << 20, reduce_axes=(0,), algorithm="ring", **kwargs):
    return PlanQuery(
        axes=(4, 4),
        request=reduce_axes,
        bytes_per_device=payload,
        algorithm=algorithm,
        max_program_size=3,
        **kwargs,
    )


def _ranking(plan):
    return [
        (s.matrix.entries, s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


def _decision_dict(plan):
    """plan.to_dict() minus wall-clock timings, which legitimately vary."""
    data = plan.to_dict()
    for candidate in data.get("candidates", []):
        candidate.pop("synthesis_seconds", None)
    return data


@pytest.fixture(scope="module")
def topology():
    return figure2a_system()


@pytest.fixture(scope="module")
def base_outcome(topology):
    """One genuine cold outcome (with fingerprint) the tests can replay."""
    return PlanningService(topology, max_program_size=3).plan(_query())


@pytest.fixture()
def corpus(tmp_path):
    return PlanCorpus(tmp_path / "corpus")


# --------------------------------------------------------------------------- #
# Store
# --------------------------------------------------------------------------- #
class TestPlanCorpusStore:
    def test_round_trip_is_lossless(self, corpus, base_outcome):
        assert corpus.ingest_outcome(base_outcome) is True
        reloaded = PlanCorpus(corpus.directory)
        assert len(reloaded) == 1
        record = reloaded.records()[0]
        assert record.fingerprint == base_outcome.fingerprint
        assert record.query == base_outcome.query.to_dict()
        plan = OptimizationPlan.from_dict(record.plan)
        assert plan.to_dict() == base_outcome.plan.to_dict()
        assert _ranking(plan) == _ranking(base_outcome.plan)

    def test_ingest_dedupes_by_fingerprint_and_payload(self, corpus, base_outcome):
        assert corpus.ingest_outcome(base_outcome) is True
        assert corpus.ingest_outcome(base_outcome) is False
        assert len(corpus) == 1
        assert corpus.deduplicated == 1

    def test_budgeted_outcomes_are_refused(self, corpus, base_outcome):
        budgeted = PlanOutcome(
            query=_query(max_candidates=10),
            plan=base_outcome.plan,
            fingerprint="f" * 64,
        )
        assert corpus.ingest_outcome(budgeted) is False
        assert len(corpus) == 0
        assert corpus.rejected_budgeted == 1

    def test_outcome_without_fingerprint_is_refused(self, corpus, base_outcome):
        anonymous = PlanOutcome(query=_query(), plan=base_outcome.plan)
        assert corpus.ingest_outcome(anonymous) is False
        assert len(corpus) == 0

    def test_ingest_record_accepts_serve_batch_lines(self, corpus, base_outcome):
        line = json.loads(json.dumps(base_outcome.to_dict()))
        assert corpus.ingest_record(line) is True
        assert corpus.ingest_record(line) is False  # dedupe on re-ingest
        assert len(corpus) == 1

    def test_ingest_record_accepts_own_envelope(self, corpus, base_outcome, tmp_path):
        corpus.ingest_outcome(base_outcome)
        envelope = corpus.records()[0].to_dict()
        other = PlanCorpus(tmp_path / "other")
        assert other.ingest_record(envelope) is True

    def test_ingest_record_rejects_budgeted_and_malformed(self, corpus, base_outcome):
        budgeted = base_outcome.to_dict()
        budgeted["query"] = dict(budgeted["query"], max_candidates=5)
        assert corpus.ingest_record(budgeted) is False
        assert corpus.rejected_budgeted == 1
        broken = base_outcome.to_dict()
        broken["plan"] = {"format_version": -1}
        assert corpus.ingest_record(broken) is False
        assert corpus.ingest_record({"not": "an outcome"}) is False
        assert len(corpus) == 0

    def test_torn_trailing_line_is_skipped(self, corpus, base_outcome):
        corpus.ingest_outcome(base_outcome)
        with corpus.path.open("a", encoding="utf-8") as handle:
            handle.write('{"format_version": 1, "fingerprint": "x", "qu')
        reloaded = PlanCorpus(corpus.directory)
        assert len(reloaded) == 1

    def test_duplicate_keys_in_file_resolve_newest_wins(self, tmp_path, base_outcome):
        record = CorpusRecord(
            fingerprint=base_outcome.fingerprint,
            context=None,
            query=base_outcome.query.to_dict(),
            plan=base_outcome.plan.to_dict(),
            seq=0,
        )
        newer = dataclasses.replace(record, seq=7)
        directory = tmp_path / "merged"
        directory.mkdir()
        with (directory / "corpus.jsonl").open("w", encoding="utf-8") as handle:
            for entry in (record, newer):
                handle.write(json.dumps(entry.to_dict()) + "\n")
        reloaded = PlanCorpus(directory)
        assert len(reloaded) == 1
        assert reloaded.records()[0].seq == 7

    def test_overflow_triggers_compaction_keeping_newest(self, tmp_path, base_outcome):
        small = PlanCorpus(tmp_path / "small", max_records=2)
        line = base_outcome.to_dict()
        for index in range(3):
            entry = dict(line, fingerprint=f"{index:064d}")
            assert small.ingest_record(entry) is True
        assert len(small) == 2
        kept = {record.fingerprint for record in small.records()}
        assert kept == {f"{1:064d}", f"{2:064d}"}
        # The rewrite is durable: a reload sees the compacted file.
        assert len(PlanCorpus(tmp_path / "small", max_records=2)) == 2

    def test_stats_shape(self, corpus, base_outcome):
        corpus.ingest_outcome(base_outcome)
        stats = corpus.stats()
        assert stats["records"] == 1
        assert stats["distinct_fingerprints"] == 1
        assert stats["total_bytes"] > 0
        assert stats["max_records"] == corpus.max_records
        assert CORPUS_FORMAT_VERSION == 1


# --------------------------------------------------------------------------- #
# Neighbors
# --------------------------------------------------------------------------- #
def _record(fingerprint, query, seq, context=None):
    return CorpusRecord(
        fingerprint=fingerprint,
        context=context,
        query=query.to_dict(),
        plan={},
        seq=seq,
    )


class TestNearestRecords:
    def test_exact_fingerprint_ranks_first(self):
        records = [
            _record("near", _query(payload=1 << 20), 0),
            _record("exact", _query(payload=1 << 24), 1),
        ]
        query = _query(payload=1 << 21)
        found = nearest_records(
            records, query.to_dict(), exact_fingerprint="exact", top_k=2
        )
        assert [r.fingerprint for r in found] == ["exact", "near"]

    def test_request_match_beats_algorithm_match(self):
        records = [
            _record("other-request", _query(reduce_axes=(1,)), 0),
            _record("other-algo", _query(algorithm="tree"), 1),
        ]
        found = nearest_records(records, _query().to_dict(), top_k=2)
        assert [r.fingerprint for r in found] == ["other-algo", "other-request"]

    def test_payload_band_orders_same_request_records(self):
        records = [
            _record("far", _query(payload=1 << 28), 0),
            _record("close", _query(payload=1 << 21), 1),
        ]
        found = nearest_records(records, _query(payload=1 << 20).to_dict(), top_k=2)
        assert [r.fingerprint for r in found] == ["close", "far"]

    def test_axes_mismatch_is_filtered(self):
        foreign = PlanQuery(
            axes=(2, 8), request=(0,), bytes_per_device=1 << 20, max_program_size=3
        )
        records = [_record("foreign", foreign, 0)]
        assert nearest_records(records, _query().to_dict(), top_k=2) == []

    def test_context_mismatch_is_filtered_but_unstamped_kept(self):
        records = [
            _record("foreign", _query(), 0, context="other-machine"),
            _record("unstamped", _query(), 1, context=None),
        ]
        found = nearest_records(
            records, _query().to_dict(), context="this-machine", top_k=2
        )
        assert [r.fingerprint for r in found] == ["unstamped"]

    def test_newest_wins_ties_and_top_k_limits(self):
        records = [_record(f"r{i}", _query(), i) for i in range(3)]
        found = nearest_records(records, _query().to_dict(), top_k=2)
        assert [r.fingerprint for r in found] == ["r2", "r1"]


# --------------------------------------------------------------------------- #
# Seeding + service wiring
# --------------------------------------------------------------------------- #
class TestSeeding:
    def test_empty_corpus_seeds_nothing(self, corpus, topology):
        seeder = CorpusSeeder(corpus, topology, PlanningService(topology).cost_model)
        assert seeder.seed_sources(_query()) is None

    def test_seed_sources_prepend_pinned_to_defaults(
        self, corpus, topology, base_outcome
    ):
        from repro.search import BaselineSource, PinnedPlanSource, SynthesisSource

        recorder = Recorder()
        seeder = CorpusSeeder(
            corpus, topology, PlanningService(topology).cost_model, recorder=recorder
        )
        corpus.ingest_outcome(base_outcome, context=seeder.context)
        sources = seeder.seed_sources(_query(payload=1 << 22))
        assert sources is not None
        assert isinstance(sources[0], PinnedPlanSource)
        assert isinstance(sources[-2], BaselineSource)
        assert isinstance(sources[-1], SynthesisSource)
        counters = recorder.snapshot().to_dict()["counters"]
        assert counters["corpus.lookups"] == 1
        assert counters["corpus.hits"] == 1
        assert counters["corpus.seeded"] == 1

    def test_unusable_plan_payload_is_skipped(self, corpus, topology, base_outcome):
        seeder = CorpusSeeder(corpus, topology, PlanningService(topology).cost_model)
        record = CorpusRecord(
            fingerprint="0" * 64,
            context=seeder.context,
            query=base_outcome.query.to_dict(),
            plan={"format_version": -1},
            seq=0,
        )
        corpus._records.append(record)
        corpus._keys.add(record.key)
        assert seeder.seed_sources(_query(payload=1 << 22)) is None

    def test_warm_from_corpus_replays_only_matching_fingerprints(
        self, corpus, topology, base_outcome
    ):
        service = PlanningService(topology, max_program_size=3, corpus=corpus)
        corpus.ingest_outcome(base_outcome)
        # A record whose fingerprint does not match what this service would
        # compute (foreign topology/cost model) must be skipped.
        foreign = CorpusRecord(
            fingerprint="f" * 64,
            context=None,
            query=_query(payload=1 << 25).to_dict(),
            plan=base_outcome.plan.to_dict(),
            seq=99,
        )
        corpus._records.append(foreign)
        corpus._keys.add(foreign.key)
        assert service.warm_from_corpus() == 1
        outcome = service.plan(_query())
        assert outcome.cache_tier == "memory"
        assert _ranking(outcome.plan) == _ranking(base_outcome.plan)

    def test_warm_from_corpus_without_corpus_is_zero(self, topology):
        assert PlanningService(topology).warm_from_corpus() == 0

    def test_warm_helper_matches_service_method(self, corpus, topology, base_outcome):
        corpus.ingest_outcome(base_outcome)
        service = PlanningService(topology, max_program_size=3)
        assert warm_from_corpus(service, corpus) == 1

    def test_context_fingerprint_distinguishes_topologies(self, topology):
        cost_model = PlanningService(topology).cost_model
        same = context_fingerprint(topology, cost_model)
        assert same == context_fingerprint(topology, cost_model)
        other = figure2a_system()
        assert context_fingerprint(other, cost_model) == same  # canonical equality


class TestServiceIntegration:
    def test_cold_plans_are_ingested_and_seed_neighbors(self, corpus, topology):
        recorder = Recorder()
        service = PlanningService(
            topology, max_program_size=3, corpus=corpus, recorder=recorder
        )
        first = service.plan(_query(payload=1 << 20))
        assert len(corpus) == 1
        second = service.plan(_query(payload=1 << 22))
        assert second.search["seeds"] >= 1
        assert second.search["seeded_incumbent"] is True
        assert second.search["time_to_incumbent_s"] is not None
        counters = recorder.snapshot().to_dict()["counters"]
        assert counters["corpus.hits"] >= 1
        assert counters["corpus.ingested"] == 2
        assert first.fingerprint != second.fingerprint

    def test_seeded_plan_is_bit_identical_to_unseeded(self, corpus, topology):
        seeded_service = PlanningService(topology, max_program_size=3, corpus=corpus)
        seeded_service.plan(_query(payload=1 << 20))
        seeded = seeded_service.plan(_query(payload=1 << 22))
        unseeded = PlanningService(topology, max_program_size=3).plan(
            _query(payload=1 << 22)
        )
        assert seeded.search["seeds"] >= 1
        assert unseeded.search["seeds"] == 0
        assert _ranking(seeded.plan) == _ranking(unseeded.plan)
        assert _decision_dict(seeded.plan) == _decision_dict(unseeded.plan)
        assert seeded.fingerprint == unseeded.fingerprint

    def test_cache_hits_do_not_touch_the_corpus(self, corpus, topology):
        service = PlanningService(topology, max_program_size=3, corpus=corpus)
        service.plan(_query())
        service.plan(_query())  # memory hit: no search, no ingest
        assert len(corpus) == 1
        assert corpus.ingested == 1

    def test_budgeted_plans_are_not_ingested(self, corpus, topology):
        service = PlanningService(topology, max_program_size=3, corpus=corpus)
        outcome = service.plan(_query(max_candidates=10 ** 9))
        assert outcome.query.has_search_budget
        assert len(corpus) == 0


class TestDaemonCorpusWarm:
    def test_daemon_pre_warms_from_corpus_on_boot(self, corpus, topology):
        # Populate history out-of-band, then boot a daemon whose service
        # carries the corpus: the first request must already be a cache hit.
        PlanningService(topology, max_program_size=3, corpus=corpus).plan(_query())
        recorder = Recorder()
        service = PlanningService(
            topology, max_program_size=3, corpus=corpus, recorder=recorder
        )
        with DaemonThread(
            service, DaemonConfig(port=0, queue_limit=8), recorder=recorder
        ) as handle:
            assert handle.daemon.corpus_warmed == 1
            host, port = handle.address
            with PlanClient(host=host, port=port) as client:
                reply = client.plan(_query())
        assert reply["ok"] is True
        assert reply["outcome"]["cache_hit"] is True
        counters = recorder.snapshot().to_dict()["counters"]
        assert counters["serve.corpus_warm.plans"] == 1

    def test_corpus_warm_can_be_disabled(self, corpus, topology):
        PlanningService(topology, max_program_size=3, corpus=corpus).plan(_query())
        service = PlanningService(topology, max_program_size=3, corpus=corpus)
        config = DaemonConfig(port=0, queue_limit=8, corpus_warm=False)
        with DaemonThread(service, config) as handle:
            assert handle.daemon.corpus_warmed == 0
