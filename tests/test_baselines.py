"""Tests for the baseline strategies (AllReduce, R-AR-B, BlueConnect)."""

from __future__ import annotations

import pytest

from repro.baselines.allreduce import default_all_reduce, default_all_reduce_program
from repro.baselines.blueconnect import blueconnect
from repro.baselines.hierarchical import pick_split_level, reduce_allreduce_broadcast
from repro.errors import SynthesisError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective
from repro.synthesis.hierarchy import build_synthesis_hierarchy


@pytest.fixture
def two_node_setup():
    hierarchy = SystemHierarchy.from_cardinalities([2, 8], ["node", "gpu"])
    axes = ParallelismAxes.of(16)
    request = ReductionRequest.over(0)
    matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
    placement = DevicePlacement(matrix)
    synthesis_hierarchy = build_synthesis_hierarchy(matrix, request)
    return placement, synthesis_hierarchy, request


class TestDefaultAllReduce:
    def test_program_structure(self, figure2d_placement, shard_reduction):
        program = default_all_reduce(figure2d_placement, shard_reduction)
        assert program.num_steps == 1
        step = program.steps[0]
        assert step.collective == Collective.ALL_REDUCE
        assert step.num_groups == 4 and step.group_size == 4
        assert program.validates_against(figure2d_placement, shard_reduction)

    def test_groups_match_reduction_groups(self, figure2d_placement, shard_reduction):
        program = default_all_reduce(figure2d_placement, shard_reduction)
        expected = {tuple(g) for g in figure2d_placement.reduction_groups(shard_reduction)}
        assert set(program.steps[0].groups) == expected

    def test_singleton_groups_produce_empty_program(self):
        hierarchy = SystemHierarchy.from_cardinalities([1, 4])
        axes = ParallelismAxes.of(1, 4)
        matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
        placement = DevicePlacement(matrix)
        program = default_all_reduce(placement, ReductionRequest.over(0))
        assert program.num_steps == 0

    def test_dsl_form(self):
        program = default_all_reduce_program()
        assert len(program) == 1
        assert program[0].collective == Collective.ALL_REDUCE


class TestPickSplitLevel:
    def test_two_level_hierarchy_splits_at_one(self, two_node_setup):
        _, hierarchy, _ = two_node_setup
        assert pick_split_level(hierarchy) == 1

    def test_no_split_raises(self):
        system = SystemHierarchy.from_cardinalities([1, 8], ["node", "gpu"])
        axes = ParallelismAxes.of(8)
        matrix = enumerate_parallelism_matrices(system, axes)[0]
        hierarchy = build_synthesis_hierarchy(matrix, ReductionRequest.over(0))
        with pytest.raises(SynthesisError):
            pick_split_level(hierarchy)


class TestHierarchicalBaselines:
    def test_reduce_allreduce_broadcast_structure(self, two_node_setup):
        placement, hierarchy, request = two_node_setup
        program = reduce_allreduce_broadcast(hierarchy, placement)
        assert [s.collective for s in program.steps] == [
            Collective.REDUCE,
            Collective.ALL_REDUCE,
            Collective.BROADCAST,
        ]
        # The middle step runs over the per-node roots only.
        assert program.steps[1].num_groups == 1
        assert program.steps[1].group_size == 2
        assert program.validates_against(placement, request)

    def test_blueconnect_structure(self, two_node_setup):
        placement, hierarchy, request = two_node_setup
        program = blueconnect(hierarchy, placement)
        assert [s.collective for s in program.steps] == [
            Collective.REDUCE_SCATTER,
            Collective.ALL_REDUCE,
            Collective.ALL_GATHER,
        ]
        # The cross-node AllReduce runs one group per local position.
        assert program.steps[1].num_groups == 8
        assert program.steps[1].group_size == 2
        assert program.validates_against(placement, request)

    def test_explicit_split_level(self, figure2d_synthesis_hierarchy, figure2d_placement,
                                  shard_reduction):
        program = blueconnect(figure2d_synthesis_hierarchy, figure2d_placement, split_level=2)
        assert program.validates_against(figure2d_placement, shard_reduction)

    def test_labels(self, two_node_setup):
        placement, hierarchy, _ = two_node_setup
        assert "Broadcast" in reduce_allreduce_broadcast(hierarchy, placement).label
        assert "AllGather" in blueconnect(hierarchy, placement).label

    def test_baselines_are_in_the_synthesis_space(self, two_node_setup):
        """Paper §4.2: both Figure 10 programs are themselves synthesizable."""
        from repro.synthesis.lowering import lower_synthesized
        from repro.synthesis.synthesizer import synthesize_programs

        placement, hierarchy, request = two_node_setup
        result = synthesize_programs(hierarchy, max_program_size=3)
        signatures = {
            lower_synthesized(p, hierarchy, placement).signature()
            for p in result.programs
        }
        assert blueconnect(hierarchy, placement).signature() in signatures
        assert reduce_allreduce_broadcast(hierarchy, placement).signature() in signatures
