"""Tests for the streaming search driver (repro.search.driver / bounds).

The two load-bearing guarantees:

* **Exhaustive equivalence** — without a search budget the streaming driver
  reproduces the historical materialize-then-evaluate spine bit for bit
  (same entries, same floats, same profile-cache traffic).
* **Lossless pruning** — with bounds enabled (any search budget) the best
  strategy is bit-identical (cost *and* program signature) to the
  exhaustive plan, across shapes, payloads and both NCCL algorithms,
  because every lower bound is admissible: it never exceeds the exact
  predicted time it bounds.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import P2
from repro.cost.model import CostModel
from repro.cost.simulator import ProgramSimulator
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import PlanQuery
from repro.search import (
    min_link_latency,
    placement_lower_bound,
    program_lower_bound,
)
from repro.cost.nccl import NCCLAlgorithm
from repro.synthesis.pipeline import synthesize_all
from repro.synthesis.pruning import SearchStatistics
from repro.topology.gcp import a100_system, v100_system

MB = 1 << 20

# The lossless property is checked over a grid of shapes x payloads x
# algorithms: small symmetric topologies where the exhaustive answer is
# cheap to compute, including a singleton-reduction shape (zero-cost best).
SHAPES = [
    ((8, 4), (0,)),
    ((4, 8), (1,)),
    ((32,), (0,)),
    ((2, 16), (0,)),
]
PAYLOADS = [64 * 1024, 1 * MB, 64 * MB]
ALGORITHMS = [NCCLAlgorithm.RING, NCCLAlgorithm.TREE]


@pytest.fixture(scope="module")
def topology():
    return a100_system(num_nodes=2)


def _query(shape, reduce_axes, payload, algorithm, **kwargs):
    return PlanQuery(
        axes=ParallelismAxes(shape),
        request=ReductionRequest(reduce_axes),
        bytes_per_device=payload,
        algorithm=algorithm,
        max_program_size=3,
        **kwargs,
    )


def _ranking(plan):
    return [
        (s.matrix.entries, s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


class TestLosslessPruning:
    @pytest.mark.parametrize("shape,reduce_axes", SHAPES)
    @pytest.mark.parametrize("payload", PAYLOADS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bounded_search_returns_bit_identical_best(
        self, topology, shape, reduce_axes, payload, algorithm
    ):
        exhaustive = P2(topology, max_program_size=3).plan(
            _query(shape, reduce_axes, payload, algorithm)
        )
        pruned = P2(topology, max_program_size=3).plan(
            # A non-binding candidate budget turns bounds-based pruning on
            # without truncating enumeration: any difference from the
            # exhaustive best is a pruning (soundness) bug.
            _query(shape, reduce_axes, payload, algorithm, max_candidates=10**9)
        )
        assert pruned.search["budgeted"] and not pruned.search["budget_stopped"]
        assert pruned.best.predicted_seconds == exhaustive.best.predicted_seconds
        assert (
            pruned.best.program.signature() == exhaustive.best.program.signature()
        )
        assert pruned.best.matrix == exhaustive.best.matrix
        # Survivors keep the exhaustive ranking's relative order and floats.
        exhaustive_ranking = _ranking(exhaustive.plan)
        assert all(row in exhaustive_ranking for row in _ranking(pruned.plan))

    def test_zero_cost_best_prunes_everything_else(self, topology):
        # Reducing over a singleton axis needs no communication: the free
        # plan is found first and every communicating candidate and
        # placement is bound-rejected.
        query = PlanQuery(
            axes=ParallelismAxes((32, 1)),
            request=ReductionRequest((1,)),
            bytes_per_device=1 * MB,
            max_program_size=3,
            max_candidates=10**9,
        )
        outcome = P2(topology, max_program_size=3).plan(query)
        assert outcome.best.predicted_seconds == 0.0
        assert outcome.plan.speedup_over_default() == 1.0


class TestExhaustiveEquivalence:
    def test_streaming_spine_matches_legacy_eager_pipeline(self, topology):
        """The refactor contract: same entries, same floats, same counters."""
        from repro.api import (
            collect_strategy_entries,
            evaluate_entries_serial,
            rank_entries,
        )

        query = _query((8, 4), (0,), 64 * MB, NCCLAlgorithm.RING)
        candidates = synthesize_all(
            topology.hierarchy, query.axes, query.request, max_program_size=3
        )
        entries = collect_strategy_entries(candidates, query.request)
        legacy_simulator = ProgramSimulator(topology, CostModel())
        predicted = evaluate_entries_serial(
            entries,
            topology,
            CostModel(),
            query.bytes_per_device,
            query.algorithm,
            legacy_simulator,
        )
        legacy = rank_entries(entries, predicted, bytes_per_device=query.bytes_per_device)

        outcome = P2(topology, max_program_size=3).plan(query)
        assert [
            (s.matrix.entries, s.mnemonic, s.predicted_seconds) for s in legacy
        ] == [
            (s.matrix.entries, s.mnemonic, s.predicted_seconds)
            for s in outcome.plan.strategies
        ]
        # Per-query profile compilations match the legacy dedup accounting
        # (baseline programs share the synthesized signatures or add their
        # own, but within one query every signature compiles exactly once).
        assert outcome.profile_hits == 0
        assert outcome.profile_misses >= legacy_simulator.profile_misses

    def test_batched_serial_path_matches_forced_scalar_fallback(
        self, topology, monkeypatch
    ):
        """The vectorized serial spine is bit-identical — fingerprint, ranking
        and every float — to the same plan priced with numpy disabled (the
        scalar fallback runs the historical per-entry price_profile loop)."""
        import repro.cost.batch as batch

        query = _query((8, 4), (0,), 16 * MB, NCCLAlgorithm.RING)
        vectorized = P2(topology, max_program_size=3).plan(query)
        assert vectorized.search["batch_prices"] > 0
        assert vectorized.search["batch_fallbacks"] == 0

        monkeypatch.setattr(batch, "_np", None)
        scalar = P2(topology, max_program_size=3).plan(query)
        assert scalar.search["batch_fallbacks"] > 0

        assert vectorized.fingerprint == scalar.fingerprint
        assert vectorized.plan.baselines == scalar.plan.baselines
        assert [
            (s.matrix.entries, s.mnemonic, s.predicted_seconds)
            for s in vectorized.plan.strategies
        ] == [
            (s.matrix.entries, s.mnemonic, s.predicted_seconds)
            for s in scalar.plan.strategies
        ]

    def test_parallel_budgeted_matches_serial_budgeted(self, topology):
        query = _query((8, 4), (0,), 16 * MB, NCCLAlgorithm.RING, max_candidates=10**9)
        serial = P2(topology, max_program_size=3).plan(query)
        parallel = P2(topology, max_program_size=3).plan(query, n_workers=2)
        assert parallel.best.predicted_seconds == serial.best.predicted_seconds
        assert (
            parallel.best.program.signature() == serial.best.program.signature()
        )
        assert parallel.plan.baselines == serial.plan.baselines


class TestBudgets:
    def test_max_candidates_truncates_enumeration(self, topology):
        query = _query((8, 4), (0,), 16 * MB, NCCLAlgorithm.RING, max_candidates=3)
        outcome = P2(topology, max_program_size=3).plan(query)
        assert outcome.search["budget_stopped"]
        assert outcome.search["considered"] == 3
        assert outcome.num_strategies <= 3
        # The plan still ranks and still holds a default AllReduce.
        assert outcome.plan.default_all_reduce() is not None
        assert outcome.best.predicted_seconds == min(
            s.predicted_seconds for s in outcome.plan.strategies
        )

    def test_time_budget_always_considers_one_entry(self, topology):
        query = _query(
            (8, 4), (0,), 16 * MB, NCCLAlgorithm.RING, time_budget_s=1e-9
        )
        outcome = P2(topology, max_program_size=3).plan(query)
        assert outcome.search["time_stopped"]
        assert outcome.num_strategies >= 1
        outcome.to_dict()  # still serializable end to end

    def test_budget_validation(self):
        from repro.errors import QueryError

        for bad in ({"max_candidates": 0}, {"time_budget_s": 0},
                    {"time_budget_s": float("nan")}, {"time_budget_s": float("inf")}):
            with pytest.raises(QueryError):
                PlanQuery(
                    ParallelismAxes.of(8, 4), ReductionRequest.over(0), 1 * MB, **bad
                )

    def test_budgeted_plans_are_never_cached(self, topology):
        from repro.service import PlanningService

        with PlanningService(topology, max_program_size=3) as service:
            query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING, max_candidates=4)
            assert not service.plan(query).cache_hit
            # The ranking's tail under a budget can depend on the worker
            # count, which the fingerprint does not cover, so a repeat is
            # recomputed rather than served.
            assert not service.plan(query).cache_hit
            unbudgeted = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
            assert not service.plan(unbudgeted).cache_hit
            assert service.plan(unbudgeted).cache_hit

    def test_budget_round_trips_and_fingerprints(self, topology):
        from repro.service.fingerprint import plan_query_fingerprint

        base = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        budgeted = dataclasses.replace(base, max_candidates=7, time_budget_s=2.5)
        assert PlanQuery.from_dict(budgeted.to_dict()) == budgeted
        assert plan_query_fingerprint(
            topology, base, CostModel()
        ) != plan_query_fingerprint(topology, budgeted, CostModel())


class TestDriverIntrospection:
    def test_best_per_matrix_tracks_incumbents(self, topology):
        from repro.search import SearchDriver, SearchSpace

        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        driver = SearchDriver(topology, CostModel())
        result = driver.run(
            SearchSpace(topology=topology, cost_model=CostModel(), query=query)
        )
        best = result.best_per_matrix()
        assert set(best) == set(range(len(result.candidates)))
        for index, candidate in enumerate(result.candidates):
            expected = min(
                seconds
                for entry, seconds in zip(result.entries, result.predicted)
                if entry.candidate is candidate
            )
            assert best[index] == expected
        assert min(best.values()) == result.report.incumbent_seconds


class TestBoundsAdmissibility:
    """Every bound must sit at or below the exact predicted time it bounds."""

    @pytest.mark.parametrize("system", ["a100", "v100"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_profile_and_program_bounds_never_exceed_exact_price(
        self, system, algorithm
    ):
        topology = (a100_system if system == "a100" else v100_system)(num_nodes=2)
        shape = (topology.num_devices // 4, 4)
        candidates = synthesize_all(
            topology.hierarchy,
            ParallelismAxes(shape),
            ReductionRequest((0,)),
            max_program_size=3,
        )
        model = CostModel()
        simulator = ProgramSimulator(topology, model)
        for candidate in candidates:
            for program in candidate.programs:
                lowered = program.lowered
                if lowered.num_steps == 0:
                    continue
                profile = simulator.profile_for(lowered)
                for payload in PAYLOADS:
                    exact = simulator.simulate(
                        lowered, payload, algorithm
                    ).total_seconds
                    assert (
                        profile.lower_bound(payload, algorithm, model) <= exact
                    )
                    assert program_lower_bound(lowered, topology, model) <= exact

    def test_placement_bound_never_exceeds_any_program(self, topology):
        request = ReductionRequest((0,))
        model = CostModel()
        simulator = ProgramSimulator(topology, model)
        candidates = synthesize_all(
            topology.hierarchy, ParallelismAxes((8, 4)), request, max_program_size=3
        )
        for candidate in candidates:
            bound = placement_lower_bound(
                candidate.placement, request, topology, model
            )
            for program in candidate.programs:
                for payload in PAYLOADS:
                    for algorithm in ALGORITHMS:
                        exact = simulator.simulate(
                            program.lowered, payload, algorithm
                        ).total_seconds
                        assert bound <= exact

    def test_min_link_latency_covers_host_link(self, topology):
        assert min_link_latency(topology) <= min(
            link.latency for link in topology.interconnects
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_vectorized_lower_bounds_match_scalar_and_stay_admissible(
        self, topology, algorithm
    ):
        """BatchPricer.lower_bounds == profile.lower_bound per payload, and
        every vectorized bound keeps the admissibility invariant."""
        from repro.cost.batch import BatchPricer

        model = CostModel()
        simulator = ProgramSimulator(topology, model)
        candidates = synthesize_all(
            topology.hierarchy,
            ParallelismAxes((8, 4)),
            ReductionRequest((0,)),
            max_program_size=3,
        )
        checked = 0
        for candidate in candidates:
            for program in candidate.programs:
                lowered = program.lowered
                if lowered.num_steps == 0:
                    continue
                profile = simulator.profile_for(lowered)
                pricer = BatchPricer(profile)
                bounds = pricer.lower_bounds(PAYLOADS, algorithm, model)
                assert len(bounds) == len(PAYLOADS)
                for payload, bound in zip(PAYLOADS, bounds):
                    assert bound == profile.lower_bound(payload, algorithm, model)
                    exact = simulator.simulate(
                        lowered, payload, algorithm
                    ).total_seconds
                    assert bound <= exact
                    checked += 1
        assert checked > 0


class TestSearchStatisticsSurfacing:
    def test_merge_and_to_dict(self):
        first = SearchStatistics(nodes_expanded=3, per_size_counts={1: 1, 2: 2})
        second = SearchStatistics(
            nodes_expanded=4, hit_node_limit=True, per_size_counts={2: 1, 3: 5}
        )
        first.record_program(2)
        first.merge(second)
        assert first.nodes_expanded == 7
        assert first.hit_node_limit
        assert first.per_size_counts == {1: 1, 2: 4, 3: 5}
        encoded = first.to_dict()
        assert encoded["per_size_counts"] == {"1": 1, "2": 4, "3": 5}
        assert list(encoded["per_size_counts"]) == ["1", "2", "3"]

    def test_outcome_provenance_carries_search_and_synthesis_stats(self, topology):
        import json

        outcome = P2(topology, max_program_size=3).plan(
            _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        )
        provenance = outcome.provenance()
        assert provenance["search"]["considered"] == outcome.num_strategies
        assert provenance["synthesis_stats"]["programs_found"] > 0
        json.dumps(outcome.to_dict())  # strict JSON end to end

    def test_sweep_records_carry_search_provenance(self, tmp_path):
        from repro.analysis.serialization import iter_jsonl_records
        from repro.evaluation.runner import SweepRunner
        from repro.evaluation.scenarios import PRESETS

        scenarios = PRESETS["smoke"].scenarios()[:1]
        runner = SweepRunner(measure_programs=False)
        out = tmp_path / "sweep.jsonl"
        results = runner.run_stream(scenarios, out_path=out)
        assert results[0].search is not None
        assert results[0].synthesis_stats is not None
        record = next(iter_jsonl_records(out))
        assert record["provenance"]["search"]["considered"] > 0
        assert record["provenance"]["synthesis_stats"]["programs_found"] > 0
        assert set(record["baseline_speedups"]) >= {"all_reduce"}
        # ... and they survive the record round trip.
        from repro.analysis.serialization import result_from_record

        restored = result_from_record(record)
        assert restored.search == results[0].search
        assert restored.synthesis_stats == results[0].synthesis_stats
        assert restored.baseline_speedups == results[0].baseline_speedups


class TestOptimizeDeprecation:
    def test_optimize_warns_and_matches_plan(self, topology):
        p2 = P2(topology, max_program_size=3)
        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        with pytest.warns(DeprecationWarning, match="P2.optimize is deprecated"):
            legacy = p2.optimize(
                query.axes, query.request, query.bytes_per_device, query.algorithm
            )
        modern = p2.plan(query).plan
        assert _ranking(legacy) == _ranking(modern)


class TestEvaluatorProtocol:
    """n_workers is a formal attribute of the evaluator contract, not a hint."""

    def test_parallel_evaluator_satisfies_protocol(self, topology):
        from repro.search import CandidateEvaluator
        from repro.service.parallel import ParallelEvaluator

        with ParallelEvaluator(topology, CostModel(), 2) as pool:
            assert isinstance(pool, CandidateEvaluator)
            assert pool.n_workers == 2

    def test_driver_rejects_evaluator_without_n_workers(self, topology):
        from repro.errors import ServiceError
        from repro.search import SearchDriver

        class NoWidth:
            def evaluate(self, programs, bytes_per_device, algorithm):
                return [0.0] * len(programs)

        with pytest.raises(ServiceError, match="n_workers"):
            SearchDriver(topology, CostModel(), evaluator=NoWidth())

    def test_driver_rejects_evaluator_without_evaluate(self, topology):
        from repro.errors import ServiceError
        from repro.search import SearchDriver

        class NoEvaluate:
            n_workers = 2

        with pytest.raises(ServiceError, match="evaluate"):
            SearchDriver(topology, CostModel(), evaluator=NoEvaluate())

    def test_chunk_size_formula(self):
        from repro.search import driver_chunk_size

        assert driver_chunk_size(1) == 8
        assert driver_chunk_size(2) == 8
        assert driver_chunk_size(4) == 16


class TestShardedSearch:
    """The sharded driver's equivalence contract (repro.search.sharded)."""

    @pytest.mark.parametrize("shape,reduce_axes", SHAPES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_exhaustive_sharded_is_bit_identical(
        self, topology, shape, reduce_axes, algorithm
    ):
        query = _query(shape, reduce_axes, 1 * MB, algorithm)
        serial = P2(topology, max_program_size=3).plan(query)
        sharded = P2(topology, max_program_size=3).plan(
            dataclasses.replace(query, shards=4)
        )
        assert _ranking(serial.plan) == _ranking(sharded.plan)
        assert serial.plan.baselines == sharded.plan.baselines
        assert serial.fingerprint == sharded.fingerprint

    @pytest.mark.parametrize("payload", PAYLOADS)
    @pytest.mark.parametrize("shards", [2, 4])
    def test_exhaustive_sharded_across_payloads_and_widths(
        self, topology, payload, shards
    ):
        query = _query((8, 4), (0,), payload, NCCLAlgorithm.RING)
        serial = P2(topology, max_program_size=3).plan(query)
        sharded = P2(topology, max_program_size=3).plan(
            dataclasses.replace(query, shards=shards)
        )
        assert _ranking(serial.plan) == _ranking(sharded.plan)
        assert serial.plan.baselines == sharded.plan.baselines

    def test_budgeted_sharded_keeps_lossless_best(self, topology):
        query = _query(
            (8, 4), (0,), 16 * MB, NCCLAlgorithm.RING, max_candidates=10**9
        )
        serial = P2(topology, max_program_size=3).plan(query)
        sharded = P2(topology, max_program_size=3).plan(
            dataclasses.replace(query, shards=2)
        )
        assert sharded.best.predicted_seconds == serial.best.predicted_seconds
        assert sharded.best.program.signature() == serial.best.program.signature()
        assert sharded.plan.baselines == serial.plan.baselines
        assert sharded.search["budgeted"]

    def test_sharded_report_provenance(self, topology):
        import json

        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING, shards=2)
        outcome = P2(topology, max_program_size=3).plan(query)
        search = outcome.search
        assert search["shards"] == 2
        stats = search["shard_stats"]
        assert [entry["shard"] for entry in stats] == [0, 1]
        claimed = sorted(i for entry in stats for i in entry["matrices"])
        assert claimed == list(range(search["matrices_reached"]))
        assert outcome.n_workers == 2
        json.dumps(outcome.to_dict())  # provenance stays strict-JSON

    def test_shards_are_fingerprint_neutral(self, topology):
        from repro.cost.model import CostModel
        from repro.service.fingerprint import plan_query_fingerprint

        base = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        sharded = dataclasses.replace(base, shards=4)
        assert base == sharded  # compare=False: shards don't change identity
        assert plan_query_fingerprint(
            topology, base, CostModel()
        ) == plan_query_fingerprint(topology, sharded, CostModel())
        assert "shards" not in base.to_dict()
        assert PlanQuery.from_dict({**base.to_dict(), "shards": 4}).shards == 4

    def test_shards_validation(self):
        from repro.errors import QueryError

        for bad in (0, -1, 1.5, True):
            with pytest.raises(QueryError):
                PlanQuery(
                    ParallelismAxes.of(8, 4),
                    ReductionRequest.over(0),
                    1 * MB,
                    shards=bad,
                )

    def test_shards_conflict_with_workers(self, topology):
        from repro.errors import EvaluationError

        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING, shards=2)
        with pytest.raises(EvaluationError, match="shards"):
            P2(topology, max_program_size=3).plan(query, n_workers=2)

    def test_custom_sources_are_unshardable(self, topology):
        from repro.errors import SearchError
        from repro.search import SearchSpace
        from repro.search.sharded import ShardedSearchDriver

        class CustomSource:
            name = "custom"
            role = "search"

            def entries(self, space, watermark, report):
                return iter(())

        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        driver = ShardedSearchDriver(topology, CostModel(), shards=2)
        space = SearchSpace(topology=topology, cost_model=CostModel(), query=query)
        with pytest.raises(SearchError, match="cannot shard"):
            driver.run(space, sources=[CustomSource()])

    def test_single_matrix_falls_back_to_serial(self, topology):
        # One placement only: the sharded driver must not spawn workers, and
        # the report shows a serial (shards=1) search.
        query = _query((32,), (0,), 1 * MB, NCCLAlgorithm.RING, shards=4)
        outcome = P2(topology, max_program_size=3).plan(query)
        assert outcome.search["shards"] == 1
        assert "shard_stats" not in outcome.search

    def test_pinned_seed_prices_in_parent(self, topology):
        from repro.search import PinnedPlanSource, default_sources

        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        first = P2(topology, max_program_size=3).plan(query)
        sources = [PinnedPlanSource.from_plan(first.plan, top_k=1), *default_sources()]
        outcome = P2(topology, max_program_size=3).plan(
            dataclasses.replace(query, shards=2), sources=sources
        )
        assert outcome.search["seeds"] == 1
        assert _ranking(outcome.plan) == _ranking(first.plan)
        # An exhaustive sharded run reaches the same incumbent through the
        # seed, so it is stamped as seeded and timestamped early.
        assert outcome.search["seeded_incumbent"] is True
        assert outcome.search["time_to_incumbent_s"] is not None
        assert outcome.search["time_to_incumbent_s"] >= 0.0

    def test_near_miss_seed_is_disqualified_wholesale(self, topology):
        # A seed whose plan answers a *different* reduction request must be
        # rejected as a unit — no strategy from it may leak into the search —
        # and the resulting plan must be bit-identical to an unseeded run.
        from repro.search import PinnedPlanSource, default_sources

        foreign = P2(topology, max_program_size=3).plan(
            _query((8, 4), (1,), 1 * MB, NCCLAlgorithm.RING)
        )
        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        sources = [PinnedPlanSource.from_plan(foreign.plan, top_k=1), *default_sources()]
        seeded = P2(topology, max_program_size=3).plan(query, sources=sources)
        unseeded = P2(topology, max_program_size=3).plan(query)
        assert seeded.search["seeds"] == 0
        assert seeded.search["seeded_incumbent"] is False
        assert _ranking(seeded.plan) == _ranking(unseeded.plan)


class TestPlacementLedger:
    def test_home_slices_come_first(self):
        from repro.search.sharded import PlacementLedger

        ledger = PlacementLedger(6, 2)
        assert ledger.claim(0) == (0, False)
        assert ledger.claim(1) == (1, False)
        assert ledger.claim(0) == (2, False)
        assert ledger.claim(0) == (4, False)

    def test_exhausted_home_slice_steals(self):
        from repro.search.sharded import PlacementLedger

        ledger = PlacementLedger(5, 2)
        # Shard 0 drains its home slice {0, 2, 4}...
        assert [ledger.claim(0) for _ in range(3)] == [
            (0, False),
            (2, False),
            (4, False),
        ]
        # ...then steals shard 1's unclaimed work, flagged as stolen.
        assert ledger.claim(0) == (1, True)
        assert ledger.claim(0) == (3, True)
        assert ledger.claim(0) is None
        assert ledger.claim(1) is None
        assert ledger.claimed_count() == 5

    def test_every_matrix_claimed_exactly_once(self):
        from repro.search.sharded import PlacementLedger

        ledger = PlacementLedger(11, 3)
        claims = []
        while True:
            progressed = False
            for shard in range(3):
                claim = ledger.claim(shard)
                if claim is not None:
                    claims.append(claim[0])
                    progressed = True
            if not progressed:
                break
        assert sorted(claims) == list(range(11))


class TestSharedWatermark:
    def test_view_updates_propagate_globally(self):
        from repro.search.sharded import SharedWatermark

        shared = SharedWatermark(3)
        view0, view2 = shared.matrix_view(0), shared.matrix_view(2)
        assert view0.seconds == float("inf")
        assert view0.update(5.0)
        # The other matrix's view reads the *global* incumbent immediately.
        assert view2.seconds == 5.0
        assert not view2.update(7.0)  # worse globally...
        assert shared.matrix_seconds(2) == 7.0  # ...but its matrix slot kept it
        assert view2.update(1.0)
        assert view0.seconds == 1.0
        assert shared.seconds == 1.0
        assert shared.matrix_seconds(0) == 5.0

    def test_updates_cross_process_boundaries(self):
        import multiprocessing

        from repro.search.sharded import SharedWatermark

        shared = SharedWatermark(2)
        process = multiprocessing.Process(
            target=_lower_watermark_in_child, args=(shared,)
        )
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        assert shared.seconds == 0.25
        assert shared.matrix_seconds(1) == 0.25


def _lower_watermark_in_child(shared):
    view = shared.matrix_view(1)
    if not view.update(0.25):
        raise SystemExit(1)
