"""Tests for the streaming search driver (repro.search.driver / bounds).

The two load-bearing guarantees:

* **Exhaustive equivalence** — without a search budget the streaming driver
  reproduces the historical materialize-then-evaluate spine bit for bit
  (same entries, same floats, same profile-cache traffic).
* **Lossless pruning** — with bounds enabled (any search budget) the best
  strategy is bit-identical (cost *and* program signature) to the
  exhaustive plan, across shapes, payloads and both NCCL algorithms,
  because every lower bound is admissible: it never exceeds the exact
  predicted time it bounds.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import P2
from repro.cost.model import CostModel
from repro.cost.simulator import ProgramSimulator
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import PlanQuery
from repro.search import (
    min_link_latency,
    placement_lower_bound,
    program_lower_bound,
)
from repro.cost.nccl import NCCLAlgorithm
from repro.synthesis.pipeline import synthesize_all
from repro.synthesis.pruning import SearchStatistics
from repro.topology.gcp import a100_system, v100_system

MB = 1 << 20

# The lossless property is checked over a grid of shapes x payloads x
# algorithms: small symmetric topologies where the exhaustive answer is
# cheap to compute, including a singleton-reduction shape (zero-cost best).
SHAPES = [
    ((8, 4), (0,)),
    ((4, 8), (1,)),
    ((32,), (0,)),
    ((2, 16), (0,)),
]
PAYLOADS = [64 * 1024, 1 * MB, 64 * MB]
ALGORITHMS = [NCCLAlgorithm.RING, NCCLAlgorithm.TREE]


@pytest.fixture(scope="module")
def topology():
    return a100_system(num_nodes=2)


def _query(shape, reduce_axes, payload, algorithm, **kwargs):
    return PlanQuery(
        axes=ParallelismAxes(shape),
        request=ReductionRequest(reduce_axes),
        bytes_per_device=payload,
        algorithm=algorithm,
        max_program_size=3,
        **kwargs,
    )


def _ranking(plan):
    return [
        (s.matrix.entries, s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


class TestLosslessPruning:
    @pytest.mark.parametrize("shape,reduce_axes", SHAPES)
    @pytest.mark.parametrize("payload", PAYLOADS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bounded_search_returns_bit_identical_best(
        self, topology, shape, reduce_axes, payload, algorithm
    ):
        exhaustive = P2(topology, max_program_size=3).plan(
            _query(shape, reduce_axes, payload, algorithm)
        )
        pruned = P2(topology, max_program_size=3).plan(
            # A non-binding candidate budget turns bounds-based pruning on
            # without truncating enumeration: any difference from the
            # exhaustive best is a pruning (soundness) bug.
            _query(shape, reduce_axes, payload, algorithm, max_candidates=10**9)
        )
        assert pruned.search["budgeted"] and not pruned.search["budget_stopped"]
        assert pruned.best.predicted_seconds == exhaustive.best.predicted_seconds
        assert (
            pruned.best.program.signature() == exhaustive.best.program.signature()
        )
        assert pruned.best.matrix == exhaustive.best.matrix
        # Survivors keep the exhaustive ranking's relative order and floats.
        exhaustive_ranking = _ranking(exhaustive.plan)
        assert all(row in exhaustive_ranking for row in _ranking(pruned.plan))

    def test_zero_cost_best_prunes_everything_else(self, topology):
        # Reducing over a singleton axis needs no communication: the free
        # plan is found first and every communicating candidate and
        # placement is bound-rejected.
        query = PlanQuery(
            axes=ParallelismAxes((32, 1)),
            request=ReductionRequest((1,)),
            bytes_per_device=1 * MB,
            max_program_size=3,
            max_candidates=10**9,
        )
        outcome = P2(topology, max_program_size=3).plan(query)
        assert outcome.best.predicted_seconds == 0.0
        assert outcome.plan.speedup_over_default() == 1.0


class TestExhaustiveEquivalence:
    def test_streaming_spine_matches_legacy_eager_pipeline(self, topology):
        """The refactor contract: same entries, same floats, same counters."""
        from repro.api import (
            collect_strategy_entries,
            evaluate_entries_serial,
            rank_entries,
        )

        query = _query((8, 4), (0,), 64 * MB, NCCLAlgorithm.RING)
        candidates = synthesize_all(
            topology.hierarchy, query.axes, query.request, max_program_size=3
        )
        entries = collect_strategy_entries(candidates, query.request)
        legacy_simulator = ProgramSimulator(topology, CostModel())
        predicted = evaluate_entries_serial(
            entries,
            topology,
            CostModel(),
            query.bytes_per_device,
            query.algorithm,
            legacy_simulator,
        )
        legacy = rank_entries(entries, predicted, bytes_per_device=query.bytes_per_device)

        outcome = P2(topology, max_program_size=3).plan(query)
        assert [
            (s.matrix.entries, s.mnemonic, s.predicted_seconds) for s in legacy
        ] == [
            (s.matrix.entries, s.mnemonic, s.predicted_seconds)
            for s in outcome.plan.strategies
        ]
        # Per-query profile compilations match the legacy dedup accounting
        # (baseline programs share the synthesized signatures or add their
        # own, but within one query every signature compiles exactly once).
        assert outcome.profile_hits == 0
        assert outcome.profile_misses >= legacy_simulator.profile_misses

    def test_parallel_budgeted_matches_serial_budgeted(self, topology):
        query = _query((8, 4), (0,), 16 * MB, NCCLAlgorithm.RING, max_candidates=10**9)
        serial = P2(topology, max_program_size=3).plan(query)
        parallel = P2(topology, max_program_size=3).plan(query, n_workers=2)
        assert parallel.best.predicted_seconds == serial.best.predicted_seconds
        assert (
            parallel.best.program.signature() == serial.best.program.signature()
        )
        assert parallel.plan.baselines == serial.plan.baselines


class TestBudgets:
    def test_max_candidates_truncates_enumeration(self, topology):
        query = _query((8, 4), (0,), 16 * MB, NCCLAlgorithm.RING, max_candidates=3)
        outcome = P2(topology, max_program_size=3).plan(query)
        assert outcome.search["budget_stopped"]
        assert outcome.search["considered"] == 3
        assert outcome.num_strategies <= 3
        # The plan still ranks and still holds a default AllReduce.
        assert outcome.plan.default_all_reduce() is not None
        assert outcome.best.predicted_seconds == min(
            s.predicted_seconds for s in outcome.plan.strategies
        )

    def test_time_budget_always_considers_one_entry(self, topology):
        query = _query(
            (8, 4), (0,), 16 * MB, NCCLAlgorithm.RING, time_budget_s=1e-9
        )
        outcome = P2(topology, max_program_size=3).plan(query)
        assert outcome.search["time_stopped"]
        assert outcome.num_strategies >= 1
        outcome.to_dict()  # still serializable end to end

    def test_budget_validation(self):
        from repro.errors import QueryError

        for bad in ({"max_candidates": 0}, {"time_budget_s": 0},
                    {"time_budget_s": float("nan")}, {"time_budget_s": float("inf")}):
            with pytest.raises(QueryError):
                PlanQuery(
                    ParallelismAxes.of(8, 4), ReductionRequest.over(0), 1 * MB, **bad
                )

    def test_budgeted_plans_are_never_cached(self, topology):
        from repro.service import PlanningService

        with PlanningService(topology, max_program_size=3) as service:
            query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING, max_candidates=4)
            assert not service.plan(query).cache_hit
            # The ranking's tail under a budget can depend on the worker
            # count, which the fingerprint does not cover, so a repeat is
            # recomputed rather than served.
            assert not service.plan(query).cache_hit
            unbudgeted = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
            assert not service.plan(unbudgeted).cache_hit
            assert service.plan(unbudgeted).cache_hit

    def test_budget_round_trips_and_fingerprints(self, topology):
        from repro.service.fingerprint import plan_query_fingerprint

        base = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        budgeted = dataclasses.replace(base, max_candidates=7, time_budget_s=2.5)
        assert PlanQuery.from_dict(budgeted.to_dict()) == budgeted
        assert plan_query_fingerprint(
            topology, base, CostModel()
        ) != plan_query_fingerprint(topology, budgeted, CostModel())


class TestDriverIntrospection:
    def test_best_per_matrix_tracks_incumbents(self, topology):
        from repro.search import SearchDriver, SearchSpace

        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        driver = SearchDriver(topology, CostModel())
        result = driver.run(
            SearchSpace(topology=topology, cost_model=CostModel(), query=query)
        )
        best = result.best_per_matrix()
        assert set(best) == set(range(len(result.candidates)))
        for index, candidate in enumerate(result.candidates):
            expected = min(
                seconds
                for entry, seconds in zip(result.entries, result.predicted)
                if entry.candidate is candidate
            )
            assert best[index] == expected
        assert min(best.values()) == result.report.incumbent_seconds


class TestBoundsAdmissibility:
    """Every bound must sit at or below the exact predicted time it bounds."""

    @pytest.mark.parametrize("system", ["a100", "v100"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_profile_and_program_bounds_never_exceed_exact_price(
        self, system, algorithm
    ):
        topology = (a100_system if system == "a100" else v100_system)(num_nodes=2)
        shape = (topology.num_devices // 4, 4)
        candidates = synthesize_all(
            topology.hierarchy,
            ParallelismAxes(shape),
            ReductionRequest((0,)),
            max_program_size=3,
        )
        model = CostModel()
        simulator = ProgramSimulator(topology, model)
        for candidate in candidates:
            for program in candidate.programs:
                lowered = program.lowered
                if lowered.num_steps == 0:
                    continue
                profile = simulator.profile_for(lowered)
                for payload in PAYLOADS:
                    exact = simulator.simulate(
                        lowered, payload, algorithm
                    ).total_seconds
                    assert (
                        profile.lower_bound(payload, algorithm, model) <= exact
                    )
                    assert program_lower_bound(lowered, topology, model) <= exact

    def test_placement_bound_never_exceeds_any_program(self, topology):
        request = ReductionRequest((0,))
        model = CostModel()
        simulator = ProgramSimulator(topology, model)
        candidates = synthesize_all(
            topology.hierarchy, ParallelismAxes((8, 4)), request, max_program_size=3
        )
        for candidate in candidates:
            bound = placement_lower_bound(
                candidate.placement, request, topology, model
            )
            for program in candidate.programs:
                for payload in PAYLOADS:
                    for algorithm in ALGORITHMS:
                        exact = simulator.simulate(
                            program.lowered, payload, algorithm
                        ).total_seconds
                        assert bound <= exact

    def test_min_link_latency_covers_host_link(self, topology):
        assert min_link_latency(topology) <= min(
            link.latency for link in topology.interconnects
        )


class TestSearchStatisticsSurfacing:
    def test_merge_and_to_dict(self):
        first = SearchStatistics(nodes_expanded=3, per_size_counts={1: 1, 2: 2})
        second = SearchStatistics(
            nodes_expanded=4, hit_node_limit=True, per_size_counts={2: 1, 3: 5}
        )
        first.record_program(2)
        first.merge(second)
        assert first.nodes_expanded == 7
        assert first.hit_node_limit
        assert first.per_size_counts == {1: 1, 2: 4, 3: 5}
        encoded = first.to_dict()
        assert encoded["per_size_counts"] == {"1": 1, "2": 4, "3": 5}
        assert list(encoded["per_size_counts"]) == ["1", "2", "3"]

    def test_outcome_provenance_carries_search_and_synthesis_stats(self, topology):
        import json

        outcome = P2(topology, max_program_size=3).plan(
            _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        )
        provenance = outcome.provenance()
        assert provenance["search"]["considered"] == outcome.num_strategies
        assert provenance["synthesis_stats"]["programs_found"] > 0
        json.dumps(outcome.to_dict())  # strict JSON end to end

    def test_sweep_records_carry_search_provenance(self, tmp_path):
        from repro.analysis.serialization import iter_jsonl_records
        from repro.evaluation.runner import SweepRunner
        from repro.evaluation.scenarios import PRESETS

        scenarios = PRESETS["smoke"].scenarios()[:1]
        runner = SweepRunner(measure_programs=False)
        out = tmp_path / "sweep.jsonl"
        results = runner.run_stream(scenarios, out_path=out)
        assert results[0].search is not None
        assert results[0].synthesis_stats is not None
        record = next(iter_jsonl_records(out))
        assert record["provenance"]["search"]["considered"] > 0
        assert record["provenance"]["synthesis_stats"]["programs_found"] > 0
        assert set(record["baseline_speedups"]) >= {"all_reduce"}
        # ... and they survive the record round trip.
        from repro.analysis.serialization import result_from_record

        restored = result_from_record(record)
        assert restored.search == results[0].search
        assert restored.synthesis_stats == results[0].synthesis_stats
        assert restored.baseline_speedups == results[0].baseline_speedups


class TestOptimizeDeprecation:
    def test_optimize_warns_and_matches_plan(self, topology):
        p2 = P2(topology, max_program_size=3)
        query = _query((8, 4), (0,), 1 * MB, NCCLAlgorithm.RING)
        with pytest.warns(DeprecationWarning, match="P2.optimize is deprecated"):
            legacy = p2.optimize(
                query.axes, query.request, query.bytes_per_device, query.algorithm
            )
        modern = p2.plan(query).plan
        assert _ranking(legacy) == _ranking(modern)
