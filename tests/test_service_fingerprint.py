"""Tests for query fingerprinting (repro.service.fingerprint)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace


from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.service.fingerprint import (
    canonical_query,
    canonical_topology,
    query_fingerprint,
)
from repro.topology.gcp import a100_system, v100_system

MB = 1 << 20


def _fingerprint(**overrides) -> str:
    query = dict(
        topology=a100_system(num_nodes=2),
        axes=ParallelismAxes.of(8, 4),
        request=ReductionRequest.over(0),
        bytes_per_device=64 * MB,
        algorithm=NCCLAlgorithm.RING,
        cost_model=CostModel(),
        max_program_size=5,
        max_matrices=None,
    )
    query.update(overrides)
    return query_fingerprint(**query)


class TestDeterminism:
    def test_repeated_calls_agree(self):
        assert _fingerprint() == _fingerprint()

    def test_equal_but_distinct_objects_agree(self):
        assert _fingerprint() == _fingerprint(
            topology=a100_system(num_nodes=2),
            axes=ParallelismAxes.of(8, 4),
            request=ReductionRequest.over(0),
        )

    def test_is_hex_sha256(self):
        fingerprint = _fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # raises if not hex

    def test_canonical_query_is_json_serializable(self):
        canonical = canonical_query(
            a100_system(num_nodes=2),
            ParallelismAxes.of(8, 4),
            ReductionRequest.over(0),
            64 * MB,
            NCCLAlgorithm.RING,
            CostModel(),
            5,
        )
        assert json.loads(json.dumps(canonical)) == canonical


class TestSensitivity:
    """Every pipeline input must move the fingerprint."""

    def test_topology(self):
        assert _fingerprint() != _fingerprint(topology=v100_system(num_nodes=4))

    def test_scaled_link_bandwidth(self):
        base = a100_system(num_nodes=2)
        scaled = replace(
            base, interconnects=(base.interconnects[0].scaled(0.5),) + base.interconnects[1:]
        )
        assert _fingerprint() != _fingerprint(topology=scaled)

    def test_axes(self):
        assert _fingerprint() != _fingerprint(axes=ParallelismAxes.of(4, 8))

    def test_axis_names(self):
        named = ParallelismAxes.of(8, 4, names=("dp", "tp"))
        assert _fingerprint() != _fingerprint(axes=named)

    def test_reduction_axes(self):
        assert _fingerprint() != _fingerprint(request=ReductionRequest.over(1))

    def test_payload(self):
        assert _fingerprint() != _fingerprint(bytes_per_device=32 * MB)

    def test_algorithm(self):
        assert _fingerprint() != _fingerprint(algorithm=NCCLAlgorithm.TREE)

    def test_cost_model(self):
        assert _fingerprint() != _fingerprint(cost_model=CostModel(launch_overhead=5e-6))

    def test_max_program_size(self):
        assert _fingerprint() != _fingerprint(max_program_size=4)

    def test_max_matrices(self):
        assert _fingerprint() != _fingerprint(max_matrices=3)


class TestCrossProcessStability:
    """Fingerprints are cache keys on disk: they must survive restarts."""

    SCRIPT = (
        "from repro.service.fingerprint import query_fingerprint\n"
        "from repro.topology.gcp import a100_system\n"
        "from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest\n"
        "from repro.cost.model import CostModel\n"
        "from repro.cost.nccl import NCCLAlgorithm\n"
        "print(query_fingerprint(a100_system(num_nodes=2), ParallelismAxes.of(8, 4),\n"
        "      ReductionRequest.over(0), 67108864, NCCLAlgorithm.RING, CostModel(), 5))\n"
    )

    def _fingerprint_in_subprocess(self, hash_seed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ["src", env.get("PYTHONPATH", "")] if p
        )
        output = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        return output.stdout.strip()

    def test_stable_across_process_restarts_and_hash_seeds(self):
        here = _fingerprint()
        assert self._fingerprint_in_subprocess("0") == here
        assert self._fingerprint_in_subprocess("12345") == here


class TestCanonicalTopology:
    def test_roundtrip_equality_detects_same_system(self):
        assert canonical_topology(a100_system(num_nodes=2)) == canonical_topology(
            a100_system(num_nodes=2)
        )

    def test_host_link_included(self):
        v100 = v100_system(num_nodes=2)
        canonical = canonical_topology(v100)
        assert canonical["host_link"] is not None
