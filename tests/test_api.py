"""Tests for the high-level P2 API."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api import P2
from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.topology.gcp import a100_system

MB = 1 << 20


@pytest.fixture(scope="module")
def plan():
    p2 = P2(a100_system(num_nodes=2), max_program_size=3)
    return p2.optimize(
        ParallelismAxes.of(8, 4),
        ReductionRequest.over(0),
        bytes_per_device=64 * MB,
    )


@pytest.fixture(scope="module")
def tool():
    return P2(a100_system(num_nodes=2), max_program_size=3)


class TestOptimize:
    def test_strategies_sorted_by_prediction(self, plan):
        times = [s.predicted_seconds for s in plan.strategies]
        assert times == sorted(times)
        assert plan.best.predicted_seconds == times[0]

    def test_covers_every_matrix(self, plan):
        matrices = {s.matrix.describe() for s in plan.strategies}
        assert matrices == {"[[1 8] [2 2]]", "[[2 4] [1 4]]"}

    def test_default_all_reduce_available(self, plan):
        default = plan.default_all_reduce()
        assert default.is_default_all_reduce
        assert plan.speedup_over_default() >= 1.0

    def test_default_for_specific_matrix(self, plan):
        matrix = plan.strategies[-1].matrix
        default = plan.default_all_reduce(matrix)
        assert default.matrix == matrix

    def test_top_k(self, plan):
        assert len(plan.top(3)) == 3
        assert plan.top(0) == []

    def test_strategies_for_matrix(self, plan):
        matrix = plan.best.matrix
        subset = plan.strategies_for_matrix(matrix)
        assert all(s.matrix == matrix for s in subset)
        assert plan.best in subset

    def test_describe(self, plan):
        text = plan.describe(top_k=3)
        assert "strategies" in text
        assert plan.best.describe()

    def test_best_placement_keeps_reduction_local(self, plan):
        # With 8-way reduction on a 2x16 system the best placement puts the
        # reduction axis inside one node (paper Result 3).
        assert plan.best.matrix.describe() == "[[1 8] [2 2]]"

    def test_invalid_payload_rejected(self, tool):
        with pytest.raises(EvaluationError):
            tool.optimize(ParallelismAxes.of(32), ReductionRequest.over(0), 0)


class TestSpeedupOverDefault:
    """Regression tests: a zero-cost best strategy must not report 1.0x."""

    def test_zero_cost_best_vs_costly_default_is_infinite(self, plan):
        from repro.api import OptimizationPlan

        free = replace(plan.best, predicted_seconds=0.0, is_default_all_reduce=False)
        default = plan.default_all_reduce()
        assert default.predicted_seconds > 0
        degenerate = OptimizationPlan(
            axes=plan.axes,
            request=plan.request,
            bytes_per_device=plan.bytes_per_device,
            algorithm=plan.algorithm,
            strategies=[free, default],
            candidates=plan.candidates,
        )
        assert degenerate.speedup_over_default() == float("inf")

    def test_zero_cost_best_and_zero_cost_default_is_one(self, plan):
        from repro.api import OptimizationPlan

        free = replace(plan.best, predicted_seconds=0.0, is_default_all_reduce=False)
        free_default = replace(plan.default_all_reduce(), predicted_seconds=0.0)
        degenerate = OptimizationPlan(
            axes=plan.axes,
            request=plan.request,
            bytes_per_device=plan.bytes_per_device,
            algorithm=plan.algorithm,
            strategies=[free, free_default],
            candidates=plan.candidates,
        )
        assert degenerate.speedup_over_default() == 1.0

    def test_normal_plan_unchanged(self, plan):
        assert plan.speedup_over_default() >= 1.0
        assert plan.speedup_over_default() != float("inf")


class TestSimulateMeasureVerify:
    def test_simulate_detail(self, tool, plan):
        strategy = plan.default_all_reduce()
        result = tool.simulate(strategy, bytes_per_device=64 * MB)
        assert result.total_seconds > 0
        assert result.num_steps == strategy.program.num_steps

    def test_measure(self, tool, plan):
        strategy = plan.best
        result = tool.measure(strategy, bytes_per_device=16 * MB, num_runs=1)
        assert result.total_seconds > 0

    def test_verify(self, tool, plan):
        report = tool.verify(plan.best, ReductionRequest.over(0))
        assert report.ok

    def test_measure_tree_algorithm(self, tool, plan):
        result = tool.measure(
            plan.best, bytes_per_device=16 * MB, algorithm=NCCLAlgorithm.TREE, num_runs=1
        )
        assert result.algorithm == NCCLAlgorithm.TREE
