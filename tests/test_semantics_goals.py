"""Tests for repro.semantics.goals."""

from __future__ import annotations

import pytest

from repro.errors import SemanticsError
from repro.semantics.goals import all_reduce_goal, goal_context, initial_context, initial_state
from repro.semantics.state import DeviceState


class TestInitialContext:
    def test_each_device_holds_only_its_own_column(self):
        context = initial_context(3)
        for device in range(3):
            assert context[device] == DeviceState.initial(3, device)

    def test_single_device(self):
        context = initial_context(1)
        assert context.num_devices == 1

    def test_rejects_zero_devices(self):
        with pytest.raises(SemanticsError):
            initial_context(0)

    def test_initial_state_helper(self):
        assert initial_state(4, 2) == DeviceState.initial(4, 2)


class TestGoalContext:
    def test_all_reduce_goal_is_full_matrix(self):
        goal = all_reduce_goal(3)
        assert all(state == DeviceState.full(3) for state in goal)

    def test_grouped_goal(self):
        goal = goal_context(4, [[0, 1], [2, 3]])
        assert goal[0] == DeviceState.full(4, [0, 1])
        assert goal[3] == DeviceState.full(4, [2, 3])

    def test_groups_must_partition(self):
        with pytest.raises(SemanticsError):
            goal_context(4, [[0, 1], [1, 2, 3]])  # device 1 twice
        with pytest.raises(SemanticsError):
            goal_context(4, [[0, 1]])  # 2 and 3 missing
        with pytest.raises(SemanticsError):
            goal_context(4, [[0, 1], [2, 5]])  # out of range

    def test_singleton_groups_allowed(self):
        goal = goal_context(3, [[0], [1, 2]])
        assert goal[0] == DeviceState.full(3, [0])
        # A singleton group's goal equals its initial state.
        assert goal[0] == DeviceState.initial(3, 0)
