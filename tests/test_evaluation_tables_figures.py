"""Tests for the table/figure generators and reports (fast, reduced payloads)."""

from __future__ import annotations

import pytest

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.config import ExperimentConfig, SystemKind, figure11_configs
from repro.evaluation.figures import build_figure11
from repro.evaluation.report import (
    render_matrix_result,
    render_sweep_result,
    render_sweep_summary,
)
from repro.evaluation.runner import SweepRunner
from repro.evaluation.tables import (
    build_appendix_table,
    build_table3,
    build_table4,
    build_table5,
    table4_rows_from_results,
)

PAYLOAD_SCALE = 0.002


def make_config(name, system, nodes, axes, reduction, algorithm=NCCLAlgorithm.RING):
    return ExperimentConfig(
        name=name,
        system=system,
        num_nodes=nodes,
        axes=axes,
        reduction_axes=reduction,
        algorithm=algorithm,
        payload_scale=PAYLOAD_SCALE,
        max_program_size=3,
    )


@pytest.fixture(scope="module")
def small_results():
    runner = SweepRunner(measurement_runs=1)
    configs = [
        make_config("small-a100", SystemKind.A100, 2, (8, 4), (0,)),
        make_config("small-v100", SystemKind.V100, 2, (16,), (0,)),
    ]
    return runner.run_many(configs)


class TestTable3:
    def test_predicted_variant_runs_quickly(self):
        artifact = build_table3(payload_scale=PAYLOAD_SCALE, measured=False)
        assert artifact.num_rows > 0
        # Columns: system/axes, matrix, 4 time columns.
        assert len(artifact.headers) == 6
        assert "Table 3" in artifact.text
        # Placement impact: within one shape, the same reduction axis must
        # show a large spread across matrices (paper Result 1).
        by_shape = {}
        for row in artifact.rows:
            by_shape.setdefault(row[0], []).append(row)
        spread_found = False
        for rows in by_shape.values():
            axis0_ring = [r[2] for r in rows if r[2] > 0]
            if len(axis0_ring) >= 2 and max(axis0_ring) / min(axis0_ring) > 20:
                spread_found = True
        assert spread_found

    def test_measured_variant_on_reduced_payload(self):
        artifact = build_table3(payload_scale=0.001, measured=True)
        assert artifact.num_rows > 0


class TestTable4:
    def test_rows_from_results(self, small_results):
        rows = table4_rows_from_results(small_results)
        assert len(rows) == sum(len(r.matrices) for r in small_results)
        for row in rows:
            speedup = row[8]
            assert speedup >= 0.99  # the optimum is never worse than AllReduce

    def test_build_table4_from_existing_results(self, small_results):
        artifact = build_table4(results=small_results)
        assert "Speedup" in artifact.headers
        assert artifact.num_rows > 0


class TestTable5:
    def test_accuracy_table_from_results(self, small_results):
        artifact = build_table5(results=small_results)
        assert artifact.rows[-1][0] == "Total"
        for value in artifact.rows[-1][1:]:
            assert 0.0 <= value <= 100.0


class TestAppendixTable:
    def test_build(self, small_results):
        artifact = build_appendix_table(small_results)
        assert artifact.num_rows == sum(len(r.matrices) for r in small_results)
        assert "Appendix" in artifact.text

    def test_requires_results(self):
        with pytest.raises(EvaluationError):
            build_appendix_table([])


class TestFigure11:
    def test_series_from_result(self, small_results):
        series = build_figure11(small_results[0].config, result=small_results[0])
        assert series.num_points == small_results[0].total_programs
        # Points sorted by measured time.
        measured = [p.measured_seconds for p in series.points]
        assert measured == sorted(measured)
        assert 0 <= series.mean_relative_error < 2.0
        assert -1.0 <= series.spearman_correlation() <= 1.0
        text = series.render(max_rows=5)
        assert "Figure 11" in text and "Spearman" in text

    def test_simulation_follows_measurement_trend(self, small_results):
        """The analytic prediction must rank programs similarly to the testbed."""
        series = build_figure11(small_results[0].config, result=small_results[0])
        assert series.spearman_correlation() > 0.6

    def test_max_programs_cap(self, small_results):
        series = build_figure11(
            small_results[0].config, result=small_results[0], max_programs=3
        )
        assert series.num_points == 3

    def test_figure11_configs_exist(self):
        assert len(figure11_configs(PAYLOAD_SCALE)) == 2


class TestReports:
    def test_render_matrix_result(self, small_results):
        text = render_matrix_result(small_results[0].matrices[0])
        assert "matrix" in text and "speedup" in text

    def test_render_sweep_result(self, small_results):
        text = render_sweep_result(small_results[0], max_programs=3)
        assert small_results[0].config.name in text

    def test_render_sweep_summary(self, small_results):
        text = render_sweep_summary(small_results)
        assert "Sweep summary" in text
        for result in small_results:
            assert result.config.name in text
