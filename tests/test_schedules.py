"""Tests for the chunk-level ring/tree schedules and their executor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.nccl import NCCLAlgorithm, bytes_on_wire
from repro.errors import ReproError, RuntimeExecutionError
from repro.runtime.cluster import SimCluster
from repro.runtime.executor import CollectiveExecutor
from repro.schedules import (
    build_ring_schedule,
    build_tree_schedule,
    execute_schedule,
    schedule_statistics,
)
from repro.schedules.executor import ScheduleExecutor
from repro.schedules.transfer import CollectiveSchedule, ScheduleRound, Transfer
from repro.semantics.collectives import Collective


class TestScheduleDataModel:
    def test_transfer_validation(self):
        with pytest.raises(ReproError):
            Transfer(0, 0, 0, True)
        with pytest.raises(ReproError):
            Transfer(-1, 0, 0, True)

    def test_round_rejects_duplicate_destination_block(self):
        with pytest.raises(ReproError):
            ScheduleRound((Transfer(0, 2, 1, True), Transfer(1, 2, 1, True)))

    def test_schedule_validation(self):
        with pytest.raises(ReproError):
            CollectiveSchedule(Collective.ALL_REDUCE, 1, 1, ())
        with pytest.raises(ReproError):
            CollectiveSchedule(
                Collective.ALL_REDUCE, 2, 1,
                (ScheduleRound((Transfer(0, 5, 0, True),)),),
            )
        with pytest.raises(ReproError):
            CollectiveSchedule(
                Collective.ALL_REDUCE, 2, 1,
                (ScheduleRound((Transfer(0, 1, 3, True),)),),
            )

    def test_member_result_blocks_defaults_to_all(self):
        schedule = build_ring_schedule(Collective.ALL_REDUCE, 4)
        assert schedule.member_result_blocks(2) == (0, 1, 2, 3)

    def test_describe_and_statistics(self):
        schedule = build_ring_schedule(Collective.ALL_REDUCE, 4)
        assert "ring" in schedule.describe()
        stats = schedule_statistics(schedule)
        assert stats.num_rounds == 6
        assert stats.max_blocks_sent == 6  # 2(g-1) blocks of size n/g


class TestRingScheduleShapes:
    @pytest.mark.parametrize("group_size", [2, 3, 4, 8])
    def test_allreduce_round_and_transfer_counts(self, group_size):
        schedule = build_ring_schedule(Collective.ALL_REDUCE, group_size)
        assert schedule.num_rounds == 2 * (group_size - 1)
        assert schedule.num_transfers == 2 * (group_size - 1) * group_size

    @pytest.mark.parametrize("group_size", [2, 4, 8])
    def test_ring_bytes_match_cost_model(self, group_size):
        """The schedule's per-device send volume equals the alpha-beta factor.

        The cost model expresses AllGather traffic in terms of the per-device
        *input* shard, while the schedule's blocks partition the full gathered
        payload, so the AllGather comparison converts between the two.
        """
        payload = 1024.0
        for op in (Collective.ALL_REDUCE, Collective.REDUCE_SCATTER, Collective.ALL_GATHER):
            schedule = build_ring_schedule(op, group_size)
            stats = schedule_statistics(schedule)
            scheduled = stats.bytes_sent_per_device(payload, schedule.num_blocks)
            model_payload = payload / group_size if op == Collective.ALL_GATHER else payload
            model = bytes_on_wire(op, NCCLAlgorithm.RING, group_size, model_payload)
            assert scheduled == pytest.approx(model)

    def test_reduce_scatter_declares_owners(self):
        schedule = build_ring_schedule(Collective.REDUCE_SCATTER, 4)
        owners = [schedule.member_result_blocks(i) for i in range(4)]
        assert sorted(block for blocks in owners for block in blocks) == [0, 1, 2, 3]

    def test_chain_collectives(self):
        reduce = build_ring_schedule(Collective.REDUCE, 4, num_blocks=2)
        assert reduce.member_result_blocks(0) == (0, 1)
        assert reduce.member_result_blocks(3) == ()
        broadcast = build_ring_schedule(Collective.BROADCAST, 4, num_blocks=2)
        assert broadcast.num_rounds == 3

    def test_too_small_group_rejected(self):
        with pytest.raises(ReproError):
            build_ring_schedule(Collective.ALL_REDUCE, 1)


class TestTreeScheduleShapes:
    @pytest.mark.parametrize("group_size", [2, 3, 4, 5, 8])
    def test_reduce_depth_logarithmic(self, group_size):
        import math

        schedule = build_tree_schedule(Collective.REDUCE, group_size)
        assert schedule.num_rounds <= max(1, math.ceil(math.log2(group_size)))

    def test_allreduce_is_reduce_plus_broadcast(self):
        allreduce = build_tree_schedule(Collective.ALL_REDUCE, 8)
        reduce = build_tree_schedule(Collective.REDUCE, 8)
        broadcast = build_tree_schedule(Collective.BROADCAST, 8)
        assert allreduce.num_rounds == reduce.num_rounds + broadcast.num_rounds

    def test_unsupported_collectives_rejected(self):
        with pytest.raises(ReproError):
            build_tree_schedule(Collective.REDUCE_SCATTER, 4)
        with pytest.raises(ReproError):
            build_tree_schedule(Collective.ALL_GATHER, 4)


class TestScheduleExecution:
    """Schedules must compute exactly what the collective-level executor computes."""

    def _clusters(self, num_devices):
        a = SimCluster.create(num_devices, elems_per_chunk=2, seed=5)
        b = SimCluster.create(num_devices, elems_per_chunk=2, seed=5)
        return a, b

    @pytest.mark.parametrize("group_size", [2, 3, 4, 8])
    def test_ring_allreduce_matches_collective(self, group_size):
        scheduled, reference = self._clusters(group_size)
        group = list(range(group_size))
        execute_schedule(build_ring_schedule(Collective.ALL_REDUCE, group_size), scheduled, group)
        CollectiveExecutor(reference).all_reduce(group)
        for device in group:
            np.testing.assert_allclose(
                scheduled[device].full_payload(), reference[device].full_payload()
            )

    @pytest.mark.parametrize("group_size", [2, 4, 8])
    def test_tree_allreduce_matches_collective(self, group_size):
        scheduled, reference = self._clusters(group_size)
        group = list(range(group_size))
        execute_schedule(
            build_tree_schedule(Collective.ALL_REDUCE, group_size, num_blocks=group_size),
            scheduled,
            group,
        )
        CollectiveExecutor(reference).all_reduce(group)
        for device in group:
            np.testing.assert_allclose(
                scheduled[device].full_payload(), reference[device].full_payload()
            )

    @pytest.mark.parametrize("group_size", [2, 4])
    def test_ring_reduce_scatter_produces_disjoint_reduced_blocks(self, group_size):
        cluster, _ = self._clusters(group_size)
        group = list(range(group_size))
        expected = cluster.expected_reduction(group)
        execute_schedule(
            build_ring_schedule(Collective.REDUCE_SCATTER, group_size), cluster, group
        )
        owned = []
        for device in group:
            chunks = cluster[device].sorted_valid_chunks
            assert len(chunks) == 1
            owned.extend(chunks)
            for chunk in chunks:
                start = chunk * cluster.elems_per_chunk
                np.testing.assert_allclose(
                    cluster[device].chunk(chunk),
                    expected[start : start + cluster.elems_per_chunk],
                )
        assert sorted(owned) == list(range(group_size))

    def test_ring_reduce_and_tree_broadcast_round_trip(self):
        cluster, reference = self._clusters(4)
        group = [0, 1, 2, 3]
        expected = cluster.expected_reduction(group)
        execute_schedule(build_tree_schedule(Collective.REDUCE, 4, num_blocks=4), cluster, group)
        assert cluster[0].num_valid_chunks == 4
        assert cluster[1].num_valid_chunks == 0
        execute_schedule(build_tree_schedule(Collective.BROADCAST, 4, num_blocks=4), cluster, group)
        for device in group:
            np.testing.assert_allclose(cluster[device].full_payload(), expected)

    def test_ring_chain_reduce_matches_collective(self):
        scheduled, reference = self._clusters(4)
        group = [0, 1, 2, 3]
        execute_schedule(build_ring_schedule(Collective.REDUCE, 4, num_blocks=4), scheduled, group)
        CollectiveExecutor(reference).reduce(group)
        np.testing.assert_allclose(scheduled[0].full_payload(), reference[0].full_payload())
        assert scheduled[1].num_valid_chunks == reference[1].num_valid_chunks == 0

    def test_executor_argument_validation(self):
        cluster, _ = self._clusters(4)
        schedule = build_ring_schedule(Collective.ALL_REDUCE, 4)
        executor = ScheduleExecutor(cluster)
        with pytest.raises(RuntimeExecutionError):
            executor.execute(schedule, [0, 1])
        with pytest.raises(RuntimeExecutionError):
            executor.execute(schedule, [0, 1, 2, 2])
        with pytest.raises(RuntimeExecutionError):
            executor.execute(schedule, [0, 1, 2, 9])

    def test_block_partition_divisibility_checked(self):
        cluster = SimCluster.create(3, elems_per_chunk=1)
        schedule = build_ring_schedule(Collective.ALL_REDUCE, 2)
        with pytest.raises(RuntimeExecutionError):
            ScheduleExecutor(cluster).execute(schedule, [0, 1])

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_ring_allreduce_property(self, group_size):
        cluster = SimCluster.create(group_size, elems_per_chunk=1, seed=group_size)
        group = list(range(group_size))
        expected = cluster.expected_reduction(group)
        execute_schedule(build_ring_schedule(Collective.ALL_REDUCE, group_size), cluster, group)
        for device in group:
            np.testing.assert_allclose(cluster[device].full_payload(), expected)
