"""Tests for the candidate-source layer (repro.search.source).

The contracts pinned here:

* ``SynthesisSource`` reproduces the eager
  ``collect_strategy_entries(synthesize_all(...))`` entry list exactly.
* ``BaselineSource`` entries price bit-identically to the standalone
  constructions in ``repro.baselines`` — baselines as planning candidates
  report the very same numbers the evaluation tables always used.
* ``PinnedPlanSource`` replays only in-space strategies and seeds the
  branch-and-bound incumbent.
* Custom source lists plug into ``P2.plan(sources=...)`` but are rejected
  when routed through a caching service.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import P2, collect_strategy_entries
from repro.baselines import blueconnect, default_all_reduce, reduce_allreduce_broadcast
from repro.cost.model import CostModel
from repro.cost.simulator import ProgramSimulator
from repro.errors import EvaluationError, SynthesisError
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.query import PlanQuery
from repro.search import (
    BASELINE_ALL_REDUCE,
    BASELINE_BLUECONNECT,
    BASELINE_HIERARCHICAL,
    BaselineSource,
    CandidateSource,
    PinnedPlanSource,
    SearchDriver,
    SearchReport,
    SearchSpace,
    SynthesisSource,
    Watermark,
    default_sources,
)
from repro.service import PlanningService
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.pipeline import synthesize_all
from repro.topology.gcp import a100_system

MB = 1 << 20


@pytest.fixture(scope="module")
def topology():
    return a100_system(num_nodes=2)


@pytest.fixture(scope="module")
def query_84():
    return PlanQuery(
        axes=ParallelismAxes.of(8, 4),
        request=ReductionRequest.over(0),
        bytes_per_device=64 * MB,
        max_program_size=3,
    )


def _space(topology, query):
    return SearchSpace(topology=topology, cost_model=CostModel(), query=query)


def _pull_all(source, space):
    return list(source.entries(space, Watermark(), SearchReport()))


class TestSynthesisSource:
    def test_stream_matches_eager_entry_list(self, topology, query_84):
        stream = _pull_all(SynthesisSource(), _space(topology, query_84))
        candidates = synthesize_all(
            topology.hierarchy,
            query_84.axes,
            query_84.request,
            max_program_size=query_84.max_program_size,
        )
        eager = collect_strategy_entries(candidates, query_84.request)
        assert len(stream) == len(eager)
        for streamed, collected in zip(stream, eager):
            assert streamed.candidate.matrix == collected.candidate.matrix
            assert streamed.mnemonic == collected.mnemonic
            assert streamed.size == collected.size
            assert streamed.is_default_all_reduce == collected.is_default_all_reduce
            assert streamed.lowered.signature() == collected.lowered.signature()

    def test_finite_watermark_prunes_whole_placements(self, topology, query_84):
        source = SynthesisSource()
        space = _space(topology, query_84)
        report = SearchReport()
        # An incumbent below any communicating placement's bound (the launch
        # overhead alone exceeds it) prunes every placement before synthesis.
        entries = list(source.entries(space, Watermark(1e-12), report))
        assert entries == []
        assert report.placements_pruned == len(
            enumerate_parallelism_matrices(topology.hierarchy, query_84.axes)
        )


class TestBaselineSource:
    def test_prices_identical_to_standalone_constructions(self, topology, query_84):
        """The satellite contract: sourced baselines == repro.baselines, exactly."""
        simulator = ProgramSimulator(topology, CostModel())
        expected = {}
        for matrix in enumerate_parallelism_matrices(topology.hierarchy, query_84.axes):
            placement = DevicePlacement(matrix)
            hierarchy = build_synthesis_hierarchy(matrix, query_84.request)
            programs = {
                BASELINE_ALL_REDUCE: default_all_reduce(placement, query_84.request)
            }
            try:
                programs[BASELINE_HIERARCHICAL] = reduce_allreduce_broadcast(
                    hierarchy, placement
                )
                programs[BASELINE_BLUECONNECT] = blueconnect(hierarchy, placement)
            except SynthesisError:
                pass
            for name, program in programs.items():
                if program.num_steps == 0:
                    seconds = 0.0
                else:
                    seconds = simulator.simulate(
                        program, query_84.bytes_per_device, query_84.algorithm
                    ).total_seconds
                if name not in expected or seconds < expected[name]:
                    expected[name] = seconds

        outcome = P2(topology, max_program_size=3).plan(query_84)
        assert outcome.plan.baselines == expected  # exact floats, no approx

    def test_every_baseline_speedup_reported(self, topology, query_84):
        outcome = P2(topology, max_program_size=3).plan(query_84)
        assert set(outcome.baseline_speedups()) == {
            BASELINE_ALL_REDUCE,
            BASELINE_HIERARCHICAL,
            BASELINE_BLUECONNECT,
        }
        # The best strategy can never lose to a baseline that lives inside
        # the search space, and all_reduce always does.
        assert outcome.baseline_speedups()[BASELINE_ALL_REDUCE] >= 1.0

    def test_tags_and_roles(self, topology, query_84):
        source = BaselineSource()
        assert source.role == "baseline"
        entries = _pull_all(source, _space(topology, query_84))
        assert {entry.tag for entry in entries} == {
            BASELINE_ALL_REDUCE,
            BASELINE_HIERARCHICAL,
            BASELINE_BLUECONNECT,
        }

    def test_baselines_survive_plan_serialization(self, topology, query_84):
        from repro.api import OptimizationPlan

        plan = P2(topology, max_program_size=3).plan(query_84).plan
        restored = OptimizationPlan.from_dict(plan.to_dict())
        assert restored.baselines == plan.baselines
        assert restored.speedup_over_baseline(
            BASELINE_BLUECONNECT
        ) == plan.speedup_over_baseline(BASELINE_BLUECONNECT)

    def test_unknown_baseline_name_rejected(self, topology, query_84):
        plan = P2(topology, max_program_size=3).plan(query_84).plan
        with pytest.raises(EvaluationError):
            plan.speedup_over_baseline("nonexistent")


class TestPinnedPlanSource:
    def test_replays_top_strategies_and_seeds_incumbent(self, topology, query_84):
        p2 = P2(topology, max_program_size=3)
        first = p2.plan(query_84)
        pinned = PinnedPlanSource.from_plan(first.plan, top_k=1)
        budgeted = dataclasses.replace(query_84, max_candidates=10**9)
        outcome = p2.plan(budgeted, sources=[pinned, *default_sources()])
        assert outcome.search["seeds"] == 1
        # Seeding never changes the answer, only how fast pruning bites.
        assert outcome.best.predicted_seconds == first.best.predicted_seconds
        assert (
            outcome.best.program.signature() == first.best.program.signature()
        )

    def test_foreign_reduction_seeds_are_dropped_wholesale(self, topology, query_84):
        # A plan for a *different* reduction would seed the incumbent with a
        # time the current search space cannot reach — lossy pruning.  The
        # source knows the pinned plan's request and disqualifies itself.
        p2 = P2(topology, max_program_size=3)
        other = dataclasses.replace(query_84, request=ReductionRequest.over(1))
        foreign_plan = p2.plan(other).plan
        pinned = PinnedPlanSource.from_plan(foreign_plan, top_k=3)
        assert _pull_all(pinned, _space(topology, query_84)) == []
        budgeted = dataclasses.replace(query_84, max_candidates=10**9)
        outcome = p2.plan(budgeted, sources=[pinned, *default_sources()])
        assert outcome.search["seeds"] == 0
        assert (
            outcome.best.predicted_seconds
            == p2.plan(query_84).best.predicted_seconds
        )

    def test_out_of_space_strategies_are_skipped(self, topology, query_84):
        plan = P2(topology, max_program_size=3).plan(query_84).plan
        pinned = PinnedPlanSource.from_plan(plan, top_k=3)
        # A shrunk program-size limit pushes size-3 pinned strategies out of
        # the declared search space; only in-space ones may seed.
        smaller = dataclasses.replace(query_84, max_program_size=1)
        space = _space(topology, smaller)
        entries = _pull_all(pinned, space)
        assert all(entry.size <= 1 for entry in entries)

    def test_protocol_conformance(self):
        assert isinstance(PinnedPlanSource(), CandidateSource)
        assert isinstance(SynthesisSource(), CandidateSource)
        assert isinstance(BaselineSource(), CandidateSource)


class TestCustomSources:
    def test_synthesis_only_sources_drop_baselines(self, topology, query_84):
        outcome = P2(topology, max_program_size=3).plan(
            query_84, sources=[SynthesisSource()]
        )
        assert outcome.plan.baselines == {}
        assert outcome.baseline_speedups() == {}
        assert outcome.search["sources"] == ["synthesis"]

    def test_sources_cannot_ride_through_a_service(self, topology, query_84):
        p2 = P2(topology, max_program_size=3)
        with PlanningService(topology, max_program_size=3) as service:
            with pytest.raises(EvaluationError):
                p2.plan(query_84, service=service, sources=[SynthesisSource()])

    def test_driver_accepts_custom_source(self, topology, query_84):
        class OneEntrySource:
            name = "one"
            role = "search"

            def entries(self, space, watermark, report):
                source = SynthesisSource()
                yield next(source.entries(space, watermark, report))

        driver = SearchDriver(topology, CostModel())
        result = driver.run(_space(topology, query_84), sources=[OneEntrySource()])
        assert len(result.entries) == 1
        assert result.entries[0].is_default_all_reduce
