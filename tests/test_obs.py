"""Tests for the telemetry spine: recorder, exporters and spine integration.

Covers the merge algebra (histograms and drained worker deltas combine
associatively and commutatively), thread safety of the shared recorder,
Chrome-trace export validity (well-formed JSON, balanced nesting), and
trace-id propagation end to end: ``P2.plan`` and ``PlanningService.plan``
outcomes, pool-worker spans, sweep JSONL records and the CLI ``--trace-out``
/ ``stats`` surface.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import threading

import pytest

from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.obs import (
    BUCKET_BOUNDS,
    NULL_RECORDER,
    Histogram,
    NullRecorder,
    Recorder,
    RecorderSnapshot,
    chrome_trace,
    current_trace_context,
    get_recorder,
    jsonl_events,
    load_snapshot,
    render_summary,
    use_recorder,
    write_chrome_trace,
    write_jsonl,
)
from repro.query import PlanQuery
from repro.topology.gcp import a100_system

MB = 1 << 20


@pytest.fixture(scope="module")
def topology():
    return a100_system(num_nodes=2)


def _query(**overrides) -> PlanQuery:
    defaults = dict(
        axes=ParallelismAxes.of(8, 4),
        request=ReductionRequest.over(0),
        bytes_per_device=32 * MB,
        max_program_size=3,
    )
    defaults.update(overrides)
    return PlanQuery(**defaults)


def _histogram(values) -> Histogram:
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


def _exact(histogram: Histogram):
    """The exactly-associative parts of a histogram (everything but the sum)."""
    return (histogram.counts, histogram.count, histogram.min, histogram.max)


# --------------------------------------------------------------------------- #
# Histograms: the merge algebra
# --------------------------------------------------------------------------- #
class TestHistogram:
    def test_single_observation_is_every_percentile(self):
        histogram = _histogram([0.037])
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert histogram.percentile(q) == pytest.approx(0.037)

    def test_tracks_exact_extremes_and_moments(self):
        histogram = _histogram([1e-5, 2.0, 0.3])
        assert histogram.count == 3
        assert histogram.min == pytest.approx(1e-5)
        assert histogram.max == pytest.approx(2.0)
        assert histogram.sum == pytest.approx(2.30001)
        assert histogram.mean == pytest.approx(2.30001 / 3)

    def test_percentile_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            _histogram([1.0]).percentile(50.0)

    def test_merge_is_commutative(self):
        rng = random.Random(7)
        a = _histogram([rng.uniform(1e-6, 100.0) for _ in range(200)])
        b = _histogram([rng.uniform(1e-7, 1.0) for _ in range(50)])
        ab, ba = a.copy(), b.copy()
        ab.merge(b)
        ba.merge(a)
        assert ab.to_dict() == ba.to_dict()

    def test_merge_is_associative(self):
        rng = random.Random(11)
        parts = [
            [rng.uniform(1e-6, 10.0 ** rng.randint(-3, 2)) for _ in range(40)]
            for _ in range(3)
        ]
        a, b, c = (_histogram(values) for values in parts)

        left = a.copy()
        left.merge(b)
        left.merge(c)

        bc = b.copy()
        bc.merge(c)
        right = a.copy()
        right.merge(bc)

        # Bucket counts and extremes are exactly associative; the float sum
        # is associative only up to rounding.
        assert _exact(left) == _exact(right)
        assert left.sum == pytest.approx(right.sum)
        # Both equal the histogram of the concatenated observations.
        concatenated = _histogram(sum(parts, []))
        assert _exact(left) == _exact(concatenated)
        assert left.sum == pytest.approx(concatenated.sum)

    def test_merge_order_does_not_change_percentiles(self):
        rng = random.Random(13)
        shards = [
            _histogram([rng.expovariate(10.0) for _ in range(30)]) for _ in range(5)
        ]
        orderings = []
        for seed in (1, 2, 3):
            order = list(range(5))
            random.Random(seed).shuffle(order)
            merged = Histogram()
            for index in order:
                merged.merge(shards[index])
            orderings.append(merged)
        reference = orderings[0]
        for merged in orderings[1:]:
            assert merged.to_dict() == reference.to_dict()
            for q in (0.5, 0.9, 0.99):
                assert merged.percentile(q) == reference.percentile(q)

    def test_dict_round_trip_and_ladder_check(self):
        histogram = _histogram([0.001, 0.5, 7.0])
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.to_dict() == histogram.to_dict()
        bad = histogram.to_dict()
        bad["counts"] = bad["counts"][:-1]
        with pytest.raises(ValueError):
            Histogram.from_dict(bad)

    def test_shared_ladder_shape(self):
        assert len(BUCKET_BOUNDS) == 30
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)


# --------------------------------------------------------------------------- #
# Recorder: counters, spans, threads, drain/merge
# --------------------------------------------------------------------------- #
class TestRecorder:
    def test_counters_gauges_histograms(self):
        recorder = Recorder()
        recorder.count("hits")
        recorder.count("hits", 2)
        recorder.gauge("depth", 4.0)
        recorder.gauge("depth", 2.0)
        recorder.observe("latency", 0.25)
        snapshot = recorder.snapshot()
        assert snapshot.counters["hits"] == 3
        assert snapshot.gauges["depth"] == 2.0
        assert snapshot.histograms["latency"].count == 1

    def test_counter_increments_are_thread_safe(self):
        recorder = Recorder()
        threads_n, increments = 8, 5_000

        def work():
            for _ in range(increments):
                recorder.count("shared")
                recorder.observe("value", 0.001)

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.counter_value("shared") == threads_n * increments
        assert recorder.snapshot().histograms["value"].count == threads_n * increments

    def test_span_tree_and_context_restoration(self):
        recorder = Recorder()
        assert current_trace_context() is None
        with recorder.span("root", kind="test") as root:
            assert current_trace_context() == (root.trace_id, root.span_id)
            with recorder.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        assert current_trace_context() is None

        spans = {span.name: span for span in recorder.snapshot().spans}
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["root"].parent_id is None
        assert spans["root"].attrs == {"kind": "test"}
        histograms = recorder.snapshot().histograms
        assert histograms["span.root"].count == 1
        assert histograms["span.child"].count == 1

    def test_explicit_parent_overrides_ambient_context(self):
        recorder = Recorder()
        shipped = ("f" * 16, "a" * 16)
        with recorder.span("worker", _parent=shipped) as span:
            assert span.trace_id == shipped[0]
            assert span.parent_id == shipped[1]

    def test_span_cap_counts_drops_but_keeps_histograms(self):
        recorder = Recorder(max_spans=2)
        for _ in range(5):
            with recorder.span("tick"):
                pass
        snapshot = recorder.snapshot()
        assert len(snapshot.spans) == 2
        assert snapshot.dropped_spans == 3
        assert snapshot.histograms["span.tick"].count == 5

    def test_drained_deltas_merge_to_the_monolithic_result(self):
        monolithic = Recorder()
        sharded = Recorder()
        deltas = []
        worker = Recorder()
        rng = random.Random(23)
        for round_index in range(4):
            for _ in range(25):
                value = rng.uniform(1e-5, 5.0)
                monolithic.count("done")
                monolithic.observe("latency", value)
                worker.count("done")
                worker.observe("latency", value)
            deltas.append(worker.drain())
        assert worker.snapshot().counters == {}  # drain resets
        rng.shuffle(deltas)
        for delta in deltas:
            sharded.merge(delta)
        assert (
            sharded.snapshot().histograms["latency"].to_dict()
            == monolithic.snapshot().histograms["latency"].to_dict()
        )
        assert sharded.counter_value("done") == monolithic.counter_value("done")

    def test_snapshot_dict_round_trip(self):
        recorder = Recorder()
        recorder.count("c", 2)
        recorder.gauge("g", 1.5)
        with recorder.span("s"):
            pass
        snapshot = recorder.snapshot()
        restored = RecorderSnapshot.from_dict(snapshot.to_dict())
        assert restored.to_dict() == snapshot.to_dict()
        with pytest.raises(ValueError):
            RecorderSnapshot.from_dict({"schema": "bogus/9"})

    def test_recorder_survives_pickling(self):
        recorder = Recorder()
        recorder.count("c")
        clone = pickle.loads(pickle.dumps(recorder))
        clone.count("c")  # the rebuilt lock works
        assert clone.counter_value("c") == 2

    def test_null_recorder_is_inert_and_default(self):
        assert isinstance(get_recorder(), NullRecorder)
        span = NULL_RECORDER.span("anything", attr=1)
        assert span.trace_id is None
        with span:
            assert current_trace_context() is None
        NULL_RECORDER.count("x")
        NULL_RECORDER.observe("x", 1.0)
        assert NULL_RECORDER.snapshot().counters == {}
        assert NULL_RECORDER.counter_value("x") == 0

    def test_use_recorder_restores_previous(self):
        recorder = Recorder()
        with use_recorder(recorder) as active:
            assert get_recorder() is active is recorder
        assert isinstance(get_recorder(), NullRecorder)


# --------------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------------- #
def _nested_snapshot() -> RecorderSnapshot:
    recorder = Recorder()
    with recorder.span("outer"):
        with recorder.span("middle"):
            with recorder.span("inner"):
                pass
        with recorder.span("sibling"):
            pass
    recorder.count("events", 4)
    return recorder.snapshot()


class TestExport:
    def test_chrome_trace_is_well_formed_json(self):
        snapshot = _nested_snapshot()
        trace = json.loads(json.dumps(chrome_trace(snapshot)))
        assert trace["displayTimeUnit"] == "ms"
        assert len(trace["traceEvents"]) == 4
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert {"name", "ts", "pid", "tid", "args"} <= set(event)
        assert trace["snapshot"]["schema"] == "repro.obs/1"

    def test_chrome_trace_nesting_is_balanced(self):
        trace = chrome_trace(_nested_snapshot())
        events = {event["name"]: event for event in trace["traceEvents"]}

        def interval(name):
            event = events[name]
            return event["ts"], event["ts"] + event["dur"]

        for child, parent in [
            ("middle", "outer"),
            ("inner", "middle"),
            ("sibling", "outer"),
        ]:
            child_start, child_end = interval(child)
            parent_start, parent_end = interval(parent)
            assert parent_start <= child_start, (child, parent)
            assert child_end <= parent_end, (child, parent)
            assert events[child]["args"]["parent_id"] == events[parent]["args"]["span_id"]

    def test_chrome_trace_file_round_trips_through_load_snapshot(self, tmp_path):
        snapshot = _nested_snapshot()
        path = write_chrome_trace(snapshot, tmp_path / "trace.json")
        restored = load_snapshot(path)
        assert restored.to_dict() == snapshot.to_dict()

    def test_jsonl_round_trips_through_load_snapshot(self, tmp_path):
        snapshot = _nested_snapshot()
        path = write_jsonl(snapshot, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        events = [json.loads(line)["event"] for line in lines]
        assert events[0] == "meta"
        assert events.count("span") == 4
        restored = load_snapshot(path)
        # The JSONL stream sorts spans for greppability; compare span *sets*
        # and everything else exactly.
        def canonical(snap):
            data = snap.to_dict()
            data["spans"] = sorted(data["spans"], key=lambda s: s["span_id"])
            return data

        assert canonical(restored) == canonical(snapshot)

    def test_bare_snapshot_json_loads(self, tmp_path):
        snapshot = _nested_snapshot()
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(snapshot.to_dict()))
        assert load_snapshot(path).to_dict() == snapshot.to_dict()

    def test_load_snapshot_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_snapshot(path)

    def test_jsonl_events_cover_every_metric_kind(self):
        recorder = Recorder()
        recorder.count("c")
        recorder.gauge("g", 2.0)
        recorder.observe("h", 0.1)
        kinds = {event["event"] for event in jsonl_events(recorder.snapshot())}
        assert kinds == {"meta", "counter", "gauge", "histogram"}

    def test_render_summary_mentions_metrics_and_percentiles(self):
        recorder = Recorder()
        recorder.count("cache.miss", 3)
        with recorder.span("service.plan"):
            pass
        text = render_summary(recorder.snapshot(), title="t")
        assert "== t ==" in text
        assert "cache.miss" in text
        assert "span.service.plan" in text
        assert "spans: 1 recorded" in text


# --------------------------------------------------------------------------- #
# Spine integration: traces flow through planning, workers and sweeps
# --------------------------------------------------------------------------- #
class TestSpineIntegration:
    def test_p2_plan_records_trace_and_spans(self, topology):
        from repro.api import P2

        recorder = Recorder()
        with use_recorder(recorder):
            outcome = P2(topology, max_program_size=3).plan(_query())
        assert outcome.trace_id is not None
        assert outcome.provenance()["trace_id"] == outcome.trace_id
        spans = recorder.snapshot().spans
        names = {span.name for span in spans}
        assert {"plan", "search.run", "search.source", "profile.price"} <= names
        assert {span.trace_id for span in spans} == {outcome.trace_id}
        counters = recorder.snapshot().counters
        assert counters["search.considered"] > 0
        assert counters["profile.miss"] > 0

    def test_plan_without_recorder_has_no_trace_id(self, topology):
        from repro.api import P2

        outcome = P2(topology, max_program_size=3).plan(_query())
        assert outcome.trace_id is None
        assert outcome.provenance()["trace_id"] is None

    def test_service_cold_and_warm_outcomes_carry_trace_ids(self, topology):
        from repro.service import PlanningService

        recorder = Recorder()
        with use_recorder(recorder):
            service = PlanningService(topology, max_program_size=3)
            cold = service.plan(_query())
            warm = service.plan(_query())
        assert cold.trace_id and warm.trace_id
        assert cold.trace_id != warm.trace_id  # one trace per request
        # total_seconds is part of construction, not a post-hoc mutation:
        # both paths measured wall clock.
        assert cold.total_seconds > 0
        assert warm.total_seconds > 0
        counters = recorder.snapshot().counters
        assert counters["cache.miss"] == 1
        assert counters["cache.hit.memory"] == 1
        names = {span.name for span in recorder.snapshot().spans}
        assert {"service.plan", "cache.lookup", "cache.store"} <= names

    def _programs(self, topology):
        from repro.api import collect_strategy_entries
        from repro.synthesis.pipeline import synthesize_all

        candidates = synthesize_all(
            topology.hierarchy,
            ParallelismAxes.of(8, 4),
            ReductionRequest.over(0),
            max_program_size=3,
        )
        entries = collect_strategy_entries(candidates, ReductionRequest.over(0))
        return [entry.lowered for entry in entries]

    def test_pool_worker_deltas_merge_into_the_request_trace(self, topology):
        from repro.service import ParallelEvaluator

        programs = self._programs(topology)
        assert programs
        unique_tasks = len(
            {(p.num_devices, p.signature()) for p in programs if p.num_steps > 0}
        )

        recorder = Recorder()
        with use_recorder(recorder):
            with ParallelEvaluator(topology, n_workers=2) as evaluator:
                with recorder.span("request") as root:
                    seconds = evaluator.evaluate(programs, 32 * MB)
        assert len(seconds) == len(programs)

        snapshot = recorder.snapshot()
        worker_spans = [s for s in snapshot.spans if s.name == "worker.price"]
        # Workers price chunks of entries, one span per chunk; the spans'
        # `entries` attributes partition the unique tasks exactly.
        chunk_len = max(1, unique_tasks // (2 * 4))  # n_workers=2, 4 chunks each
        expected_chunks = -(-unique_tasks // chunk_len)  # ceil
        assert len(worker_spans) == expected_chunks
        assert sum(span.attrs["entries"] for span in worker_spans) == unique_tasks
        # Worker spans happened in other processes yet joined this trace.
        assert all(span.trace_id == root.trace_id for span in worker_spans)
        assert any(span.pid != os.getpid() for span in worker_spans)
        # The workers' metric deltas merged back associatively: every task
        # resolved its profile exactly once (hit or compile) in some worker.
        hits = snapshot.counters.get("profile.hit", 0)
        misses = snapshot.counters.get("profile.miss", 0)
        assert misses > 0
        assert hits + misses == unique_tasks
        assert snapshot.histograms["span.worker.price"].count == expected_chunks
        # Each chunk was priced in one vectorized batch call.
        assert snapshot.counters.get("batch.prices", 0) == expected_chunks
        assert snapshot.counters.get("batch.payloads", 0) == unique_tasks

    def test_worker_task_delta_shape(self, topology):
        """The worker task returns a drained delta when enabled, None when not."""
        from repro.cost.model import CostModel
        from repro.cost.nccl import NCCLAlgorithm
        from repro.service import parallel

        program = next(p for p in self._programs(topology) if p.num_steps > 0)
        task = (0, program, None, float(32 * MB), NCCLAlgorithm.RING, None)

        parallel._init_worker(topology, CostModel(), telemetry_enabled=False)
        index, seconds, compiled, delta = parallel._evaluate_task(task)
        assert (index, delta) == (0, None)
        assert seconds > 0 and compiled is not None

        parallel._init_worker(topology, CostModel(), telemetry_enabled=True)
        _, _, _, delta = parallel._evaluate_task(task)
        assert delta is not None
        assert delta.counters["profile.miss"] == 1
        assert [span.name for span in delta.spans] == [
            "profile.compile",
            "worker.price",
        ]
        # drain() semantics: the next task's delta starts from zero.
        _, _, _, second_delta = parallel._evaluate_task(task)
        assert second_delta.counters == {"profile.hit": 1}
        parallel._init_worker(topology, CostModel(), telemetry_enabled=False)

    def test_sweep_results_and_jsonl_records_carry_trace_ids(self, tmp_path):
        from repro.analysis.serialization import iter_jsonl_records, load_jsonl_results
        from repro.evaluation.runner import SweepRunner
        from repro.evaluation.scenarios import preset

        scenario = preset("smoke")[0]
        out = tmp_path / "sweep.jsonl"
        recorder = Recorder()
        with use_recorder(recorder):
            results = SweepRunner(measure_programs=False).run_stream(
                [scenario], out_path=out
            )
        assert results[0].trace_id is not None
        assert results[0].provenance()["trace_id"] == results[0].trace_id

        records = list(iter_jsonl_records(out))
        assert records[0]["provenance"]["trace_id"] == results[0].trace_id
        restored = load_jsonl_results(out)
        assert restored[0].trace_id == results[0].trace_id

        names = {span.name for span in recorder.snapshot().spans}
        # The plain runner plans through P2 directly (no service), so the
        # root planning span is "plan".
        assert {"sweep.scenario", "plan", "search.run"} <= names

    def test_provenance_summary_reports_percentiles_from_snapshot(self):
        from repro.evaluation.report import render_provenance_summary
        from repro.evaluation.runner import SweepRunner
        from repro.evaluation.scenarios import preset

        recorder = Recorder()
        with use_recorder(recorder):
            result = SweepRunner(measure_programs=False).run(preset("smoke")[0])
        text = render_provenance_summary([result], snapshot=recorder.snapshot())
        assert "sweep.scenario: n=1 p50=" in text
        assert "\nplan: n=1 p50=" in text
        assert "search.run: n=1 p50=" in text
        # Without a snapshot the summary is unchanged legacy output.
        legacy = render_provenance_summary([result])
        assert "sweep.scenario:" not in legacy


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestCLI:
    def _optimize_args(self, extra):
        return [
            "optimize",
            "--system", "a100",
            "--nodes", "2",
            "--axes", "8", "4",
            "--reduce", "0",
            "--bytes", str(32 * MB),
            "--max-program-size", "3",
        ] + extra

    def test_trace_out_writes_a_loadable_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        exit_code = main(self._optimize_args(["--trace-out", str(trace_path)]))
        assert exit_code == 0
        captured = capsys.readouterr()
        assert str(trace_path) in captured.err
        trace = json.loads(trace_path.read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert {"plan", "search.run", "search.source"} <= names
        snapshot = load_snapshot(trace_path)
        assert snapshot.counters["search.considered"] > 0
        # The recorder was uninstalled again after the command.
        assert isinstance(get_recorder(), NullRecorder)

    def test_trace_out_json_outcome_carries_trace_id(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        assert main(self._optimize_args(["--json", "--trace-out", str(trace_path)])) == 0
        outcome = json.loads(capsys.readouterr().out)
        # PlanOutcome.to_dict flattens provenance into the top level.
        assert outcome["trace_id"]
        trace = json.loads(trace_path.read_text())
        trace_ids = {event["args"]["trace_id"] for event in trace["traceEvents"]}
        assert outcome["trace_id"] in trace_ids

    def test_stats_command_pretty_prints_and_emits_json(self, tmp_path, capsys):
        from repro.cli import main

        path = write_chrome_trace(_nested_snapshot(), tmp_path / "trace.json")
        assert main(["stats", str(path)]) == 0
        text = capsys.readouterr().out
        assert "events" in text or "spans" in text

        assert main(["stats", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs/1"
        assert payload["counters"]["events"] == 4

    def test_stats_command_rejects_foreign_files(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "nope.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            main(["stats", str(path)])

    def test_cache_stats_json_speaks_the_snapshot_schema(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs/1"
        assert payload["counters"]["cache.disk_entries"] == 0
        assert payload["counters"]["cache.disk_bytes"] == 0

    def test_verbose_flag_enables_repro_debug_logging(self, tmp_path, capsys):
        import logging

        from repro.cli import main

        assert main(["-vv"] + self._optimize_args([])) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        assert "DEBUG repro." in capsys.readouterr().err

        assert main(["--quiet"] + self._optimize_args([])) == 0
        assert logging.getLogger("repro").level == logging.ERROR
        assert "DEBUG repro." not in capsys.readouterr().err
