"""Tests for repro.analysis (serialization, statistics, comparisons)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    compare_sweeps,
    load_results,
    results_from_json,
    results_to_json,
    save_results,
    summarize_results,
)
from repro.analysis.stats import render_summary
from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.config import ExperimentConfig, SystemKind
from repro.evaluation.runner import SweepRunner

PAYLOAD_SCALE = 0.002


@pytest.fixture(scope="module")
def results():
    configs = [
        ExperimentConfig(
            name="analysis-a100",
            system=SystemKind.A100,
            num_nodes=2,
            axes=(8, 4),
            reduction_axes=(0,),
            payload_scale=PAYLOAD_SCALE,
            max_program_size=3,
        ),
        ExperimentConfig(
            name="analysis-v100",
            system=SystemKind.V100,
            num_nodes=2,
            axes=(16,),
            reduction_axes=(0,),
            payload_scale=PAYLOAD_SCALE,
            max_program_size=3,
        ),
    ]
    return SweepRunner(measurement_runs=1).run_many(configs)


class TestSerialization:
    def test_roundtrip_preserves_everything_needed(self, results):
        text = results_to_json(results)
        restored = results_from_json(text)
        assert len(restored) == len(results)
        for original, loaded in zip(results, restored):
            assert loaded.config == original.config
            assert loaded.num_matrices == original.num_matrices
            assert loaded.total_programs == original.total_programs
            for m_original, m_loaded in zip(original.matrices, loaded.matrices):
                assert m_loaded.matrix_description == m_original.matrix_description
                best_original = m_original.best()
                best_loaded = m_loaded.best()
                assert best_loaded.mnemonic == best_original.mnemonic
                assert best_loaded.measured_seconds == pytest.approx(
                    best_original.measured_seconds
                )

    def test_save_and_load_file(self, results, tmp_path):
        path = save_results(results, tmp_path / "results.json")
        assert path.exists()
        assert len(load_results(path)) == len(results)

    def test_version_check(self, results):
        text = results_to_json(results).replace('"format_version": 1', '"format_version": 99')
        with pytest.raises(EvaluationError):
            results_from_json(text)

    def test_summary_survives_roundtrip(self, results):
        original = summarize_results(results)
        restored = summarize_results(results_from_json(results_to_json(results)))
        assert restored.num_mappings == original.num_mappings
        assert restored.max_speedup == pytest.approx(original.max_speedup)


class TestStats:
    def test_summary_fields(self, results):
        summary = summarize_results(results)
        assert summary.num_configurations == 2
        assert summary.num_mappings >= 3
        assert 0.0 <= summary.fraction_outperforming <= 1.0
        assert summary.max_speedup >= summary.median_speedup >= 0.9
        assert summary.average_speedup_outperforming >= 1.0
        assert "paper" in summary.describe()

    def test_summary_requires_results(self):
        with pytest.raises(EvaluationError):
            summarize_results([])

    def test_render_summary_groups(self, results):
        text = render_summary({"A100": results[:1], "V100": results[1:]})
        assert "A100" in text and "V100" in text and "Total" in text


class TestCompare:
    def test_ring_vs_tree_comparison(self, results):
        tree_configs = [r.config.with_algorithm(NCCLAlgorithm.TREE) for r in results]
        tree_results = SweepRunner(measurement_runs=1).run_many(tree_configs)
        comparison = compare_sweeps(results, tree_results, "ring", "tree")
        assert comparison.num_matched >= 3
        assert comparison.left_wins + comparison.right_wins <= comparison.num_matched
        text = comparison.describe()
        assert "ring" in text and "tree" in text

    def test_disjoint_sweeps_rejected(self, results):
        other_config = ExperimentConfig(
            name="different",
            system=SystemKind.A100,
            num_nodes=2,
            axes=(32,),
            reduction_axes=(0,),
            payload_scale=PAYLOAD_SCALE,
            max_program_size=2,
        )
        other = SweepRunner(measurement_runs=1).run_many([other_config])
        with pytest.raises(EvaluationError):
            compare_sweeps(results, other)
