"""Tests for the planning daemon: wire protocol, admission control, drain.

The daemon's contract is exercised over *real* sockets — a
:class:`~repro.serve.daemon.DaemonThread` on an ephemeral port, driven by
:class:`~repro.serve.client.PlanClient` and, where the protocol must be
violated on purpose (torn lines, oversized frames), by raw sockets.

Serving-policy tests (shedding, rate limits, drain) use a stub planning
service whose timing is controlled by events, so queue states are
deterministic; the end-to-end tests use a real
:class:`~repro.service.engine.PlanningService` on the Figure 2a rack.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ReproError, ServeError
from repro.obs.recorder import Recorder
from repro.query import PlanQuery
from repro.serve import (
    DaemonConfig,
    DaemonThread,
    PlanClient,
    ServeRequest,
    TokenBucket,
    decode_message,
    encode_message,
    error_reply,
    load_warm_queries,
    ok_reply,
)
from repro.service import PlanningService
from repro.topology.gcp import figure2a_system

QUERY = PlanQuery(
    axes=(4, 4), request=(0,), bytes_per_device=1 << 20, max_program_size=3
)
QUERY_B = PlanQuery(
    axes=(4, 4), request=(1,), bytes_per_device=1 << 20, max_program_size=3
)


# --------------------------------------------------------------------------- #
# Protocol units
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "plan", "query": QUERY.to_dict(), "id": "r1"}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_message(line) == message

    def test_decode_rejects_non_json(self):
        with pytest.raises(ServeError, match="not JSON"):
            decode_message(b"{ torn\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServeError, match="JSON object"):
            decode_message(b"[1, 2]\n")

    def test_decode_rejects_bad_utf8(self):
        with pytest.raises(ServeError, match="not UTF-8"):
            decode_message(b"\xff\xfe{}\n")

    def test_reply_shapes(self):
        assert ok_reply("r1", outcome={}) == {"ok": True, "id": "r1", "outcome": {}}
        refusal = error_reply("overloaded", "queue full", "r2", queue_depth=3)
        assert refusal == {
            "ok": False,
            "error": "overloaded",
            "detail": "queue full",
            "id": "r2",
            "queue_depth": 3,
        }

    def test_parse_bare_query_defaults_to_plan(self):
        request = ServeRequest.parse(
            {"axes": [4, 4], "reduce": [0], "bytes": 1 << 20}
        )
        assert request.op == "plan"
        assert request.query is not None
        assert request.query.bytes_per_device == 1 << 20

    def test_parse_envelope_with_trace_and_tenant(self):
        request = ServeRequest.parse(
            {
                "op": "plan",
                "query": QUERY.to_dict(),
                "tenant": "team-a",
                "id": "r9",
                "trace_id": "deadbeef",
                "span_id": "cafe",
                "include_plan": False,
            }
        )
        assert request.tenant == "team-a"
        assert request.request_id == "r9"
        assert request.include_plan is False
        assert request.trace_parent == ("deadbeef", "cafe")

    def test_parse_trace_id_without_span_id(self):
        request = ServeRequest.parse({"op": "ping", "trace_id": "deadbeef"})
        assert request.trace_parent == ("deadbeef", "client")

    def test_parse_rejects_unknown_op(self):
        with pytest.raises(ServeError, match="unknown op"):
            ServeRequest.parse({"op": "explode"})

    def test_parse_rejects_message_without_op_or_query(self):
        with pytest.raises(ServeError, match="unknown op"):
            ServeRequest.parse({"hello": "world"})

    def test_parse_rejects_bad_tenant(self):
        with pytest.raises(ServeError, match="tenant"):
            ServeRequest.parse({"op": "ping", "tenant": ""})
        with pytest.raises(ServeError, match="128"):
            ServeRequest.parse({"op": "ping", "tenant": "x" * 129})

    def test_parse_rejects_bad_id_and_flags(self):
        with pytest.raises(ServeError, match="'id'"):
            ServeRequest.parse({"op": "ping", "id": 7})
        with pytest.raises(ServeError, match="include_plan"):
            ServeRequest.parse({"op": "plan", "query": QUERY.to_dict(),
                                "include_plan": "yes"})


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)  # burst exhausted
        assert bucket.retry_after_s() == pytest.approx(1.0)
        assert bucket.try_acquire(1.0)  # one second refills one token
        assert not bucket.try_acquire(1.0)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=1.0, now=0.0)
        assert bucket.try_acquire(100.0)  # a long idle gap refills only to burst
        assert not bucket.try_acquire(100.0)


class TestWarmFile:
    def test_loads_plan_query_jsonl(self, tmp_path):
        path = tmp_path / "warm.jsonl"
        path.write_text(
            json.dumps(QUERY.to_dict()) + "\n\n" + json.dumps(QUERY_B.to_dict()) + "\n"
        )
        queries = load_warm_queries(path)
        assert queries == [QUERY, QUERY_B]

    def test_torn_line_fails_loudly(self, tmp_path):
        path = tmp_path / "warm.jsonl"
        path.write_text(json.dumps(QUERY.to_dict()) + "\n{ torn\n")
        with pytest.raises(ServeError, match="line 2"):
            load_warm_queries(path)


class TestDaemonConfig:
    def test_needs_some_listener(self):
        with pytest.raises(ServeError, match="TCP port or a unix_path"):
            DaemonConfig(port=None, unix_path=None)

    def test_validates_bounds(self):
        with pytest.raises(ServeError, match="queue_limit"):
            DaemonConfig(queue_limit=0)
        with pytest.raises(ServeError, match="rate_limit_per_s"):
            DaemonConfig(rate_limit_per_s=0.0)


# --------------------------------------------------------------------------- #
# A stub service for deterministic serving-policy tests
# --------------------------------------------------------------------------- #
class StubService:
    """Planner stub: returns a canned outcome, optionally gated on an event.

    ``started`` is set when the first plan call begins executing — the signal
    tests use to know the daemon's worker has dequeued a request and is now
    busy, so everything sent afterwards must queue or shed.
    """

    def __init__(self, outcome, gate=None):
        self.outcome = outcome
        self.gate = gate
        self.started = threading.Event()
        self.planned = 0

    def plan(self, query):
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=30), "stub gate never opened"
        self.planned += 1
        return self.outcome

    def warm(self, queries):
        return 0


@pytest.fixture(scope="module")
def real_outcome():
    """One genuine PlanOutcome the stub service can replay."""
    service = PlanningService(figure2a_system(), max_program_size=3)
    return service.plan(QUERY)


# --------------------------------------------------------------------------- #
# End-to-end over real sockets (one real-service daemon for the module)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def daemon():
    recorder = Recorder()
    service = PlanningService(
        figure2a_system(), max_program_size=3, recorder=recorder
    )
    with DaemonThread(
        service, DaemonConfig(port=0, queue_limit=16), recorder=recorder
    ) as handle:
        yield handle


@pytest.fixture()
def client(daemon):
    host, port = daemon.address
    with PlanClient(host=host, port=port) as c:
        yield c


class TestDaemonEndToEnd:
    def test_ping(self, client):
        reply = client.ping()
        assert reply["ok"] is True
        assert reply["pid"] == os.getpid()
        assert reply["uptime_s"] >= 0

    def test_plan_cold_then_warm(self, client):
        first = client.plan(QUERY, request_id="c1")
        assert first["ok"] is True and first["id"] == "c1"
        outcome = first["outcome"]
        assert outcome["num_strategies"] > 0
        assert outcome["fingerprint"]
        second = client.plan(QUERY, request_id="c2")
        assert second["outcome"]["cache_hit"] is True
        assert second["outcome"]["fingerprint"] == outcome["fingerprint"]

    def test_include_plan_returns_full_outcome(self, client):
        headline = client.plan(QUERY)
        assert "plan" not in headline["outcome"]  # trimmed reply
        full = client.plan(QUERY, include_plan=True)
        strategies = full["outcome"]["plan"]["strategies"]
        assert len(strategies) == headline["outcome"]["num_strategies"]

    def test_trace_id_flows_into_provenance(self, client):
        reply = client.plan(QUERY, trace_id="trace-from-the-wire")
        assert reply["trace_id"] == "trace-from-the-wire"
        assert reply["outcome"]["trace_id"] == "trace-from-the-wire"

    def test_tenant_counters(self, daemon, client):
        client.plan(QUERY, tenant="acme")
        snapshot = client.stats()
        counters = snapshot["counters"]
        assert counters["serve.tenant.acme.requests"] >= 1
        assert counters["serve.tenant.acme.ok"] >= 1

    def test_stats_speaks_the_snapshot_schema(self, client):
        client.plan(QUERY)
        snapshot = client.stats()
        assert snapshot["schema"] == "repro.obs/1"
        assert snapshot["counters"]["serve.ok"] >= 1

    def test_malformed_line_keeps_connection_alive(self, client):
        reply = client.send_raw(b"{ torn json\n")
        assert reply["ok"] is False and reply["error"] == "bad_request"
        assert client.ping()["ok"] is True  # same socket still serves

    def test_plan_failed_is_structured(self, client):
        # A well-formed query that cannot plan on this topology: the axes
        # product exceeds the 16 devices of Figure 2a.
        bad = {"op": "plan", "query": {"axes": [64, 4], "reduce": [0],
                                       "bytes": 1024}, "id": "nope"}
        reply = client.request(bad)
        assert reply["ok"] is False
        assert reply["error"] in ("bad_request", "plan_failed")
        assert client.ping()["ok"] is True

    def test_oversized_line_is_rejected_and_closed(self, real_outcome):
        # A dedicated daemon with a tiny frame limit, so the overlong line
        # fits comfortably in socket buffers and the test never blocks.
        service = StubService(real_outcome)
        config = DaemonConfig(port=0, max_line_bytes=256)
        with DaemonThread(service, config) as handle:
            host, port = handle.address
            with PlanClient(host=host, port=port) as raw:
                huge = b'{"op": "ping", "pad": "' + b"x" * 1024 + b'"}\n'
                reply = raw.send_raw(huge)
                assert reply["ok"] is False and reply["error"] == "line_too_long"
                assert "256" in reply["detail"]
                # The server closes the desynchronized stream afterwards.
                with pytest.raises(ServeError):
                    raw.ping()
        assert service.planned == 0

    def test_unterminated_final_line_gets_bad_request(self, daemon):
        host, port = daemon.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b'{"op": "ping"')  # no newline, then EOF
            sock.shutdown(socket.SHUT_WR)
            data = b""
            while not data.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        reply = decode_message(data)
        assert reply["ok"] is False and reply["error"] == "bad_request"
        assert "unterminated" in reply["detail"]

    def test_concurrent_clients_each_get_their_reply(self, daemon):
        host, port = daemon.address
        errors = []
        replies = [None] * 8

        def worker(index):
            try:
                with PlanClient(host=host, port=port) as c:
                    replies[index] = c.plan(
                        QUERY, request_id=f"w{index}", tenant=f"t{index % 2}"
                    )
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for index, reply in enumerate(replies):
            assert reply is not None and reply["ok"] is True
            assert reply["id"] == f"w{index}"


class TestServingPolicy:
    def test_shedding_when_queue_is_full(self, real_outcome):
        gate = threading.Event()
        recorder = Recorder()
        service = StubService(real_outcome, gate=gate)
        config = DaemonConfig(port=0, queue_limit=1)
        with DaemonThread(service, config, recorder=recorder) as handle:
            host, port = handle.address
            with PlanClient(host=host, port=port) as c:
                def send(request_id):
                    c._sock.sendall(
                        encode_message(
                            {"op": "plan", "query": QUERY.to_dict(),
                             "id": request_id, "include_plan": False}
                        )
                    )

                # r0 occupies the (gated) planning executor; once the stub
                # reports it started, the queue is empty and the worker busy.
                send("r0")
                assert service.started.wait(timeout=30)
                # r1 fills the one queue slot (the worker cannot dequeue it
                # while gated); r2..r5 must all be shed at the door.
                for index in range(1, 6):
                    send(f"r{index}")
                shed = [decode_message(c._read_line()) for _ in range(4)]
                for reply in shed:
                    assert reply["ok"] is False
                    assert reply["error"] == "overloaded"
                    assert "queue_depth" in reply
                assert [r["id"] for r in shed] == ["r2", "r3", "r4", "r5"]
                # Open the gate: r0 (executing) and r1 (queued) get answered.
                gate.set()
                served = [decode_message(c._read_line()) for _ in range(2)]
                assert [r["id"] for r in served] == ["r0", "r1"]
                assert all(r["ok"] for r in served)
            snapshot = recorder.snapshot()
            assert snapshot.counters["serve.shed"] == 4
            assert snapshot.counters["serve.tenant._anonymous.shed"] == 4
            assert snapshot.counters["serve.ok"] == 2

    def test_rate_limit_refusal_shape(self, real_outcome):
        service = StubService(real_outcome)
        config = DaemonConfig(
            port=0, rate_limit_per_s=0.001, rate_limit_burst=1.0
        )
        with DaemonThread(service, config) as handle:
            host, port = handle.address
            with PlanClient(host=host, port=port) as c:
                first = c.plan(QUERY, tenant="greedy")
                assert first["ok"] is True
                second = c.request(
                    {"op": "plan", "query": QUERY.to_dict(), "tenant": "greedy",
                     "id": "limited"}
                )
                assert second["ok"] is False
                assert second["error"] == "rate_limited"
                assert second["id"] == "limited"
                assert second["retry_after_s"] > 0
                # Another tenant has its own bucket and is not affected.
                other = c.plan(QUERY, tenant="patient")
                assert other["ok"] is True

    def test_drain_answers_queued_requests(self, real_outcome):
        gate = threading.Event()
        service = StubService(real_outcome, gate=gate)
        with DaemonThread(service, DaemonConfig(port=0, queue_limit=8)) as handle:
            host, port = handle.address
            client = PlanClient(host=host, port=port)
            try:
                for index in range(3):
                    client._sock.sendall(
                        encode_message(
                            {"op": "plan", "query": QUERY.to_dict(),
                             "id": f"d{index}", "include_plan": False}
                        )
                    )
                # Wait until d0 is executing (gated) and d1/d2 sit in the
                # admission queue, so the drain genuinely has queued work.
                assert service.started.wait(timeout=30)
                deadline = time.time() + 30
                while handle.daemon._queue.qsize() < 2 and time.time() < deadline:
                    time.sleep(0.01)
                assert handle.daemon._queue.qsize() == 2
                stopper = threading.Thread(target=handle.stop, kwargs={"drain": True})
                stopper.start()
                gate.set()
                replies = [decode_message(client._read_line()) for _ in range(3)]
                stopper.join(timeout=30)
                assert not stopper.is_alive()
                assert [r["id"] for r in replies] == ["d0", "d1", "d2"]
                assert all(r["ok"] for r in replies)
                assert service.planned == 3
            finally:
                client.close()

    def test_warm_on_boot(self, tmp_path):
        warm_file = tmp_path / "warm.jsonl"
        warm_file.write_text(json.dumps(QUERY.to_dict()) + "\n")
        recorder = Recorder()
        service = PlanningService(
            figure2a_system(), max_program_size=3, recorder=recorder
        )
        config = DaemonConfig(port=0, warm_path=str(warm_file))
        with DaemonThread(service, config, recorder=recorder) as handle:
            assert handle.daemon.warmed == 1
            host, port = handle.address
            with PlanClient(host=host, port=port) as c:
                reply = c.plan(QUERY)
                assert reply["outcome"]["cache_hit"] is True
            snapshot = recorder.snapshot()
            assert snapshot.counters["serve.warm.queries"] == 1
            assert snapshot.counters["serve.warm.cold"] == 1

    def test_unix_socket_round_trip(self, real_outcome, tmp_path):
        path = str(tmp_path / "plan.sock")
        service = StubService(real_outcome)
        config = DaemonConfig(port=None, unix_path=path)
        with DaemonThread(service, config) as handle:
            assert handle.daemon.unix_address == path
            with PlanClient(unix_path=path) as c:
                assert c.ping()["ok"] is True
                assert c.plan(QUERY)["ok"] is True
        assert not os.path.exists(path)  # unlinked on shutdown


class TestWarmShim:
    def test_warm_accepts_plan_queries_and_legacy_requests(self):
        from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
        from repro.service.engine import PlanningRequest

        service = PlanningService(figure2a_system(), max_program_size=3)
        legacy = PlanningRequest(
            axes=ParallelismAxes((4, 4)),
            request=ReductionRequest((0,)),
            bytes_per_device=1 << 20,
        )
        cold = service.warm([QUERY, legacy])
        # QUERY uses max_program_size=3 == the service limit, so the legacy
        # request (same shape, service limit) dedupes against it.
        assert cold == 1
        assert service.warm([QUERY, legacy]) == 0  # everything cached now


class TestSignalDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        ready_file = tmp_path / "ready.json"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--system", "a100", "--nodes", "1", "--port", "0",
                "--max-program-size", "3", "--ready-file", str(ready_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline and not ready_file.exists():
                assert process.poll() is None, (
                    f"daemon died early: {process.stderr.read().decode()}"
                )
                time.sleep(0.2)
            info = json.loads(ready_file.read_text())
            assert info["pid"] == process.pid
            with PlanClient(host=info["host"], port=info["port"]) as c:
                assert c.ping()["ok"] is True
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            # A clean drain: the daemon logged shutdown, not a traceback.
            stderr = process.stderr.read().decode()
            assert "Traceback" not in stderr
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()


class TestReproErrorTaxonomy:
    def test_serve_error_is_a_repro_error(self):
        assert issubclass(ServeError, ReproError)
