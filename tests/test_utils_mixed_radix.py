"""Tests for repro.utils.mixed_radix."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HierarchyError
from repro.utils.mixed_radix import MixedRadix, decode, encode


class TestEncodeDecode:
    def test_simple_binary(self):
        assert encode((1, 0, 1), (2, 2, 2)) == 5
        assert decode(5, (2, 2, 2)) == (1, 0, 1)

    def test_most_significant_digit_first(self):
        # With radices (3, 4): value = d0 * 4 + d1.
        assert encode((2, 1), (3, 4)) == 9
        assert decode(9, (3, 4)) == (2, 1)

    def test_radix_one_levels_carry_no_information(self):
        assert encode((0, 3, 0), (1, 5, 1)) == 3
        assert decode(3, (1, 5, 1)) == (0, 3, 0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(HierarchyError):
            encode((1, 2), (2,))

    def test_digit_out_of_range_rejected(self):
        with pytest.raises(HierarchyError):
            encode((2,), (2,))

    def test_value_out_of_range_rejected(self):
        with pytest.raises(HierarchyError):
            decode(8, (2, 2, 2))
        with pytest.raises(HierarchyError):
            decode(-1, (2, 2))

    def test_zero_radix_rejected(self):
        with pytest.raises(HierarchyError):
            encode((0,), (0,))

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5), st.data())
    def test_roundtrip(self, radices, data):
        radices = tuple(radices)
        total = 1
        for r in radices:
            total *= r
        value = data.draw(st.integers(min_value=0, max_value=total - 1))
        assert encode(decode(value, radices), radices) == value


class TestMixedRadixClass:
    def test_size(self):
        assert MixedRadix((2, 3, 4)).size == 24

    def test_len(self):
        assert len(MixedRadix((2, 3))) == 2

    def test_iteration_order(self):
        mr = MixedRadix((2, 2))
        assert list(mr) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_iteration_covers_all_values(self):
        mr = MixedRadix((3, 2))
        seen = [mr.encode(digits) for digits in mr]
        assert seen == list(range(mr.size))

    def test_sub_radix(self):
        mr = MixedRadix((2, 3, 4))
        assert mr.sub([0, 2]).radices == (2, 4)
        assert mr.sub([2]).size == 4

    def test_empty_radices_has_size_one(self):
        mr = MixedRadix(())
        assert mr.size == 1
        assert mr.encode(()) == 0
        assert mr.decode(0) == ()
