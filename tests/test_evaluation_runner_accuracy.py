"""Tests for the sweep runner and the accuracy report.

These use a small payload scale and one measurement run so the whole module
stays fast while still executing every stage of the pipeline.
"""

from __future__ import annotations

import pytest

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.accuracy import (
    accuracy_table,
    rank_of_measured_best,
    top_k_accuracy,
)
from repro.evaluation.config import ExperimentConfig, SystemKind
from repro.evaluation.runner import SweepRunner

PAYLOAD_SCALE = 0.002


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig(
        name="test-a100-2n-8x4",
        system=SystemKind.A100,
        num_nodes=2,
        axes=(8, 4),
        reduction_axes=(0,),
        algorithm=NCCLAlgorithm.RING,
        payload_scale=PAYLOAD_SCALE,
        max_program_size=3,
    )


@pytest.fixture(scope="module")
def sweep_result(small_config):
    runner = SweepRunner(measurement_runs=1)
    return runner.run(small_config)


class TestSweepRunner:
    def test_covers_every_matrix(self, sweep_result):
        assert sweep_result.num_matrices == 2
        descriptions = {m.matrix_description for m in sweep_result.matrices}
        assert descriptions == {"[[1 8] [2 2]]", "[[2 4] [1 4]]"}

    def test_every_matrix_has_default_allreduce(self, sweep_result):
        for matrix in sweep_result.matrices:
            baseline = matrix.all_reduce
            assert baseline is not None
            assert baseline.is_default_all_reduce
            assert baseline.predicted_seconds > 0
            assert baseline.measured_seconds is not None

    def test_programs_have_predictions_and_measurements(self, sweep_result):
        for _, program in sweep_result.iter_programs():
            assert program.predicted_seconds >= 0
            assert program.measured_seconds is not None
            assert program.evaluation_seconds == program.measured_seconds

    def test_best_and_speedup(self, sweep_result):
        cross_node = next(
            m for m in sweep_result.matrices if m.matrix_description == "[[2 4] [1 4]]"
        )
        best = cross_node.best()
        baseline = cross_node.all_reduce
        assert best is not None and baseline is not None
        assert best.evaluation_seconds <= baseline.evaluation_seconds
        assert cross_node.speedup_over_all_reduce() >= 1.0
        assert cross_node.programs_outperforming_all_reduce() >= 1

    def test_local_matrix_allreduce_is_near_optimal(self, sweep_result):
        """Paper Result 3: when the reduction fits in a node, AllReduce is (near) optimal."""
        local = next(
            m for m in sweep_result.matrices if m.matrix_description == "[[1 8] [2 2]]"
        )
        assert local.speedup_over_all_reduce() < 1.3

    def test_timings_recorded(self, sweep_result):
        assert sweep_result.synthesis_seconds > 0
        assert sweep_result.prediction_seconds > 0
        assert sweep_result.measurement_seconds > 0
        assert "matrices" in sweep_result.describe()

    def test_best_matrix(self, sweep_result):
        best = sweep_result.best_matrix()
        # The placement that keeps the reduction inside a node wins overall.
        assert best.matrix_description == "[[1 8] [2 2]]"

    def test_prediction_only_mode(self, small_config):
        runner = SweepRunner(measure_programs=False)
        result = runner.run(small_config)
        for _, program in result.iter_programs():
            assert program.measured_seconds is None
            assert program.evaluation_seconds == program.predicted_seconds


class TestAccuracy:
    def test_rank_of_measured_best(self, sweep_result):
        rank = rank_of_measured_best(sweep_result)
        assert rank is not None and rank >= 1

    def test_accuracy_report(self, sweep_result):
        report = top_k_accuracy([sweep_result], top_ks=(1, 5, 10))
        assert report.num_experiments == 1
        assert 0.0 <= report.accuracy(1) <= 1.0
        assert report.accuracy(10) >= report.accuracy(1)
        assert "top-1" in report.describe()

    def test_accuracy_requires_measurements(self, small_config):
        runner = SweepRunner(measure_programs=False)
        result = runner.run(small_config)
        with pytest.raises(EvaluationError):
            top_k_accuracy([result])

    def test_unknown_k_rejected(self, sweep_result):
        report = top_k_accuracy([sweep_result], top_ks=(1,))
        with pytest.raises(EvaluationError):
            report.accuracy(7)

    def test_accuracy_table_has_total_row(self, sweep_result):
        rows = accuracy_table({"A100": [sweep_result]}, top_ks=(1, 5))
        assert rows[-1][0] == "Total"
        assert len(rows) == 2

    def test_monotone_in_k(self, sweep_result):
        report = top_k_accuracy([sweep_result], top_ks=(1, 2, 3, 5, 10))
        values = [report.accuracy(k) for k in (1, 2, 3, 5, 10)]
        assert values == sorted(values)
