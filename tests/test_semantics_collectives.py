"""Tests for the Hoare-triple semantics of collectives (paper Figure 8)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidCollectiveError, SemanticsError
from repro.semantics.collectives import (
    ALL_COLLECTIVES,
    Collective,
    TRAFFIC_PROFILES,
    apply_collective,
    check_collective,
    collective_is_valid,
)
from repro.semantics.state import DeviceState


def initial(num, device):
    return DeviceState.initial(num, device)


class TestAllReduce:
    def test_two_fresh_devices(self):
        post = apply_collective(Collective.ALL_REDUCE, [initial(4, 0), initial(4, 1)])
        expected = DeviceState(4, (0b0011,) * 4)
        assert post == [expected, expected]

    def test_rejects_mismatched_rows(self):
        a = DeviceState(4, (0b1, 0b1, 0, 0))
        b = DeviceState(4, (0b10, 0, 0b10, 0))
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_REDUCE, [a, b])

    def test_rejects_double_reduction(self):
        # Figure 4b: the devices already share a contribution; reducing again
        # would fold the same data twice.
        shared = DeviceState(4, (0b0101,) * 4)
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_REDUCE, [shared, shared])

    def test_rejects_empty_group_data(self):
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_REDUCE, [DeviceState.empty(4), DeviceState.empty(4)])

    def test_three_way(self):
        post = apply_collective(
            Collective.ALL_REDUCE, [initial(3, 0), initial(3, 1), initial(3, 2)]
        )
        assert all(s == DeviceState.full(3) for s in post)


class TestReduceScatter:
    def test_scatters_contiguous_blocks(self):
        post = apply_collective(Collective.REDUCE_SCATTER, [initial(4, 0), initial(4, 1)])
        # 4 chunks over 2 devices: device 0 keeps chunks 0-1, device 1 keeps 2-3.
        assert post[0].non_empty_rows == (0, 1)
        assert post[1].non_empty_rows == (2, 3)
        assert post[0].row(0) == 0b0011

    def test_requires_divisible_chunks(self):
        with pytest.raises(InvalidCollectiveError):
            apply_collective(
                Collective.REDUCE_SCATTER, [initial(3, 0), initial(3, 1)]
            )

    def test_same_preconditions_as_allreduce(self):
        a = DeviceState(4, (0b1, 0b1, 0, 0))
        b = DeviceState(4, (0b10, 0, 0b10, 0))
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.REDUCE_SCATTER, [a, b])


class TestAllGather:
    def test_gathers_disjoint_rows(self):
        a = DeviceState(4, (0b11, 0b11, 0, 0))
        b = DeviceState(4, (0, 0, 0b11, 0b11))
        post = apply_collective(Collective.ALL_GATHER, [a, b])
        assert post[0] == post[1] == DeviceState(4, (0b11,) * 4)

    def test_rejects_overlapping_rows(self):
        a = DeviceState(4, (0b1, 0b1, 0, 0))
        b = DeviceState(4, (0b10, 0, 0b10, 0))
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_GATHER, [a, b])

    def test_rejects_unequal_row_counts(self):
        a = DeviceState(4, (0b1, 0, 0, 0))
        b = DeviceState(4, (0, 0b10, 0b10, 0))
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_GATHER, [a, b])

    def test_rejects_empty_member(self):
        a = DeviceState(4, (0b1, 0b1, 0b1, 0b1))
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_GATHER, [a, DeviceState.empty(4)])


class TestReduce:
    def test_root_takes_all_others_cleared(self):
        post = apply_collective(Collective.REDUCE, [initial(2, 0), initial(2, 1)])
        assert post[0] == DeviceState.full(2)
        assert post[1] == DeviceState.empty(2)

    def test_root_is_first_group_member(self):
        post = apply_collective(Collective.REDUCE, [initial(2, 1), initial(2, 0)])
        assert post[0] == DeviceState.full(2)  # first listed device is the root
        assert post[1] == DeviceState.empty(2)


class TestBroadcast:
    def test_overwrites_with_root_state(self):
        root = DeviceState.full(2)
        other = DeviceState.empty(2)
        post = apply_collective(Collective.BROADCAST, [root, other])
        assert post == [root, root]

    def test_rejects_root_missing_information(self):
        root = DeviceState(2, (0b01, 0b01))
        other = DeviceState(2, (0b10, 0b10))
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.BROADCAST, [root, other])

    def test_rejects_no_information_increase(self):
        root = DeviceState.full(2)
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.BROADCAST, [root, root])

    def test_rejects_empty_root(self):
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.BROADCAST, [DeviceState.empty(2), DeviceState.empty(2)])


class TestGroupValidation:
    def test_single_device_group_rejected(self):
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_REDUCE, [initial(2, 0)])

    def test_size_mismatch_rejected(self):
        with pytest.raises(SemanticsError):
            apply_collective(Collective.ALL_REDUCE, [initial(2, 0), initial(3, 1)])

    def test_check_and_boolean_wrappers(self):
        states = [initial(2, 0), initial(2, 1)]
        check_collective(Collective.ALL_REDUCE, states)
        assert collective_is_valid(Collective.ALL_REDUCE, states)
        assert not collective_is_valid(Collective.ALL_REDUCE, [states[0], states[0]])


class TestPaperFigure4:
    """The two semantically invalid programs of Figure 4 must be rejected."""

    def test_reducescatter_then_allreduce_same_pair_is_invalid(self):
        # Figure 4a: after ReduceScatter between A0/A1, their chunk sets differ,
        # so a second AllReduce between them violates the equal-rows premise.
        a0, a1 = initial(4, 0), initial(4, 1)
        post = apply_collective(Collective.REDUCE_SCATTER, [a0, a1])
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_REDUCE, post)

    def test_allreduce_twice_same_pair_is_invalid(self):
        # Figure 4b: reducing A0 and C0 twice folds the same data twice.
        a0, c0 = initial(4, 0), initial(4, 2)
        post = apply_collective(Collective.ALL_REDUCE, [a0, c0])
        with pytest.raises(InvalidCollectiveError):
            apply_collective(Collective.ALL_REDUCE, post)


class TestCollectiveEnum:
    def test_moves_reduced_data(self):
        assert Collective.ALL_REDUCE.moves_reduced_data
        assert Collective.REDUCE.moves_reduced_data
        assert not Collective.ALL_GATHER.moves_reduced_data
        assert not Collective.BROADCAST.moves_reduced_data

    def test_is_rooted(self):
        assert Collective.REDUCE.is_rooted and Collective.BROADCAST.is_rooted
        assert not Collective.ALL_REDUCE.is_rooted


class TestTrafficProfiles:
    def test_output_payload_factors(self):
        rs = TRAFFIC_PROFILES[Collective.REDUCE_SCATTER]
        ag = TRAFFIC_PROFILES[Collective.ALL_GATHER]
        ar = TRAFFIC_PROFILES[Collective.ALL_REDUCE]
        assert rs.output_payload(8.0, 4) == pytest.approx(2.0)
        assert ag.output_payload(2.0, 4) == pytest.approx(8.0)
        assert ar.output_payload(8.0, 4) == pytest.approx(8.0)

    def test_ring_allreduce_volume(self):
        ar = TRAFFIC_PROFILES[Collective.ALL_REDUCE]
        assert ar.ring_bytes_on_wire(100.0, 4) == pytest.approx(150.0)
        assert ar.tree_bytes_on_wire(100.0, 4) == pytest.approx(200.0)

    def test_latency_steps(self):
        ar = TRAFFIC_PROFILES[Collective.ALL_REDUCE]
        assert ar.latency_steps_ring(4) == 6
        assert ar.latency_steps_tree(4) == 4
        rs = TRAFFIC_PROFILES[Collective.REDUCE_SCATTER]
        assert rs.latency_steps_ring(4) == 3

    @given(st.sampled_from(ALL_COLLECTIVES), st.integers(min_value=2, max_value=64),
           st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=60)
    def test_volumes_are_non_negative_and_finite(self, op, group, payload):
        profile = TRAFFIC_PROFILES[op]
        assert profile.ring_bytes_on_wire(payload, group) >= 0
        assert profile.tree_bytes_on_wire(payload, group) >= 0
        assert profile.latency_steps_ring(group) >= 1
        assert profile.latency_steps_tree(group) >= 1


class TestSemanticProperties:
    """Property-based invariants of the Hoare rules."""

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=20)
    def test_allreduce_from_initial_is_full(self, group_size):
        states = [initial(group_size, d) for d in range(group_size)]
        post = apply_collective(Collective.ALL_REDUCE, states)
        assert all(s == DeviceState.full(group_size) for s in post)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=20)
    def test_reduce_scatter_then_all_gather_equals_all_reduce(self, group_size):
        states = [initial(group_size, d) for d in range(group_size)]
        ar = apply_collective(Collective.ALL_REDUCE, list(states))
        rs = apply_collective(Collective.REDUCE_SCATTER, list(states))
        ag = apply_collective(Collective.ALL_GATHER, rs)
        assert ag == ar

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=20)
    def test_reduce_then_broadcast_equals_all_reduce(self, group_size):
        states = [initial(group_size, d) for d in range(group_size)]
        ar = apply_collective(Collective.ALL_REDUCE, list(states))
        r = apply_collective(Collective.REDUCE, list(states))
        b = apply_collective(Collective.BROADCAST, r)
        assert b == ar

    @given(st.integers(min_value=2, max_value=6), st.sampled_from(list(ALL_COLLECTIVES)))
    @settings(max_examples=40)
    def test_total_information_never_decreases_except_clearing(self, group_size, op):
        """The union of all contributions over the group never gains spurious bits."""
        states = [initial(group_size, d) for d in range(group_size)]
        try:
            post = apply_collective(op, list(states))
        except InvalidCollectiveError:
            return
        union_before = states[0]
        for s in states[1:]:
            union_before = union_before.union(s)
        union_after = post[0]
        for s in post[1:]:
            union_after = union_after.union(s)
        assert union_after.is_subset_of(union_before) or union_before.is_subset_of(union_after)
