"""Empirical check of Theorem 3.2: (d) >= (c) >= (b) >= (a).

The theorem states that every valid lowered program synthesizable from a less
expressive hierarchy can also be synthesized from a more expressive one.  Its
proof (appendix B) relies on a per-instruction validity notion (Lemmas
B.4–B.6) under which an instruction may only leave devices out of a step if
the skipped devices differ solely on reduction axes.  Hierarchies (a)–(c) can
additionally express *partially replicated* steps — e.g. a ``Master``
broadcast that touches the roots of only one data-parallel replica — which are
end-to-end valid but redundant (the replicated version is never slower) and
are exactly the instructions those lemmas exclude.

We therefore compare the sets of *fully replicated* lowered programs: every
step must touch each non-reduction coordinate the same number of times.  On
these, (d) must cover (a), (b) and (c), and (c) must cover (b).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.hierarchy import HierarchyVariant, build_synthesis_hierarchy
from repro.synthesis.lowering import lower_synthesized
from repro.synthesis.synthesizer import synthesize_programs

VARIANT_ORDER = [
    HierarchyVariant.SYSTEM,        # (a)
    HierarchyVariant.COLUMN,        # (b)
    HierarchyVariant.ROW,           # (c)
    HierarchyVariant.REDUCTION,     # (d)
]


def is_fully_replicated(lowered, placement, request) -> bool:
    """True when every step touches each non-reduction coordinate equally often."""
    non_reduction = request.non_reduction_axes(placement.matrix.axes)
    if not non_reduction:
        return True
    for step in lowered.steps:
        counts = Counter(
            tuple(placement.axis_coordinate(device, axis) for axis in non_reduction)
            for device in step.devices
        )
        all_keys = {
            tuple(placement.axis_coordinate(device, axis) for axis in non_reduction)
            for device in range(placement.num_devices)
        }
        if set(counts) != all_keys or len(set(counts.values())) != 1:
            return False
    return True


def lowered_signatures(matrix, request, variant, max_size):
    placement = DevicePlacement(matrix)
    hierarchy = build_synthesis_hierarchy(matrix, request, variant)
    result = synthesize_programs(hierarchy, max_program_size=max_size)
    signatures = set()
    for synthesized in result.programs:
        lowered = lower_synthesized(synthesized, hierarchy, placement)
        if not lowered.validates_against(placement, request):
            continue
        if not is_fully_replicated(lowered, placement, request):
            continue
        signatures.add(lowered.signature())
    return signatures


@pytest.mark.parametrize(
    "cards, axes_sizes, reduction_axes",
    [
        ([2, 2], (2, 2), (1,)),
        ([2, 2], (2, 2), (0,)),
        ([2, 4], (4, 2), (0,)),
        ([2, 2, 2], (4, 2), (0,)),
    ],
)
def test_reduction_hierarchy_covers_less_expressive_variants(cards, axes_sizes, reduction_axes):
    hierarchy = SystemHierarchy.from_cardinalities(cards)
    axes = ParallelismAxes(tuple(axes_sizes))
    request = ReductionRequest(tuple(reduction_axes))
    max_size = 3
    for matrix in enumerate_parallelism_matrices(hierarchy, axes):
        signature_sets = {
            variant: lowered_signatures(matrix, request, variant, max_size)
            for variant in VARIANT_ORDER
        }
        # The load-bearing part of Theorem 3.2 for P2: the reduction-axis
        # hierarchy (d) — the one the tool actually uses — covers every fully
        # replicated valid lowered program of (a), (b) and (c).  (The paper's
        # intermediate (c) >= (b) step is stated w.r.t. a weaker program
        # equivalence and does not hold under exact lowered-program equality,
        # because Master instructions anchored at a non-reduction ancestor
        # replicate differently; (d) still covers both sides.)
        reduction_set = signature_sets[HierarchyVariant.REDUCTION]
        assert signature_sets[HierarchyVariant.SYSTEM] <= reduction_set
        assert signature_sets[HierarchyVariant.COLUMN] <= reduction_set
        assert signature_sets[HierarchyVariant.ROW] <= reduction_set


def test_reduction_hierarchy_finds_programs_missed_by_system_hierarchy():
    """(d) is strictly more expressive than (a) on the Figure 2d matrix.

    The Figure 3 strategies need to split the GPUs under one CPU in half, which
    the raw system hierarchy cannot express (paper §2.5).
    """
    hierarchy = SystemHierarchy.from_pairs(
        [("rack", 1), ("server", 2), ("cpu", 2), ("gpu", 4)]
    )
    axes = ParallelismAxes.of(4, 4)
    request = ReductionRequest.over(1)
    matrix = next(
        m
        for m in enumerate_parallelism_matrices(hierarchy, axes)
        if m.entries == ((1, 1, 2, 2), (1, 2, 1, 2))
    )
    system_set = lowered_signatures(matrix, request, HierarchyVariant.SYSTEM, 3)
    reduction_set = lowered_signatures(matrix, request, HierarchyVariant.REDUCTION, 3)
    assert system_set < reduction_set


def test_reduction_hierarchy_is_strictly_smaller_search_space():
    """The (d) hierarchy searches far fewer virtual devices than (b)/(c) while
    covering their fully-replicated valid lowered programs."""
    hierarchy = SystemHierarchy.from_cardinalities([2, 4])
    axes = ParallelismAxes.of(4, 2)
    request = ReductionRequest.over(0)
    matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
    row = build_synthesis_hierarchy(matrix, request, HierarchyVariant.ROW)
    reduction = build_synthesis_hierarchy(matrix, request, HierarchyVariant.REDUCTION_COLLAPSED)
    assert reduction.num_virtual_devices < row.num_virtual_devices
