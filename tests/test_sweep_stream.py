"""Tests for the sweep engine: Planner routing, JSONL streaming and resume."""

from __future__ import annotations

import json

import pytest

from repro.analysis.serialization import (
    load_jsonl_results,
    result_from_record,
    result_to_record,
)
from repro.evaluation.report import render_provenance_summary, render_sweep_summary
from repro.evaluation.runner import SweepRunner
from repro.evaluation.scenarios import preset
from repro.evaluation.tables import build_appendix_table
from repro.service import PlanCache, PlanningService


@pytest.fixture(scope="module")
def smoke_scenarios():
    return preset("smoke")


def _runner() -> SweepRunner:
    return SweepRunner(measure_programs=False)


def _service_runner(cache_dir) -> SweepRunner:
    return SweepRunner(
        measure_programs=False,
        planner_factory=lambda topology: PlanningService(
            topology, cache=PlanCache(directory=cache_dir)
        ),
    )


def _deterministic(record):
    """A record minus wall-clock fields: what must reproduce exactly."""
    record = json.loads(json.dumps(record))
    record.pop("provenance", None)
    for matrix in record.get("matrices", ()):
        matrix.pop("synthesis_seconds", None)
    return record


def _aggregate_rows(results):
    """Appendix-table rows minus the wall-clock synthesis column."""
    rows = build_appendix_table(results).rows
    return [tuple(row[:6] + row[7:]) for row in rows]


class TestPlannerRouting:
    def test_program_sizes_keep_dsl_semantics(self, smoke_scenarios, tmp_path):
        """size = DSL program size (baseline AllReduce counts as 1), not steps."""
        with _service_runner(tmp_path) as runner:
            cold = runner.run(smoke_scenarios[0])
        with _service_runner(tmp_path) as runner:
            warm = runner.run(smoke_scenarios[0])
        for result in (cold, warm):
            for matrix in result.matrices:
                baseline = matrix.all_reduce
                assert baseline is not None and baseline.size == 1
                assert all(1 <= p.size <= 3 for p in matrix.programs)  # limit is 3
        assert [
            (p.mnemonic, p.size) for _, p in cold.iter_programs()
        ] == [(p.mnemonic, p.size) for _, p in warm.iter_programs()]

    def test_cold_result_carries_outcome_provenance(self, smoke_scenarios):
        result = _runner().run(smoke_scenarios[0])
        assert result.cache_tier is None and not result.cache_hit
        assert result.fingerprint and len(result.fingerprint) == 64
        assert result.synthesis_seconds > 0
        assert result.prediction_seconds > 0
        assert result.planner_seconds >= result.synthesis_seconds
        assert "[cold]" in result.describe()

    def test_service_warm_run_hits_cache_and_matches_cold(
        self, smoke_scenarios, tmp_path
    ):
        with _service_runner(tmp_path) as runner:
            cold = runner.run_stream(smoke_scenarios)
        with _service_runner(tmp_path) as runner:  # fresh memory tier
            warm = runner.run_stream(smoke_scenarios)
        assert all(not r.cache_hit for r in cold)
        assert all(r.cache_tier == "disk" for r in warm)
        assert all(r.synthesis_seconds == 0.0 for r in warm)
        assert _aggregate_rows(warm) == _aggregate_rows(cold)
        assert "[disk]" in warm[0].describe()

    def test_planner_is_shared_across_scenarios_of_one_topology(self, smoke_scenarios):
        calls = []

        class CountingFactory:
            def __call__(self, topology):
                calls.append(topology.name)
                from repro.api import P2

                return P2(topology)

        runner = SweepRunner(measure_programs=False, planner_factory=CountingFactory())
        runner.run_many(smoke_scenarios)
        assert len(calls) == 1  # all smoke scenarios share the a100-2n topology


class TestStreamAndResume:
    def test_stream_writes_one_flushed_record_per_scenario(
        self, smoke_scenarios, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        results = _runner().run_stream(smoke_scenarios, out_path=path)
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == len(smoke_scenarios) == len(results)
        for line, scenario in zip(lines, smoke_scenarios):
            record = json.loads(line)
            assert record["scenario"] == scenario.name
            assert record["query"] == scenario.query().to_dict()
            assert record["matrices"]
            assert record["provenance"]["fingerprint"]

    def test_resume_completes_partial_checkpoint_identically(
        self, smoke_scenarios, tmp_path
    ):
        cold_path = tmp_path / "cold.jsonl"
        cold = _runner().run_stream(smoke_scenarios, out_path=cold_path)

        partial_path = tmp_path / "partial.jsonl"
        partial_path.write_text(cold_path.read_text().splitlines(keepends=True)[0])
        resumed = _runner().run_stream(
            smoke_scenarios, out_path=partial_path, resume=True
        )
        assert len(resumed) == len(cold)
        # The resumed sweep reproduces the cold aggregates exactly.
        assert _aggregate_rows(resumed) == _aggregate_rows(cold)
        cold_records = [json.loads(line) for line in cold_path.read_text().splitlines()]
        new_records = [json.loads(line) for line in partial_path.read_text().splitlines()]
        assert [_deterministic(r) for r in new_records] == [
            _deterministic(r) for r in cold_records
        ]

    def test_resume_skips_completed_scenarios(self, smoke_scenarios, tmp_path):
        path = tmp_path / "done.jsonl"
        _runner().run_stream(smoke_scenarios, out_path=path)

        class ExplodingFactory:
            def __call__(self, topology):
                raise AssertionError("a fully checkpointed sweep must not replan")

        runner = SweepRunner(measure_programs=False, planner_factory=ExplodingFactory())
        results = runner.run_stream(smoke_scenarios, out_path=path, resume=True)
        assert len(results) == len(smoke_scenarios)
        assert [r.config.name for r in results] == [s.name for s in smoke_scenarios]

    def test_resume_recomputes_when_the_query_changed(self, smoke_scenarios, tmp_path):
        path = tmp_path / "stale.jsonl"
        _runner().run_stream(smoke_scenarios[:1], out_path=path)
        record = json.loads(path.read_text())
        record["query"]["bytes_per_device"] += 1  # pretend the grid changed
        path.write_text(json.dumps(record) + "\n")

        results = _runner().run_stream(smoke_scenarios[:1], out_path=path, resume=True)
        assert len(results) == 1
        assert not results[0].cache_hit  # recomputed, not restored
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # the superseding record was appended

    def test_resume_recomputes_a_stale_record_version(self, smoke_scenarios, tmp_path):
        path = tmp_path / "old.jsonl"
        _runner().run_stream(smoke_scenarios[:1], out_path=path)
        record = json.loads(path.read_text())
        record["format_version"] = 99  # a checkpoint from a future/foreign writer
        path.write_text(json.dumps(record) + "\n")
        results = _runner().run_stream(smoke_scenarios[:1], out_path=path, resume=True)
        assert len(results) == 1  # recomputed, not crashed

    def test_resume_tolerates_a_truncated_trailing_line(
        self, smoke_scenarios, tmp_path
    ):
        path = tmp_path / "torn.jsonl"
        _runner().run_stream(smoke_scenarios[:2], out_path=path)
        with open(path, "a") as handle:
            handle.write('{"scenario": "smoke-a100-2n-32-r0-s0p002-ring", "trunc')
        results = _runner().run_stream(smoke_scenarios, out_path=path, resume=True)
        assert len(results) == len(smoke_scenarios)
        # The record appended after the torn line must land on its own line,
        # so the healed checkpoint restores every scenario.
        assert len(load_jsonl_results(path)) == len(smoke_scenarios)

    def test_load_jsonl_results_last_record_wins(self, smoke_scenarios, tmp_path):
        path = tmp_path / "dup.jsonl"
        result = _runner().run(smoke_scenarios[0])
        first = result_to_record(result, query=smoke_scenarios[0].query().to_dict())
        second = json.loads(json.dumps(first))
        second["provenance"]["cache_tier"] = "disk"
        path.write_text(json.dumps(first) + "\n" + json.dumps(second) + "\n")
        loaded = load_jsonl_results(path)
        assert len(loaded) == 1
        assert loaded[0].cache_tier == "disk"


class TestRecordRoundtrip:
    def test_record_roundtrip_preserves_everything_observable(self, smoke_scenarios):
        result = _runner().run(smoke_scenarios[0])
        record = result_to_record(result, query=smoke_scenarios[0].query().to_dict())
        restored = result_from_record(json.loads(json.dumps(record)))
        assert restored.config == result.config
        assert restored.fingerprint == result.fingerprint
        assert restored.cache_tier == result.cache_tier
        assert restored.synthesis_seconds == result.synthesis_seconds
        assert restored.total_programs == result.total_programs
        assert _aggregate_rows([restored]) == _aggregate_rows([result])

    def test_record_version_gate(self):
        with pytest.raises(Exception):
            result_from_record({"format_version": 99})


class TestProfileFastPathInvariance:
    """The compiled-profile fast path must not move a single measurement.

    Predicted times are bit-identical to the per-group reference simulation,
    so the ranked order — and therefore the order in which measurement
    consumes the seeded noise stream — cannot shift.  This pins it end to
    end: a sweep planned through the reference path and one planned through
    the default (profile) path must rank identically and draw identical
    measured times from the noise stream.
    """

    @staticmethod
    def _reference_planner(topology):
        """A P2 that prices every candidate with the per-group reference loop."""
        from repro.api import P2
        from repro.cost.model import CostModel
        from repro.cost.simulator import ProgramSimulator

        class ReferenceEvaluator:
            n_workers = 1

            def __init__(self, topology, cost_model):
                self._simulator = ProgramSimulator(topology, cost_model)

            def evaluate(self, programs, bytes_per_device, algorithm):
                return [
                    0.0
                    if program.num_steps == 0
                    else self._simulator.simulate_reference(
                        program, bytes_per_device, algorithm
                    ).total_seconds
                    for program in programs
                ]

        class ReferenceP2(P2):
            def plan(self, query, **kwargs):
                kwargs.setdefault(
                    "evaluator", ReferenceEvaluator(self.topology, self.cost_model)
                )
                return super().plan(query, **kwargs)

        return ReferenceP2(topology, cost_model=CostModel())

    def test_ranked_order_and_noise_stream_identical_to_reference(
        self, smoke_scenarios
    ):
        scenario = smoke_scenarios[0]
        fast_runner = SweepRunner(measure_programs=True, measurement_runs=1)
        reference_runner = SweepRunner(
            measure_programs=True,
            measurement_runs=1,
            planner_factory=self._reference_planner,
        )
        fast = fast_runner.run(scenario)
        reference = reference_runner.run(scenario)

        fast_programs = [p for _, p in fast.iter_programs()]
        reference_programs = [p for _, p in reference.iter_programs()]
        # Same ranked order (mnemonics in sequence) ...
        assert [p.mnemonic for p in fast_programs] == [
            p.mnemonic for p in reference_programs
        ]
        # ... the same predictions to the last ulp (== on floats, no approx) ...
        assert [p.predicted_seconds for p in fast_programs] == [
            p.predicted_seconds for p in reference_programs
        ]
        # ... and identical noise-stream consumption: every measured time of
        # the seeded testbed matches exactly, program by program.
        assert [p.measured_seconds for p in fast_programs] == [
            p.measured_seconds for p in reference_programs
        ]

    def test_payload_ladder_reprices_profiles_and_surfaces_counters(
        self, smoke_scenarios
    ):
        import dataclasses

        base = smoke_scenarios[0]
        ladder = [base] + [
            dataclasses.replace(
                base,
                config=dataclasses.replace(
                    base.config,
                    name=f"{base.config.name}-rung{i}",
                    payload_scale=base.config.payload_scale / (2.0**i),
                ),
            )
            for i in (1, 2, 3)
        ]
        runner = _runner()
        results = runner.run_many(ladder)
        first, rest = results[0], results[1:]
        # The runner keeps one planner (one simulator, one profile cache) per
        # topology: the first rung compiles every profile, later rungs of the
        # ladder re-price them without a single new compilation.
        assert first.profile_misses > 0 and first.profile_hits == 0
        for result in rest:
            assert result.profile_misses == 0
            assert result.profile_hits == first.profile_misses
            provenance = result.provenance()
            assert provenance["profile_hits"] == result.profile_hits
            assert provenance["profile_misses"] == result.profile_misses


class TestReportProvenance:
    def test_summary_surfaces_cache_hit_ratio_and_split(self, smoke_scenarios, tmp_path):
        with _service_runner(tmp_path) as runner:
            cold = runner.run_stream(smoke_scenarios)
        with _service_runner(tmp_path) as runner:
            warm = runner.run_stream(smoke_scenarios)
        cold_line = render_provenance_summary(cold)
        warm_line = render_provenance_summary(warm)
        assert f"0/{len(cold)} hits (0%)" in cold_line
        assert f"{len(warm)}/{len(warm)} hits (100%)" in warm_line
        assert "synthesis" in cold_line and "evaluation" in cold_line
        assert "plan cache:" in render_sweep_summary(warm)
