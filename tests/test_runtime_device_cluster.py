"""Tests for repro.runtime.device and repro.runtime.cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RuntimeExecutionError
from repro.runtime.cluster import SimCluster
from repro.runtime.device import SimDevice


class TestSimDevice:
    def make(self, num_chunks=4, chunk_elems=2, device_id=0):
        data = np.arange(num_chunks * chunk_elems, dtype=np.float64)
        return SimDevice.with_data(device_id, num_chunks, chunk_elems, data)

    def test_with_data_all_chunks_valid(self):
        device = self.make()
        assert device.num_valid_chunks == 4
        assert device.sorted_valid_chunks == (0, 1, 2, 3)

    def test_with_data_shape_checked(self):
        with pytest.raises(RuntimeExecutionError):
            SimDevice.with_data(0, 4, 2, np.zeros(7))

    def test_chunk_access_and_mutation(self):
        device = self.make()
        np.testing.assert_array_equal(device.chunk(1), [2.0, 3.0])
        device.set_chunk(1, np.array([9.0, 9.0]))
        np.testing.assert_array_equal(device.chunk(1), [9.0, 9.0])

    def test_chunk_is_a_copy(self):
        device = self.make()
        chunk = device.chunk(0)
        chunk[0] = 123.0
        assert device.chunk(0)[0] != 123.0

    def test_chunk_range_checked(self):
        device = self.make()
        with pytest.raises(RuntimeExecutionError):
            device.chunk(4)
        with pytest.raises(RuntimeExecutionError):
            device.set_chunk(-1, np.zeros(2))

    def test_set_chunk_shape_checked(self):
        device = self.make()
        with pytest.raises(RuntimeExecutionError):
            device.set_chunk(0, np.zeros(3))

    def test_invalidate_and_holds(self):
        device = self.make()
        device.invalidate([1, 3])
        assert not device.holds(1)
        assert device.holds(0)
        assert device.sorted_valid_chunks == (0, 2)

    def test_set_chunk_invalid_flag(self):
        device = self.make()
        device.set_chunk(2, np.zeros(2), valid=False)
        assert not device.holds(2)

    def test_full_payload_requires_all_chunks(self):
        device = self.make()
        assert device.full_payload().shape == (8,)
        device.invalidate([0])
        with pytest.raises(RuntimeExecutionError):
            device.full_payload()

    def test_describe(self):
        assert "4/4" in self.make().describe()


class TestSimCluster:
    def test_create_shapes(self):
        cluster = SimCluster.create(4, elems_per_chunk=3)
        assert cluster.num_devices == 4
        assert cluster.num_chunks == 4
        assert cluster.elems_per_chunk == 3
        assert cluster.initial_payloads.shape == (4, 12)

    def test_deterministic_with_seed(self):
        a = SimCluster.create(3, seed=7)
        b = SimCluster.create(3, seed=7)
        np.testing.assert_array_equal(a.initial_payloads, b.initial_payloads)

    def test_custom_init(self):
        cluster = SimCluster.create(2, elems_per_chunk=2, init=lambda d: np.full(4, float(d)))
        np.testing.assert_array_equal(cluster[1].full_payload(), np.full(4, 1.0))

    def test_custom_init_shape_checked(self):
        with pytest.raises(RuntimeExecutionError):
            SimCluster.create(2, elems_per_chunk=2, init=lambda d: np.zeros(3))

    def test_invalid_arguments(self):
        with pytest.raises(RuntimeExecutionError):
            SimCluster.create(0)
        with pytest.raises(RuntimeExecutionError):
            SimCluster.create(2, elems_per_chunk=0)

    def test_expected_reduction(self):
        cluster = SimCluster.create(3, elems_per_chunk=1, init=lambda d: np.full(3, float(d + 1)))
        np.testing.assert_array_equal(cluster.expected_reduction([0, 2]), np.full(3, 4.0))
        with pytest.raises(RuntimeExecutionError):
            cluster.expected_reduction([5])

    def test_iteration_and_describe(self):
        cluster = SimCluster.create(2)
        assert len(list(cluster)) == 2
        assert "2 devices" in cluster.describe()
