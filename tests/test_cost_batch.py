"""Tests for repro.cost.batch: vectorized pricing over compiled profiles.

The contract under test is the same one ``tests/test_cost_profile.py``
enforces for the compile/price split: **exact float equality** (``==``,
never ``approx``) between the batched numpy kernels and the scalar
reference — totals, per-step seconds, bottleneck links *and* payloads,
lower bounds — across payload ladders, both NCCL algorithms and every
program the synthesis pipeline produces for a sample of shapes.
"""

from __future__ import annotations

import random

import pytest

from repro.cost.batch import (
    BatchPricer,
    BatchPriceResult,
    have_numpy,
    price_programs,
)
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.profile import price_profile
from repro.cost.simulator import ProgramSimulator
from repro.errors import CostModelError
from tests.test_cost_profile import PAYLOAD_LADDER, synthesized_programs

MB = 1 << 20
ALGORITHMS = (NCCLAlgorithm.RING, NCCLAlgorithm.TREE)
# Cost models with the derating threshold straddling the ladder payloads, so
# both bandwidth branches of the kernel are exercised.
COST_MODELS = (
    CostModel(),
    CostModel(launch_overhead=0.0, small_message_bytes=0.0),
    CostModel(small_message_bytes=1 << 28, small_message_efficiency=0.25),
)


def _sample_programs(topology, axes_sizes, request_axes, k=10, seed=20260808):
    programs = synthesized_programs(topology, axes_sizes, request_axes)
    assert programs, "fixture produced no programs"
    rng = random.Random(seed)
    return rng.sample(programs, min(len(programs), k))


class TestExactEquality:
    """BatchPricer == scalar price_profile, to the last ulp."""

    @pytest.mark.parametrize(
        "axes_sizes, request_axes",
        [((8, 4), (0,)), ((32,), (0,)), ((4, 8), (1,)), ((2, 4, 4), (0, 2))],
    )
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_results_equal_scalar_across_ladder(
        self, a100_2node, axes_sizes, request_axes, algorithm
    ):
        simulator = ProgramSimulator(a100_2node)
        for program in _sample_programs(a100_2node, axes_sizes, request_axes):
            profile = simulator.profile_for(program)
            pricer = BatchPricer(profile)
            for model in COST_MODELS:
                batch = pricer.price(
                    PAYLOAD_LADDER, algorithm, model, label=program.label
                )
                assert batch.vectorized == have_numpy()
                for column, payload in enumerate(PAYLOAD_LADDER):
                    scalar = price_profile(
                        profile, payload, algorithm, model, label=program.label
                    )
                    # Exact dataclass equality: total, per-step seconds,
                    # bottleneck links, sharings, payloads.
                    assert batch.result(column, label=program.label) == scalar
                    assert batch.total(column) == scalar.total_seconds
                assert batch.totals == [
                    price_profile(profile, p, algorithm, model).total_seconds
                    for p in PAYLOAD_LADDER
                ]

    def test_v100_host_link_results_equal_scalar(self, v100_2node):
        simulator = ProgramSimulator(v100_2node)
        for program in _sample_programs(v100_2node, (4, 4), (0,)):
            profile = simulator.profile_for(program)
            pricer = BatchPricer(profile)
            for algorithm in ALGORITHMS:
                batch = pricer.price(PAYLOAD_LADDER, algorithm, simulator.cost_model)
                for column, payload in enumerate(PAYLOAD_LADDER):
                    assert batch.result(column) == price_profile(
                        profile, payload, algorithm, simulator.cost_model
                    )

    def test_grid_covers_both_algorithms(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        pricer = BatchPricer(simulator.profile_for(program))
        grid = pricer.grid(PAYLOAD_LADDER, ALGORITHMS, simulator.cost_model)
        assert set(grid) == set(ALGORITHMS)
        for algorithm, batch in grid.items():
            assert batch.totals == [
                simulator.simulate(program, p, algorithm).total_seconds
                for p in PAYLOAD_LADDER
            ]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_lower_bounds_equal_scalar(self, a100_2node, algorithm):
        simulator = ProgramSimulator(a100_2node)
        for program in _sample_programs(a100_2node, (8, 4), (0,)):
            profile = simulator.profile_for(program)
            pricer = BatchPricer(profile)
            for model in COST_MODELS:
                bounds = pricer.lower_bounds(PAYLOAD_LADDER, algorithm, model)
                assert bounds == [
                    profile.lower_bound(p, algorithm, model) for p in PAYLOAD_LADDER
                ]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_price_programs_equals_per_profile_pricing(self, a100_2node, algorithm):
        simulator = ProgramSimulator(a100_2node)
        programs = _sample_programs(a100_2node, (8, 4), (0,), k=16)
        pricers = [
            BatchPricer(simulator.profile_for(program)) for program in programs
        ]
        for model in COST_MODELS:
            for payload in PAYLOAD_LADDER:
                totals = price_programs(pricers, payload, algorithm, model)
                assert totals == [
                    price_profile(
                        pricer.profile, payload, algorithm, model
                    ).total_seconds
                    for pricer in pricers
                ]


class TestScalarFallback:
    """With numpy masked out, every entry point returns identical floats."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        import repro.cost.batch as batch

        monkeypatch.setattr(batch, "_np", None)

    def test_price_falls_back_bit_identically(self, a100_2node, no_numpy):
        simulator = ProgramSimulator(a100_2node)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        profile = simulator.profile_for(program)
        pricer = BatchPricer(profile)
        assert not pricer.vectorized and not have_numpy()
        batch = pricer.price(PAYLOAD_LADDER, NCCLAlgorithm.RING)
        assert not batch.vectorized
        for column, payload in enumerate(PAYLOAD_LADDER):
            assert batch.result(column) == price_profile(
                profile, payload, NCCLAlgorithm.RING, CostModel()
            )
        assert pricer.lower_bounds(PAYLOAD_LADDER) == [
            profile.lower_bound(p, NCCLAlgorithm.RING, CostModel())
            for p in PAYLOAD_LADDER
        ]
        assert price_programs([pricer], 1 * MB) == [
            price_profile(profile, 1 * MB, NCCLAlgorithm.RING, CostModel()).total_seconds
        ]

    def test_simulator_counts_fallbacks(self, a100_2node, no_numpy):
        simulator = ProgramSimulator(a100_2node)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        batch = simulator.simulate_batch(program, PAYLOAD_LADDER)
        assert not batch.vectorized
        assert simulator.batch_fallbacks == 1
        assert simulator.batch_prices == 0


class TestValidation:
    def test_empty_payload_vector_is_rejected(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        pricer = BatchPricer(simulator.profile_for(program))
        with pytest.raises(CostModelError, match="non-empty"):
            pricer.price([])
        with pytest.raises(CostModelError, match="non-empty"):
            simulator.simulate_batch(program, [])

    def test_negative_payload_in_vector_is_rejected(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        pricer = BatchPricer(simulator.profile_for(program))
        with pytest.raises(CostModelError, match="non-negative"):
            pricer.price([1 * MB, -1.0])
        with pytest.raises(CostModelError, match="non-negative"):
            pricer.lower_bounds([-1.0])
        with pytest.raises(CostModelError, match="non-negative"):
            price_programs([pricer], -1.0)
        with pytest.raises(CostModelError, match="non-negative"):
            simulator.set_payload_ladder([0.0, -1.0])

    def test_device_mismatch_is_rejected(self, a100_2node, v100_2node):
        program = _sample_programs(v100_2node, (4, 4), (0,), k=1)[0]
        simulator = ProgramSimulator(a100_2node)
        with pytest.raises(CostModelError, match="devices"):
            simulator.simulate_batch(program, PAYLOAD_LADDER)
        with pytest.raises(CostModelError, match="devices"):
            simulator.simulate_many([program], 1 * MB)


class TestSimulatorBatching:
    """simulate_batch / simulate_many / the payload-ladder memo."""

    def test_simulate_batch_equals_per_payload_simulate(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        reference = ProgramSimulator(a100_2node)
        for program in _sample_programs(a100_2node, (8, 4), (0,), k=6):
            for algorithm in ALGORITHMS:
                batch = simulator.simulate_batch(program, PAYLOAD_LADDER, algorithm)
                results = batch.results(label=program.label)
                assert len(results) == len(PAYLOAD_LADDER)
                for payload, result in zip(PAYLOAD_LADDER, results):
                    assert result == reference.simulate(program, payload, algorithm)

    def test_simulate_many_equals_per_program_simulate(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        reference = ProgramSimulator(a100_2node)
        programs = _sample_programs(a100_2node, (8, 4), (0,), k=12)
        for algorithm in ALGORITHMS:
            totals = simulator.simulate_many(programs, 32 * MB, algorithm)
            assert totals == [
                reference.simulate(p, 32 * MB, algorithm).total_seconds
                for p in programs
            ]
        # Profile hit/miss accounting is identical to per-program simulate.
        assert simulator.profile_misses == reference.profile_misses
        assert simulator.profile_hits == reference.profile_hits

    def test_ladder_memo_prices_once_and_stays_exact(self, a100_2node):
        if not have_numpy():
            pytest.skip("ladder memo requires numpy")
        simulator = ProgramSimulator(a100_2node)
        reference = ProgramSimulator(a100_2node)
        simulator.set_payload_ladder(PAYLOAD_LADDER)
        assert simulator.payload_ladder == tuple(float(p) for p in PAYLOAD_LADDER)
        programs = _sample_programs(a100_2node, (8, 4), (0,), k=6)
        for payload in PAYLOAD_LADDER:
            for program in programs:
                assert simulator.simulate(
                    program, payload
                ) == reference.simulate(program, payload)
        # One batched kernel per (signature, algorithm), not per rung.
        distinct = len({p.signature() for p in programs})
        assert simulator.batch_prices == distinct
        assert simulator.batch_payloads == distinct * len(PAYLOAD_LADDER)

    def test_off_ladder_payload_uses_scalar_path(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        reference = ProgramSimulator(a100_2node)
        simulator.set_payload_ladder(PAYLOAD_LADDER)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        off = 7 * MB
        assert float(off) not in set(simulator.payload_ladder or ())
        assert simulator.simulate(program, off) == reference.simulate(program, off)

    def test_degenerate_ladders_clear_the_memo(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        simulator.set_payload_ladder([1 * MB, 1 * MB])  # < 2 distinct rungs
        assert simulator.payload_ladder is None
        simulator.set_payload_ladder(PAYLOAD_LADDER)
        simulator.set_payload_ladder(None)
        assert simulator.payload_ladder is None

    def test_clear_profiles_drops_pricers_and_memo(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        simulator.set_payload_ladder(PAYLOAD_LADDER)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        simulator.simulate(program, PAYLOAD_LADDER[1])
        simulator.clear_profiles()
        assert simulator._pricers == {} and simulator._ladder_memo == {}


class TestBatchPriceResultShape:
    def test_bottlenecks_match_scalar_links(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        profile = simulator.profile_for(program)
        pricer = BatchPricer(profile)
        batch = pricer.price(PAYLOAD_LADDER, NCCLAlgorithm.RING, simulator.cost_model)
        for column, payload in enumerate(PAYLOAD_LADDER):
            scalar = price_profile(
                profile, payload, NCCLAlgorithm.RING, simulator.cost_model
            )
            for s, class_index in enumerate(batch.bottlenecks(column)):
                step = profile.steps[s]
                if class_index < 0:
                    assert not step.classes
                    continue
                assert (
                    step.classes[class_index].link_name
                    == scalar.steps[s].bottleneck_link
                )

    def test_from_scalar_round_trip(self, a100_2node):
        simulator = ProgramSimulator(a100_2node)
        program = _sample_programs(a100_2node, (8, 4), (0,), k=1)[0]
        profile = simulator.profile_for(program)
        scalar = BatchPriceResult._from_scalar(
            profile, list(PAYLOAD_LADDER), NCCLAlgorithm.RING, CostModel(), None
        )
        assert scalar.num_payloads == len(PAYLOAD_LADDER)
        assert not scalar.vectorized
        vectorized = BatchPricer(profile).price(PAYLOAD_LADDER)
        if vectorized.vectorized:
            assert scalar.totals == vectorized.totals
            for column in range(scalar.num_payloads):
                assert scalar.result(column) == vectorized.result(column)
                assert scalar.bottlenecks(column) == vectorized.bottlenecks(column)
