"""Shared fixtures for the test suite.

Most tests work on two systems:

* the paper's Figure 2a rack (1 rack, 2 servers, 2 CPUs each, 4 GPUs each —
  16 devices), which is small enough for exhaustive checks, and
* the two-level GCP-style systems (A100/V100) used by the evaluation.
"""

from __future__ import annotations

import pytest

from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.synthesis.hierarchy import HierarchyVariant, build_synthesis_hierarchy
from repro.topology.gcp import a100_system, figure2a_system, v100_system


@pytest.fixture
def figure2a_hierarchy() -> SystemHierarchy:
    """The [(rack, 1), (server, 2), (cpu, 2), (gpu, 4)] hierarchy of Figure 2a."""
    return SystemHierarchy.from_pairs(
        [("rack", 1), ("server", 2), ("cpu", 2), ("gpu", 4)]
    )


@pytest.fixture
def figure2_axes() -> ParallelismAxes:
    """Data parallelism of size 4 and 4 parameter shards (Figure 2)."""
    return ParallelismAxes.of(4, 4, names=("data", "shard"))


@pytest.fixture
def figure2_matrices(figure2a_hierarchy, figure2_axes):
    """All parallelism matrices for the Figure 2 running example."""
    return enumerate_parallelism_matrices(figure2a_hierarchy, figure2_axes)


@pytest.fixture
def figure2d_matrix(figure2_matrices):
    """The matrix of Figure 2d: [[1 1 2 2], [1 2 1 2]]."""
    for matrix in figure2_matrices:
        if matrix.entries == ((1, 1, 2, 2), (1, 2, 1, 2)):
            return matrix
    raise AssertionError("Figure 2d matrix not enumerated")


@pytest.fixture
def shard_reduction() -> ReductionRequest:
    """Reduction along the parameter-sharding axis (axis 1)."""
    return ReductionRequest.over(1)


@pytest.fixture
def figure2d_placement(figure2d_matrix) -> DevicePlacement:
    return DevicePlacement(figure2d_matrix)


@pytest.fixture
def figure2d_synthesis_hierarchy(figure2d_matrix, shard_reduction):
    return build_synthesis_hierarchy(
        figure2d_matrix, shard_reduction, HierarchyVariant.REDUCTION_COLLAPSED
    )


@pytest.fixture
def a100_2node():
    return a100_system(num_nodes=2)


@pytest.fixture
def a100_4node():
    return a100_system(num_nodes=4)


@pytest.fixture
def v100_2node():
    return v100_system(num_nodes=2)


@pytest.fixture
def figure2a_machine():
    return figure2a_system()
