"""Tests for repro.cost.nccl and repro.cost.model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm, bytes_on_wire, collective_time, latency_steps
from repro.errors import CostModelError
from repro.semantics.collectives import ALL_COLLECTIVES, Collective

GB = 1e9


class TestBytesOnWire:
    def test_ring_allreduce_volume(self):
        assert bytes_on_wire(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 4, 1000) == pytest.approx(1500)

    def test_tree_allreduce_volume(self):
        assert bytes_on_wire(Collective.ALL_REDUCE, NCCLAlgorithm.TREE, 4, 1000) == pytest.approx(2000)

    def test_reduce_scatter_smaller_than_allreduce(self):
        rs = bytes_on_wire(Collective.REDUCE_SCATTER, NCCLAlgorithm.RING, 8, 1000)
        ar = bytes_on_wire(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 8, 1000)
        assert rs == pytest.approx(ar / 2)

    def test_all_gather_grows_with_group(self):
        small = bytes_on_wire(Collective.ALL_GATHER, NCCLAlgorithm.RING, 2, 1000)
        large = bytes_on_wire(Collective.ALL_GATHER, NCCLAlgorithm.RING, 8, 1000)
        assert large > small

    def test_group_of_one_rejected(self):
        with pytest.raises(CostModelError):
            bytes_on_wire(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 1, 1000)

    def test_negative_payload_rejected(self):
        with pytest.raises(CostModelError):
            bytes_on_wire(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 2, -1)

    @given(
        st.sampled_from(ALL_COLLECTIVES),
        st.sampled_from(list(NCCLAlgorithm)),
        st.integers(min_value=2, max_value=128),
        st.floats(min_value=0, max_value=1e12),
    )
    @settings(max_examples=80)
    def test_volume_non_negative_and_monotone_in_payload(self, op, algorithm, group, payload):
        v1 = bytes_on_wire(op, algorithm, group, payload)
        v2 = bytes_on_wire(op, algorithm, group, payload * 2)
        assert v1 >= 0
        assert v2 >= v1


class TestLatencySteps:
    def test_ring_grows_linearly(self):
        assert latency_steps(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 8) == 14
        assert latency_steps(Collective.REDUCE, NCCLAlgorithm.RING, 8) == 7

    def test_tree_grows_logarithmically(self):
        assert latency_steps(Collective.ALL_REDUCE, NCCLAlgorithm.TREE, 8) == 6
        assert latency_steps(Collective.BROADCAST, NCCLAlgorithm.TREE, 8) == 3

    def test_tree_cheaper_than_ring_for_large_groups(self):
        for op in ALL_COLLECTIVES:
            assert latency_steps(op, NCCLAlgorithm.TREE, 64) < latency_steps(
                op, NCCLAlgorithm.RING, 64
            )


class TestCollectiveTime:
    def test_bandwidth_term_dominates_large_payload(self):
        time = collective_time(
            Collective.ALL_REDUCE, NCCLAlgorithm.RING, 4, 8 * GB, 8 * GB, 1e-6
        )
        assert time == pytest.approx(2 * 3 / 4 * 1.0, rel=1e-3)

    def test_invalid_bandwidth_and_latency(self):
        with pytest.raises(CostModelError):
            collective_time(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 4, 1, 0, 1e-6)
        with pytest.raises(CostModelError):
            collective_time(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 4, 1, 1e9, -1)

    def test_faster_link_is_faster(self):
        slow = collective_time(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 4, 1e9, 8 * GB, 1e-6)
        fast = collective_time(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 4, 1e9, 270 * GB, 1e-6)
        assert fast < slow


class TestCostModel:
    def test_defaults_valid(self):
        model = CostModel()
        assert model.launch_overhead > 0

    def test_invalid_parameters(self):
        with pytest.raises(CostModelError):
            CostModel(launch_overhead=-1)
        with pytest.raises(CostModelError):
            CostModel(small_message_efficiency=0)
        with pytest.raises(CostModelError):
            CostModel(small_message_efficiency=1.5)
        with pytest.raises(CostModelError):
            CostModel(small_message_bytes=-1)

    def test_group_time_includes_launch_overhead(self):
        model = CostModel(launch_overhead=1.0)
        time = model.group_time(
            Collective.ALL_REDUCE, NCCLAlgorithm.RING, 2, 8 * GB, 8 * GB, 0.0
        )
        assert time > 1.0

    def test_small_messages_penalized(self):
        model = CostModel(small_message_bytes=1 << 20, small_message_efficiency=0.5)
        small = model.group_time(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 2, 1 << 10, 1e9, 0)
        # Same payload priced at full efficiency would be cheaper.
        full = model.group_time(Collective.ALL_REDUCE, NCCLAlgorithm.RING, 2, 1 << 30, 1e9, 0)
        per_byte_small = (small - model.launch_overhead) / (1 << 10)
        per_byte_full = (full - model.launch_overhead) / (1 << 30)
        assert per_byte_small > per_byte_full
