"""Tests for repro.utils.factorization."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HierarchyError
from repro.utils.factorization import (
    count_ordered_factorizations,
    divisors,
    multiplicities,
    ordered_factorizations,
    prime_factorization,
)


class TestPrimeFactorization:
    def test_one_has_no_factors(self):
        assert prime_factorization(1) == {}

    def test_prime(self):
        assert prime_factorization(13) == {13: 1}

    def test_composite(self):
        assert prime_factorization(360) == {2: 3, 3: 2, 5: 1}

    def test_power_of_two(self):
        assert prime_factorization(64) == {2: 6}

    def test_rejects_zero_and_negative(self):
        with pytest.raises(HierarchyError):
            prime_factorization(0)
        with pytest.raises(HierarchyError):
            prime_factorization(-4)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_product_of_factors_reconstructs_n(self, n):
        factors = prime_factorization(n)
        product = 1
        for p, e in factors.items():
            product *= p**e
        assert product == n


class TestDivisors:
    def test_one(self):
        assert divisors(1) == (1,)

    def test_twelve(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_prime(self):
        assert divisors(17) == (1, 17)

    def test_rejects_non_positive(self):
        with pytest.raises(HierarchyError):
            divisors(0)

    @given(st.integers(min_value=1, max_value=2_000))
    def test_every_divisor_divides(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds[0] == 1 and ds[-1] == n
        assert list(ds) == sorted(set(ds))


class TestOrderedFactorizations:
    def test_single_factor(self):
        assert list(ordered_factorizations(6, 1)) == [(6,)]

    def test_two_factors_of_four(self):
        assert sorted(ordered_factorizations(4, 2)) == [(1, 4), (2, 2), (4, 1)]

    def test_order_matters(self):
        results = set(ordered_factorizations(6, 2))
        assert (2, 3) in results and (3, 2) in results

    def test_zero_factors(self):
        assert list(ordered_factorizations(1, 0)) == [()]
        assert list(ordered_factorizations(2, 0)) == []

    def test_factorizing_one(self):
        assert list(ordered_factorizations(1, 3)) == [(1, 1, 1)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(HierarchyError):
            list(ordered_factorizations(0, 2))
        with pytest.raises(HierarchyError):
            list(ordered_factorizations(4, -1))

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_products_and_count_match_formula(self, n, k):
        factorizations = list(ordered_factorizations(n, k))
        assert all(math.prod(f) == n for f in factorizations)
        assert len(set(factorizations)) == len(factorizations)
        assert len(factorizations) == count_ordered_factorizations(n, k)


class TestCountOrderedFactorizations:
    def test_known_values(self):
        assert count_ordered_factorizations(4, 2) == 3
        assert count_ordered_factorizations(12, 2) == 6
        assert count_ordered_factorizations(1, 5) == 1

    def test_zero_slots(self):
        assert count_ordered_factorizations(1, 0) == 1
        assert count_ordered_factorizations(7, 0) == 0


class TestMultiplicities:
    def test_histogram(self):
        assert multiplicities([2, 2, 3, 1]) == {2: 2, 3: 1, 1: 1}

    def test_empty(self):
        assert multiplicities([]) == {}
