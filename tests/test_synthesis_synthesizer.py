"""Tests for the enumerative synthesizer (paper §3.5)."""

from __future__ import annotations

import pytest

from repro.dsl.pretty import program_mnemonic
from repro.errors import SynthesisError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.semantics.collectives import Collective
from repro.synthesis.hierarchy import HierarchyVariant, build_synthesis_hierarchy
from repro.synthesis.pruning import SearchStatistics, context_within_goal
from repro.semantics.goals import all_reduce_goal, initial_context
from repro.semantics.state import DeviceState, StateContext
from repro.synthesis.synthesizer import Synthesizer, synthesize_programs


def two_level_hierarchy(outer: int, inner: int):
    """A [outer, inner] single-axis reduction hierarchy (e.g. nodes x gpus)."""
    hierarchy = SystemHierarchy.from_cardinalities([outer, inner], ["node", "gpu"])
    axes = ParallelismAxes.of(outer * inner)
    matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
    return build_synthesis_hierarchy(matrix, ReductionRequest.over(0))


class TestSynthesisBasics:
    def test_programs_all_reach_the_goal(self):
        hierarchy = two_level_hierarchy(2, 2)
        result = synthesize_programs(hierarchy, max_program_size=3)
        init = hierarchy.initial_context()
        goal = hierarchy.goal()
        assert result.num_programs > 0
        for synthesized in result.programs:
            assert synthesized.program.achieves(init, goal, hierarchy.radices)

    def test_single_all_reduce_is_always_found(self):
        hierarchy = two_level_hierarchy(2, 4)
        result = synthesize_programs(hierarchy, max_program_size=2)
        mnemonics = {program_mnemonic(p.program) for p in result.programs}
        assert "AR" in mnemonics

    def test_blueconnect_and_hierarchical_patterns_found_at_size_3(self):
        hierarchy = two_level_hierarchy(2, 4)
        result = synthesize_programs(hierarchy, max_program_size=3)
        mnemonics = {program_mnemonic(p.program) for p in result.programs}
        # Figure 10(i) and 10(ii) of the paper.
        assert "RS-AR-AG" in mnemonics
        assert "R-AR-B" in mnemonics

    def test_no_duplicate_programs(self):
        hierarchy = two_level_hierarchy(2, 2)
        result = synthesize_programs(hierarchy, max_program_size=4)
        signatures = [p.program.signature() for p in result.programs]
        assert len(signatures) == len(set(signatures))

    def test_programs_sorted_by_size(self):
        hierarchy = two_level_hierarchy(2, 2)
        result = synthesize_programs(hierarchy, max_program_size=4)
        sizes = [p.size for p in result.programs]
        assert sizes == sorted(sizes)

    def test_larger_size_limit_is_superset(self):
        hierarchy = two_level_hierarchy(2, 2)
        small = synthesize_programs(hierarchy, max_program_size=2)
        large = synthesize_programs(hierarchy, max_program_size=3)
        small_sigs = {p.program.signature() for p in small.programs}
        large_sigs = {p.program.signature() for p in large.programs}
        assert small_sigs <= large_sigs
        assert len(large_sigs) > len(small_sigs)

    def test_statistics_are_populated(self):
        hierarchy = two_level_hierarchy(2, 2)
        result = synthesize_programs(hierarchy, max_program_size=3)
        stats = result.statistics
        assert stats.programs_found == result.num_programs
        assert stats.nodes_expanded > 0
        assert stats.steps_attempted >= stats.steps_invalid
        assert sum(stats.per_size_counts.values()) == result.num_programs
        assert "programs" in result.describe()

    def test_degenerate_single_device_reduction(self):
        # Reduction axis of size 1: nothing to do, no programs.
        hierarchy = SystemHierarchy.from_cardinalities([2, 2], ["node", "gpu"])
        axes = ParallelismAxes.of(1, 4)
        matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
        synthesis_hierarchy = build_synthesis_hierarchy(matrix, ReductionRequest.over(0))
        result = synthesize_programs(synthesis_hierarchy)
        assert result.num_programs == 0


class TestSynthesizerConfiguration:
    def test_restricted_collective_alphabet(self):
        hierarchy = two_level_hierarchy(2, 2)
        result = synthesize_programs(
            hierarchy, max_program_size=3, collectives=[Collective.ALL_REDUCE]
        )
        for program in result.programs:
            assert set(program.program.collectives_used()) == {Collective.ALL_REDUCE}

    def test_node_limit_stops_search(self):
        hierarchy = two_level_hierarchy(4, 4)
        result = synthesize_programs(hierarchy, max_program_size=5, node_limit=5)
        assert result.statistics.hit_node_limit

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SynthesisError):
            Synthesizer(max_program_size=0)
        with pytest.raises(SynthesisError):
            Synthesizer(node_limit=0)

    def test_instruction_alphabet_deduplicates(self):
        hierarchy = two_level_hierarchy(2, 2)
        dedup = Synthesizer(deduplicate_instructions=True).instruction_alphabet(hierarchy)
        raw = Synthesizer(deduplicate_instructions=False).instruction_alphabet(hierarchy)
        assert len(dedup) < len(raw)


class TestPaperScaleBehaviour:
    def test_synthesis_under_two_seconds_for_64_devices(self):
        """Result 2 of the paper: synthesis stays fast even for the largest hierarchy."""
        hierarchy = two_level_hierarchy(4, 16)
        result = synthesize_programs(hierarchy, max_program_size=5)
        assert result.num_programs > 40
        assert result.elapsed_seconds < 10.0  # generous CI margin; paper reports < 2s

    def test_three_level_collapsed_hierarchy(self):
        # [16 2 2] reduced over axes 0 and 2 on a [4 16] system.
        hierarchy = SystemHierarchy.from_cardinalities([4, 16], ["node", "gpu"])
        axes = ParallelismAxes.of(16, 2, 2)
        matrices = enumerate_parallelism_matrices(hierarchy, axes)
        assert matrices
        synthesis_hierarchy = build_synthesis_hierarchy(
            matrices[0], ReductionRequest.over(0, 2), HierarchyVariant.REDUCTION_COLLAPSED
        )
        result = synthesize_programs(synthesis_hierarchy, max_program_size=3)
        assert result.num_programs > 0


class TestPruning:
    def test_context_within_goal(self):
        goal = all_reduce_goal(2)
        assert context_within_goal(initial_context(2), goal)
        # A context where device 0 holds a contribution outside a restricted goal.
        restricted_goal = StateContext(
            (DeviceState.full(2, [0]), DeviceState.full(2, [1]))
        )
        overgrown = StateContext((DeviceState.full(2), DeviceState.full(2, [1])))
        assert not context_within_goal(overgrown, restricted_goal)

    def test_statistics_record_and_describe(self):
        stats = SearchStatistics()
        stats.record_program(2)
        stats.record_program(2)
        stats.record_program(3)
        assert stats.per_size_counts == {2: 2, 3: 1}
        assert "3 programs" in stats.describe()
