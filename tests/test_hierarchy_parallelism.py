"""Tests for repro.hierarchy.parallelism (ParallelismAxes, ReductionRequest)."""

from __future__ import annotations

import pytest

from repro.errors import HierarchyError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest


class TestParallelismAxes:
    def test_default_names(self):
        axes = ParallelismAxes.of(4, 4)
        assert axes.names == ("data", "model")

    def test_many_axes_get_generated_names(self):
        axes = ParallelismAxes.of(2, 2, 2, 2, 2)
        assert axes.names[-1] == "axis4"

    def test_explicit_names(self):
        axes = ParallelismAxes.of(4, 2, names=("dp", "tp"))
        assert axes.axis_index("tp") == 1

    def test_total_parallelism(self):
        assert ParallelismAxes.of(4, 4).total_parallelism == 16
        assert ParallelismAxes.of(64).total_parallelism == 64

    def test_iteration_and_indexing(self):
        axes = ParallelismAxes.of(8, 2, 4)
        assert list(axes) == [8, 2, 4]
        assert axes[2] == 4
        assert len(axes) == 3

    def test_describe(self):
        assert ParallelismAxes.of(4, 4).describe() == "[data=4, model=4]"

    def test_unknown_axis_name(self):
        with pytest.raises(HierarchyError):
            ParallelismAxes.of(4).axis_index("nope")

    def test_rejects_empty(self):
        with pytest.raises(HierarchyError):
            ParallelismAxes(())

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(HierarchyError):
            ParallelismAxes.of(4, 0)

    def test_rejects_duplicate_names(self):
        with pytest.raises(HierarchyError):
            ParallelismAxes.of(2, 2, names=("a", "a"))

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(HierarchyError):
            ParallelismAxes.of(2, 2, names=("a",))


class TestReductionRequest:
    def test_axes_sorted_and_deduped_check(self):
        request = ReductionRequest.over(2, 0)
        assert request.axes == (0, 2)

    def test_rejects_duplicates(self):
        with pytest.raises(HierarchyError):
            ReductionRequest.over(0, 0)

    def test_rejects_empty(self):
        with pytest.raises(HierarchyError):
            ReductionRequest(())

    def test_rejects_negative_axis(self):
        with pytest.raises(HierarchyError):
            ReductionRequest.over(-1)

    def test_rejects_negative_bytes(self):
        with pytest.raises(HierarchyError):
            ReductionRequest((0,), bytes_per_device=-5)

    def test_validate_against(self):
        axes = ParallelismAxes.of(4, 4)
        ReductionRequest.over(1).validate_against(axes)
        with pytest.raises(HierarchyError):
            ReductionRequest.over(2).validate_against(axes)

    def test_group_size(self):
        axes = ParallelismAxes.of(4, 2, 8)
        assert ReductionRequest.over(0).group_size(axes) == 4
        assert ReductionRequest.over(0, 2).group_size(axes) == 32

    def test_non_reduction_axes(self):
        axes = ParallelismAxes.of(4, 2, 8)
        assert ReductionRequest.over(0, 2).non_reduction_axes(axes) == (1,)
        assert ReductionRequest.over(1).non_reduction_axes(axes) == (0, 2)

    def test_describe(self):
        axes = ParallelismAxes.of(4, 4, names=("data", "shard"))
        assert "shard" in ReductionRequest.over(1).describe(axes)
        assert "1" in ReductionRequest.over(1).describe()
