"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_arguments(self):
        args = build_parser().parse_args(
            ["optimize", "--axes", "8", "4", "--reduce", "0", "--nodes", "2"]
        )
        assert args.command == "optimize"
        assert args.axes == [8, 4]
        assert args.reduce == [0]

    def test_table_commands_accept_payload_scale(self):
        args = build_parser().parse_args(["table4", "--payload-scale", "0.01", "--quick"])
        assert args.payload_scale == pytest.approx(0.01)
        assert args.quick

    def test_optimize_accepts_search_limits(self):
        args = build_parser().parse_args(
            ["optimize", "--axes", "8", "4", "--max-matrices", "2",
             "--max-program-size", "3", "--workers", "2"]
        )
        assert args.max_matrices == 2
        assert args.max_program_size == 3
        assert args.workers == 2

    def test_serve_batch_arguments(self):
        args = build_parser().parse_args(
            ["serve-batch", "--nodes", "2", "--query", "8,4:0:1048576",
             "--cache-dir", "/tmp/x", "--workers", "2"]
        )
        assert args.command == "serve-batch"
        assert args.query == ["8,4:0:1048576"]
        assert args.cache_dir == "/tmp/x"

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestMain:
    def test_optimize_command(self, capsys):
        exit_code = main(
            [
                "optimize",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "8", "4",
                "--reduce", "0",
                "--bytes", str(32 << 20),
                "--top", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best strategy" in captured.out
        assert "speedup" in captured.out

    def test_table3_command_small(self, capsys):
        exit_code = main(["table3", "--payload-scale", "0.001"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 3" in captured.out

    def test_figure11_like_flow_via_optimize_tree(self, capsys):
        exit_code = main(
            [
                "optimize",
                "--system", "v100",
                "--nodes", "2",
                "--axes", "16",
                "--reduce", "0",
                "--algorithm", "tree",
                "--bytes", str(8 << 20),
            ]
        )
        assert exit_code == 0
        assert "strategies" in capsys.readouterr().out

    def test_plan_command(self, capsys):
        exit_code = main(
            [
                "plan",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "2", "16",
                "--reduction", f"gradients:0:{32 << 20}",
                "--reduction", f"activations:1:{8 << 20}:4",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best combined placement" in captured.out
        assert "gradients" in captured.out and "activations" in captured.out

    def test_plan_rejects_malformed_reduction(self):
        with pytest.raises(SystemExit):
            main(["plan", "--axes", "2", "16", "--reduction", "oops"])

    def test_sweep_quick_with_save(self, capsys, tmp_path):
        from repro.analysis import load_results

        target = tmp_path / "sweep.json"
        exit_code = main(
            ["sweep", "--quick", "--payload-scale", "0.002", "--save", str(target)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Sweep summary" in captured.out
        assert "plan cache:" in captured.out
        assert target.exists()
        assert len(load_results(target)) > 0

    def test_sweep_preset_json_emits_jsonl(self, capsys):
        import json

        exit_code = main(["sweep", "--preset", "smoke", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == 3  # the smoke preset's stable scenario count
        for line in lines:
            record = json.loads(line)
            assert record["scenario"].startswith("smoke-")
            assert record["matrices"]
            assert record["provenance"]["fingerprint"]

    def test_sweep_preset_out_and_resume(self, capsys, tmp_path):
        import json

        out = tmp_path / "smoke.jsonl"
        assert main(["sweep", "--preset", "smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        cold_lines = out.read_text().splitlines()
        assert len(cold_lines) == 3

        # Drop the last record and resume: only the missing scenario reruns.
        out.write_text("\n".join(cold_lines[:2]) + "\n")
        assert main(
            ["sweep", "--preset", "smoke", "--out", str(out), "--resume"]
        ) == 0
        capsys.readouterr()
        resumed = [json.loads(line) for line in out.read_text().splitlines()]
        assert [r["scenario"] for r in resumed] == [
            json.loads(line)["scenario"] for line in cold_lines
        ]

    def test_sweep_resume_requires_out(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--preset", "smoke", "--resume"])

    def test_sweep_grid_file(self, capsys, tmp_path):
        import json

        from repro.evaluation.scenarios import ScenarioGrid

        grid = ScenarioGrid(
            name="clig",
            shapes=((8, 4),),
            payload_scales=(0.002,),
            max_program_size=3,
        )
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(grid.to_dict()))
        exit_code = main(["sweep", "--grid", str(grid_path), "--quick", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        records = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        assert [r["scenario"] for r in records] == ["clig-a100-2n-8x4-r0-s0p002-ring"]

    def test_sweep_cache_dir_makes_second_run_warm(self, capsys, tmp_path):
        import json

        argv = [
            "sweep", "--preset", "smoke", "--json",
            "--cache-dir", str(tmp_path / "plans"),
        ]
        assert main(argv) == 0
        first = [json.loads(line) for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert main(argv) == 0
        second = [json.loads(line) for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert all(r["provenance"]["cache_tier"] is None for r in first)
        assert all(r["provenance"]["cache_tier"] == "disk" for r in second)

    def test_sweep_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--preset", "warp-speed"])

    def test_sweep_explicit_payload_scale_overrides_preset_default(self, capsys):
        import json

        exit_code = main(
            ["sweep", "--preset", "smoke", "--json", "--payload-scale", "0.004"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        records = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        assert {r["config"]["payload_scale"] for r in records} == {0.004}
        # An explicit 1.0 must also win over the preset's 0.002 default.
        args = build_parser().parse_args(
            ["sweep", "--preset", "smoke", "--payload-scale", "1.0"]
        )
        assert args.payload_scale == 1.0
        assert build_parser().parse_args(["sweep", "--preset", "smoke"]).payload_scale is None

    def test_optimize_with_search_limits(self, capsys):
        exit_code = main(
            [
                "optimize",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "8", "4",
                "--reduce", "0",
                "--bytes", str(32 << 20),
                "--max-matrices", "1",
                "--max-program-size", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        # --max-matrices 1 keeps only the first placement.
        assert "of 3 strategies" in captured.out

    def test_serve_batch_cold_then_warm(self, capsys, tmp_path):
        argv = [
            "serve-batch",
            "--system", "a100",
            "--nodes", "2",
            "--max-program-size", "3",
            "--query", f"8,4:0:{32 << 20}",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[cold]" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[disk]" in second

    def test_serve_batch_queries_file(self, capsys, tmp_path):
        import json

        queries = tmp_path / "queries.json"
        queries.write_text(json.dumps(
            [{"axes": [8, 4], "reduce": [0], "bytes": 32 << 20},
             {"axes": [8, 4], "reduce": [0], "bytes": 32 << 20}]
        ))
        exit_code = main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--queries-file", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[cold]" in captured.out
        assert "[memory]" in captured.out  # in-batch duplicate deduplicated

    def test_serve_batch_requires_queries(self):
        with pytest.raises(SystemExit):
            main(["serve-batch", "--nodes", "2"])

    def test_serve_batch_rejects_malformed_query(self):
        with pytest.raises(SystemExit):
            main(["serve-batch", "--query", "oops"])

    def test_serve_batch_rejects_bad_query_values(self):
        with pytest.raises(SystemExit):
            main(["serve-batch", "--query", "8,4:0:123:nccl"])  # bad algorithm
        with pytest.raises(SystemExit):
            main(["serve-batch", "--query", "8x4:0:123"])  # bad axes token

    def test_serve_batch_reports_malformed_queries_file_entry(self, tmp_path, capsys):
        import json

        queries = tmp_path / "queries.json"
        queries.write_text(json.dumps([{"reduce": [0]}]))  # missing "axes"
        exit_code = main(["serve-batch", "--queries-file", str(queries)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "bad_query" in captured.err
        assert "entry 0" in captured.err
        assert "Traceback" not in captured.err

    def test_serve_batch_honours_max_matrices(self, capsys):
        exit_code = main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--max-matrices", "1", "--query", f"8,4:0:{32 << 20}"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "over 1 placements" in captured.out

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--query", f"8,4:0:{32 << 20}", "--cache-dir", str(tmp_path)]
        )
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        stats_out = capsys.readouterr().out
        assert "1 entries" in stats_out

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        clear_out = capsys.readouterr().out
        assert "removed 1" in clear_out
        assert list(tmp_path.glob("*.json")) == []

    def test_optimize_json_output(self, capsys):
        import json

        exit_code = main(
            [
                "optimize",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "8", "4",
                "--reduce", "0",
                "--bytes", str(32 << 20),
                "--max-program-size", "3",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        outcome = json.loads(captured.out)
        assert outcome["query"]["axes"]["sizes"] == [8, 4]
        assert outcome["query"]["bytes_per_device"] == 32 << 20
        assert outcome["cache_hit"] is False
        assert len(outcome["fingerprint"]) == 64
        assert outcome["num_strategies"] == len(outcome["plan"]["strategies"])
        # strategies arrive ranked, cheapest first
        times = [s["predicted_seconds"] for s in outcome["plan"]["strategies"]]
        assert times == sorted(times)

    def test_serve_batch_json_output_is_jsonl(self, capsys):
        import json

        exit_code = main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--query", f"8,4:0:{32 << 20}", "--query", f"8,4:0:{32 << 20}",
             "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True and second["cache_tier"] == "memory"
        assert first["fingerprint"] == second["fingerprint"]

    def test_serve_batch_accepts_planquery_dict_file(self, capsys, tmp_path):
        import json

        from repro import PlanQuery

        query = PlanQuery((8, 4), (0,), 32 << 20, max_program_size=3)
        queries = tmp_path / "queries.json"
        queries.write_text(json.dumps([query.to_dict()]))
        exit_code = main(
            ["serve-batch", "--nodes", "2", "--queries-file", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[cold]" in captured.out

    def test_serve_batch_accepts_jsonl_file(self, capsys, tmp_path):
        from repro import PlanQuery

        queries = tmp_path / "queries.jsonl"
        queries.write_text(
            PlanQuery((8, 4), (0,), 32 << 20, max_program_size=3).to_json()
            + "\n"
            + PlanQuery((8, 4), (1,), 8 << 20, max_program_size=3).to_json()
            + "\n"
        )
        exit_code = main(
            ["serve-batch", "--nodes", "2", "--queries-file", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.count("query ") == 2

    def test_serve_batch_accepts_single_query_object_file(self, capsys, tmp_path):
        import json

        queries = tmp_path / "query.json"
        queries.write_text(
            json.dumps({"axes": [8, 4], "reduce": [0], "bytes": 32 << 20})
        )
        exit_code = main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--queries-file", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.count("query ") == 1

    def test_serve_batch_reports_unparseable_queries_file(self, tmp_path, capsys):
        queries = tmp_path / "queries.json"
        queries.write_text("{ not json\nnot jsonl either")
        exit_code = main(
            ["serve-batch", "--nodes", "2", "--queries-file", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "bad_json" in captured.err
        assert "no valid queries" in captured.err

    def test_serve_batch_answers_valid_lines_despite_torn_ones(self, tmp_path, capsys):
        import json

        queries = tmp_path / "queries.jsonl"
        queries.write_text(
            json.dumps({"axes": [8, 4], "reduce": [0], "bytes": 1 << 20}) + "\n"
            + "{ torn line\n"
            + json.dumps({"axes": [4, 8], "reduce": [0], "bytes": 1 << 20}) + "\n"
        )
        exit_code = main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--max-matrices", "1", "--json", "--queries-file", str(queries)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1  # a torn line still fails the run at the end
        records = [json.loads(line) for line in captured.out.splitlines()]
        errors = [r for r in records if "error" in r]
        outcomes = [r for r in records if "query" in r]
        assert len(outcomes) == 2  # both valid lines were answered
        assert errors == [
            {
                "file": str(queries),
                "error": "bad_json",
                "line": 2,
                "detail": errors[0]["detail"],
            }
        ]

    def test_emit_command(self, capsys):
        exit_code = main(
            [
                "emit",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "32",
                "--reduce", "0",
                "--bytes", str(64 << 20),
                "--elements", "65536",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "HloModule" in captured.out
        assert "replica_groups" in captured.out


class TestCacheStatsJson:
    def test_cache_stats_json_reports_disk_counters(self, capsys, tmp_path):
        import json

        main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--query", f"8,4:0:{32 << 20}", "--cache-dir", str(tmp_path)]
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        # Snapshot schema: the same shape the telemetry exporters emit.
        counters = snapshot["counters"]
        assert counters["cache.disk_entries"] == 1
        assert counters["cache.disk_bytes"] > 0


class TestCorpusCli:
    OPTIMIZE = [
        "optimize", "--system", "a100", "--nodes", "2",
        "--axes", "8", "4", "--reduce", "0", "--max-program-size", "3",
    ]

    def test_optimize_corpus_round_trip_seeds_second_run(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        first = self.OPTIMIZE + ["--bytes", str(16 << 20), "--corpus", corpus_dir]
        assert main(first) == 0
        out = capsys.readouterr().out
        assert "seeded incumbent" not in out  # nothing to seed from yet
        second = self.OPTIMIZE + ["--bytes", str(32 << 20), "--corpus", corpus_dir]
        assert main(second) == 0
        out = capsys.readouterr().out
        assert "time to incumbent:" in out
        assert "(seeded incumbent)" in out

        assert main(["corpus", "stats", "--corpus", corpus_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "2 records" in stats_out

    def test_corpus_stats_json(self, capsys, tmp_path):
        import json

        corpus_dir = str(tmp_path / "corpus")
        run = self.OPTIMIZE + ["--bytes", str(16 << 20), "--corpus", corpus_dir]
        assert main(run) == 0
        capsys.readouterr()
        assert main(["corpus", "stats", "--corpus", corpus_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 1
        assert stats["distinct_fingerprints"] == 1
        assert stats["total_bytes"] > 0

    def test_corpus_ingest_and_compact(self, capsys, tmp_path):
        main(
            ["serve-batch", "--nodes", "2", "--max-program-size", "3",
             "--query", f"8,4:0:{16 << 20}", "--query", f"8,4:0:{32 << 20}",
             "--json"]
        )
        out_file = tmp_path / "outcomes.jsonl"
        out_file.write_text(capsys.readouterr().out)
        corpus_dir = str(tmp_path / "corpus")
        ingest = ["corpus", "ingest", "--corpus", corpus_dir, str(out_file)]
        assert main(ingest) == 0
        assert "ingested 2 outcome(s)" in capsys.readouterr().out
        # Re-ingesting the same file is a no-op: everything dedupes.
        assert main(ingest) == 0
        assert "ingested 0 outcome(s)" in capsys.readouterr().out

        compact = ["corpus", "compact", "--corpus", corpus_dir, "--max-records", "1"]
        assert main(compact) == 0
        out = capsys.readouterr().out
        assert "dropped 1 record(s)" in out
        assert "1 kept" in out
