"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_arguments(self):
        args = build_parser().parse_args(
            ["optimize", "--axes", "8", "4", "--reduce", "0", "--nodes", "2"]
        )
        assert args.command == "optimize"
        assert args.axes == [8, 4]
        assert args.reduce == [0]

    def test_table_commands_accept_payload_scale(self):
        args = build_parser().parse_args(["table4", "--payload-scale", "0.01", "--quick"])
        assert args.payload_scale == pytest.approx(0.01)
        assert args.quick


class TestMain:
    def test_optimize_command(self, capsys):
        exit_code = main(
            [
                "optimize",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "8", "4",
                "--reduce", "0",
                "--bytes", str(32 << 20),
                "--top", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best strategy" in captured.out
        assert "speedup" in captured.out

    def test_table3_command_small(self, capsys):
        exit_code = main(["table3", "--payload-scale", "0.001"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Table 3" in captured.out

    def test_figure11_like_flow_via_optimize_tree(self, capsys):
        exit_code = main(
            [
                "optimize",
                "--system", "v100",
                "--nodes", "2",
                "--axes", "16",
                "--reduce", "0",
                "--algorithm", "tree",
                "--bytes", str(8 << 20),
            ]
        )
        assert exit_code == 0
        assert "strategies" in capsys.readouterr().out

    def test_plan_command(self, capsys):
        exit_code = main(
            [
                "plan",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "2", "16",
                "--reduction", f"gradients:0:{32 << 20}",
                "--reduction", f"activations:1:{8 << 20}:4",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best combined placement" in captured.out
        assert "gradients" in captured.out and "activations" in captured.out

    def test_plan_rejects_malformed_reduction(self):
        with pytest.raises(SystemExit):
            main(["plan", "--axes", "2", "16", "--reduction", "oops"])

    def test_sweep_quick_with_save(self, capsys, tmp_path):
        from repro.analysis import load_results

        target = tmp_path / "sweep.json"
        exit_code = main(
            ["sweep", "--quick", "--payload-scale", "0.002", "--save", str(target)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Sweep summary" in captured.out
        assert target.exists()
        assert len(load_results(target)) > 0

    def test_emit_command(self, capsys):
        exit_code = main(
            [
                "emit",
                "--system", "a100",
                "--nodes", "2",
                "--axes", "32",
                "--reduce", "0",
                "--bytes", str(64 << 20),
                "--elements", "65536",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "HloModule" in captured.out
        assert "replica_groups" in captured.out
