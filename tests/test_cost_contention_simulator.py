"""Tests for repro.cost.contention and repro.cost.simulator."""

from __future__ import annotations

import pytest

from repro.baselines.allreduce import default_all_reduce
from repro.baselines.blueconnect import blueconnect
from repro.cost.contention import analyze_step_contention
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator, simulate_program
from repro.errors import CostModelError
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.hierarchy.levels import SystemHierarchy
from repro.semantics.collectives import Collective
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import LoweredProgram, LoweredStep
from repro.topology.gcp import a100_system, v100_system
from repro.topology.links import LinkKind, LinkSpec
from repro.topology.topology import MachineTopology

GIB = float(1 << 30)


def placement_for(system, axes_sizes, matrix_entries):
    axes = ParallelismAxes(tuple(axes_sizes))
    for matrix in enumerate_parallelism_matrices(system.hierarchy, axes):
        if matrix.entries == matrix_entries:
            return matrix, DevicePlacement(matrix)
    raise AssertionError("matrix not found")


class TestContention:
    def test_intra_node_groups_on_nvswitch_do_not_share(self, a100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 1), (2, 3), (4, 5)))
        contention = analyze_step_contention(step, a100_2node)
        assert all(g.sharing == 1.0 for g in contention.groups)
        assert all(not g.crosses_nic for g in contention.groups)

    def test_intra_node_groups_on_nvlink_ring_share(self, v100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 1), (2, 3), (4, 5), (6, 7)))
        contention = analyze_step_contention(step, v100_2node)
        assert all(g.sharing == 4.0 for g in contention.groups)

    def test_cross_node_groups_share_the_nic(self, a100_2node):
        groups = tuple((i, i + 16) for i in range(16))
        step = LoweredStep(Collective.ALL_REDUCE, groups)
        contention = analyze_step_contention(step, a100_2node)
        assert all(g.crosses_nic for g in contention.groups)
        assert all(g.sharing == pytest.approx(16.0) for g in contention.groups)
        assert contention.max_sharing == pytest.approx(16.0)

    def test_single_cross_node_group_has_no_sharing(self, a100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 16),))
        contention = analyze_step_contention(step, a100_2node)
        assert contention.groups[0].sharing == pytest.approx(1.0)
        assert contention.groups[0].effective_bandwidth == pytest.approx(8e9)

    def test_host_link_penalty_applied_on_v100(self, v100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 8),))
        contention = analyze_step_contention(step, v100_2node)
        # The NIC (8 GB/s) is slower than PCIe (32 GB/s) so no extra penalty.
        assert contention.groups[0].effective_bandwidth <= 8e9

    def slow_host_topology(self) -> MachineTopology:
        """A fast NIC fabric (32 GB/s) behind a slow host link (8 GB/s)."""
        return MachineTopology(
            name="fast-nic-slow-host",
            hierarchy=SystemHierarchy.from_pairs([("node", 2), ("gpu", 4)]),
            interconnects=(
                LinkSpec("fast-nic", LinkKind.NIC, bandwidth=32e9, latency=5e-6),
                LinkSpec("nvswitch", LinkKind.NVSWITCH, bandwidth=270e9, latency=2e-6),
            ),
            host_link=LinkSpec("slow-pcie", LinkKind.PCIE, bandwidth=8e9, latency=2e-6),
        )

    def test_slow_host_link_fold_pins_effective_bandwidth(self):
        """Regression pin for the host-link fold (historically a dead ``max``).

        With a host link slower than the NIC fabric, the sharing factor is
        *scaled* by the bandwidth ratio — never a ``max`` against it — so the
        effective bandwidth comes out as host.bandwidth / nic_sharing.  The
        old ``max(sharing, ratio * sharing)`` wrote the same fold obscurely
        (ratio > 1 makes the max a no-op); this pins the chosen semantics.
        """
        topology = self.slow_host_topology()
        # One cross-node group: nic sharing 1, capped at the host link rate.
        single = analyze_step_contention(
            LoweredStep(Collective.ALL_REDUCE, ((0, 4),)), topology
        )
        assert single.groups[0].sharing == pytest.approx(32e9 / 8e9)
        assert single.groups[0].effective_bandwidth == pytest.approx(8e9)
        # Four concurrent cross-node groups: NIC shared 4 ways *and* capped,
        # i.e. host.bandwidth / 4 — the penalties compose multiplicatively.
        quad = analyze_step_contention(
            LoweredStep(
                Collective.ALL_REDUCE, tuple((i, i + 4) for i in range(4))
            ),
            topology,
        )
        for group in quad.groups:
            assert group.sharing == pytest.approx(4.0 * 32e9 / 8e9)
            assert group.effective_bandwidth == pytest.approx(8e9 / 4.0)

    def test_describe(self, a100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 16),))
        assert "groups" in analyze_step_contention(step, a100_2node).describe()

    def test_devices_out_of_range_rejected(self, a100_2node):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 200),))
        with pytest.raises(CostModelError):
            analyze_step_contention(step, a100_2node)


class TestSimulator:
    def test_intra_node_much_faster_than_cross_node(self, a100_4node):
        system = a100_4node
        bytes_per_device = int(0.5 * GIB)
        # [[1 4] [4 4]]: the data axis fits inside a node.
        _, local_placement = placement_for(system, (4, 16), ((1, 4), (4, 4)))
        # [[4 1] [1 16]]: the data axis spans the four nodes.
        _, cross_placement = placement_for(system, (4, 16), ((4, 1), (1, 16)))
        request = ReductionRequest.over(0)
        local = simulate_program(
            default_all_reduce(local_placement, request), system, bytes_per_device
        )
        cross = simulate_program(
            default_all_reduce(cross_placement, request), system, bytes_per_device
        )
        # Paper Result 1: orders of magnitude difference (448x there; >50x here).
        assert cross.total_seconds > 50 * local.total_seconds

    def test_blueconnect_beats_allreduce_cross_node(self, a100_4node):
        system = a100_4node
        bytes_per_device = int(1 * GIB)
        matrix, placement = placement_for(system, (4, 16), ((2, 2), (2, 8)))
        request = ReductionRequest.over(0)
        hierarchy = build_synthesis_hierarchy(matrix, request)
        baseline = simulate_program(
            default_all_reduce(placement, request), system, bytes_per_device
        )
        hierarchical = simulate_program(
            blueconnect(hierarchy, placement), system, bytes_per_device
        )
        assert hierarchical.total_seconds < baseline.total_seconds

    def test_ring_vs_tree_differ(self, a100_2node):
        _, placement = placement_for(a100_2node, (2, 16), ((2, 1), (1, 16)))
        request = ReductionRequest.over(0)
        program = default_all_reduce(placement, request)
        ring = simulate_program(program, a100_2node, GIB, NCCLAlgorithm.RING)
        tree = simulate_program(program, a100_2node, GIB, NCCLAlgorithm.TREE)
        assert ring.total_seconds != tree.total_seconds

    def test_time_scales_roughly_linearly_with_payload(self, a100_2node):
        _, placement = placement_for(a100_2node, (2, 16), ((2, 1), (1, 16)))
        program = default_all_reduce(placement, ReductionRequest.over(0))
        small = simulate_program(program, a100_2node, GIB).total_seconds
        large = simulate_program(program, a100_2node, 4 * GIB).total_seconds
        assert large == pytest.approx(4 * small, rel=0.05)

    def test_step_breakdown_recorded(self, a100_2node):
        matrix, placement = placement_for(a100_2node, (32,), ((2, 16),))
        hierarchy = build_synthesis_hierarchy(matrix, ReductionRequest.over(0))
        result = simulate_program(
            blueconnect(hierarchy, placement), a100_2node, GIB
        )
        assert result.num_steps == 3
        assert [s.collective for s in result.steps] == [
            Collective.REDUCE_SCATTER,
            Collective.ALL_REDUCE,
            Collective.ALL_GATHER,
        ]
        # The cross-node AllReduce step moves a 1/16 shard of the payload.
        assert result.steps[1].payload_bytes == pytest.approx(GIB / 16)
        assert result.total_seconds == pytest.approx(sum(s.seconds for s in result.steps))
        assert "s" in result.describe()

    def test_device_count_mismatch_rejected(self, a100_2node, a100_4node):
        _, placement = placement_for(a100_2node, (2, 16), ((2, 1), (1, 16)))
        program = default_all_reduce(placement, ReductionRequest.over(0))
        simulator = ProgramSimulator(a100_4node)
        with pytest.raises(CostModelError):
            simulator.simulate(program, GIB)

    def test_negative_payload_rejected(self, a100_2node):
        _, placement = placement_for(a100_2node, (2, 16), ((2, 1), (1, 16)))
        program = default_all_reduce(placement, ReductionRequest.over(0))
        with pytest.raises(CostModelError):
            ProgramSimulator(a100_2node).simulate(program, -1)

    def test_empty_program_costs_nothing(self, a100_2node):
        program = LoweredProgram(num_devices=32, steps=(), label="noop")
        assert simulate_program(program, a100_2node, GIB).total_seconds == 0.0

    def test_v100_cross_node_slower_than_a100_intra(self):
        v100 = v100_system(2)
        a100 = a100_system(2)
        _, v_placement = placement_for(v100, (2, 8), ((2, 1), (1, 8)))
        _, a_placement = placement_for(a100, (16, 2), ((1, 16), (2, 1)))
        v_cross = simulate_program(
            default_all_reduce(v_placement, ReductionRequest.over(0)), v100, GIB
        )
        a_local = simulate_program(
            default_all_reduce(a_placement, ReductionRequest.over(0)), a100, GIB
        )
        assert v_cross.total_seconds > a_local.total_seconds
