"""End-to-end integration tests tied to the paper's headline claims.

Each test exercises the whole stack (placement synthesis → program synthesis
→ lowering → simulation/measurement) and checks the *shape* of a result the
paper reports.  Payloads are scaled down so the module runs in seconds; the
claims checked here are relative (orderings, speedups), which are unaffected
by linear payload scaling in the bandwidth-dominated regime.
"""

from __future__ import annotations

import pytest

from repro.api import P2
from repro.baselines.allreduce import default_all_reduce
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import simulate_program
from repro.evaluation.config import ExperimentConfig, SystemKind
from repro.evaluation.runner import SweepRunner
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.topology.gcp import a100_system, v100_system

GIB = float(1 << 30)


class TestResult1PlacementImpact:
    """Result 1: AllReduce performance differs enormously across parallelism matrices."""

    def test_a100_4node_b_row(self):
        system = a100_system(num_nodes=4)
        axes = ParallelismAxes.of(4, 16)
        request = ReductionRequest.over(0)
        times = {}
        for matrix in enumerate_parallelism_matrices(system.hierarchy, axes):
            placement = DevicePlacement(matrix)
            program = default_all_reduce(placement, request)
            times[matrix.describe()] = simulate_program(
                program, system, 2 * GIB, NCCLAlgorithm.TREE
            ).total_seconds
        # B1-like placement (reduction inside a node) vs B3-like (across nodes):
        # the paper reports a 448x gap; we only require "orders of magnitude".
        assert times["[[4 1] [1 16]]"] / times["[[1 4] [4 4]]"] > 50

    def test_placement_good_for_one_axis_is_bad_for_the_other(self):
        system = a100_system(num_nodes=4)
        axes = ParallelismAxes.of(4, 16)
        matrices = {
            m.describe(): DevicePlacement(m)
            for m in enumerate_parallelism_matrices(system.hierarchy, axes)
        }
        b1, b3 = matrices["[[1 4] [4 4]]"], matrices["[[4 1] [1 16]]"]

        def time_for(placement, axis):
            program = default_all_reduce(placement, ReductionRequest.over(axis))
            return simulate_program(program, system, 2 * GIB).total_seconds

        # B1 wins for axis 0, B3 wins for axis 1 (the paper's trade-off).
        assert time_for(b1, 0) < time_for(b3, 0)
        assert time_for(b3, 1) < time_for(b1, 1)


class TestResult3And5SynthesizedPrograms:
    """Results 3 & 5: intra-node reductions keep AllReduce; cross-node reductions
    benefit from synthesized hierarchical strategies."""

    @pytest.fixture(scope="class")
    def sweep(self):
        config = ExperimentConfig(
            name="claims-a100-2n-4x8",
            system=SystemKind.A100,
            num_nodes=2,
            axes=(4, 8),
            reduction_axes=(0,),
            payload_scale=0.01,
            max_program_size=3,
        )
        return SweepRunner(measurement_runs=1).run(config)

    def test_cross_node_matrix_gets_speedup(self, sweep):
        cross = next(m for m in sweep.matrices if m.matrix_description == "[[2 2] [1 8]]")
        assert cross.speedup_over_all_reduce() > 1.1

    def test_intra_node_matrix_keeps_allreduce_optimal(self, sweep):
        local = next(m for m in sweep.matrices if m.matrix_description == "[[1 4] [2 4]]")
        assert local.speedup_over_all_reduce() < 1.25

    def test_speedups_within_paper_range(self, sweep):
        for matrix in sweep.matrices:
            speedup = matrix.speedup_over_all_reduce()
            assert 0.99 <= speedup <= 3.0  # paper: 1.0x .. 2.04x


class TestEndToEndPlanQuality:
    def test_optimizer_places_reduction_locally_when_possible(self):
        p2 = P2(v100_system(num_nodes=2), max_program_size=3)
        plan = p2.optimize(
            ParallelismAxes.of(8, 2),
            ReductionRequest.over(0),
            bytes_per_device=32 << 20,
        )
        # Reduction of size 8 fits into one 8-GPU node; the best strategy is a
        # local AllReduce on the placement that keeps the axis inside a node.
        assert plan.best.matrix.describe() == "[[1 8] [2 1]]"
        assert plan.best.predicted_seconds < plan.default_all_reduce().predicted_seconds * 1.01

    def test_every_top_strategy_verifies_numerically(self):
        p2 = P2(a100_system(num_nodes=2), max_program_size=3)
        request = ReductionRequest.over(0)
        plan = p2.optimize(ParallelismAxes.of(4, 8), request, bytes_per_device=16 << 20)
        for strategy in plan.top(5):
            if strategy.program.num_steps == 0:
                continue
            assert p2.verify(strategy, request).ok
