"""Tests for repro.dsl.grouping — reproduces Table 2 of the paper."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.forms import InsideGroup, Master, Parallel
from repro.dsl.grouping import derive_groups, enumerate_instructions, slice_groups
from repro.errors import DSLError
from repro.semantics.collectives import ALL_COLLECTIVES

# The Figure 2a system hierarchy: rack=1, server=2, cpu=2, gpu=4.
# Devices 0..15 map onto the paper's names A0..A3, B0..B3, C0..C3, D0..D3.
RADICES = (1, 2, 2, 4)
A = list(range(0, 4))
B = list(range(4, 8))
C = list(range(8, 12))
D = list(range(12, 16))


def groups_as_sets(groups):
    return {frozenset(g) for g in groups}


class TestSliceGroups:
    def test_slice_cpu(self):
        groups = slice_groups(RADICES, 2)
        assert groups_as_sets(groups) == {frozenset(A), frozenset(B), frozenset(C), frozenset(D)}

    def test_slice_server(self):
        groups = slice_groups(RADICES, 1)
        assert groups_as_sets(groups) == {frozenset(A + B), frozenset(C + D)}

    def test_slice_rack_is_everything(self):
        groups = slice_groups(RADICES, 0)
        assert groups_as_sets(groups) == {frozenset(range(16))}

    def test_slice_leaf_gives_singletons(self):
        groups = slice_groups(RADICES, 3)
        assert all(len(g) == 1 for g in groups)

    def test_invalid_slice_level(self):
        with pytest.raises(DSLError):
            slice_groups(RADICES, 4)
        with pytest.raises(DSLError):
            slice_groups((), 0)


class TestTable2Patterns:
    """Every row of the paper's Table 2."""

    def test_cpu_inside_group(self):
        groups = derive_groups(RADICES, 2, InsideGroup())
        assert groups_as_sets(groups) == {frozenset(A), frozenset(B), frozenset(C), frozenset(D)}

    def test_cpu_parallel_server(self):
        groups = derive_groups(RADICES, 2, Parallel(1))
        expected = {
            frozenset({A[i], B[i]}) for i in range(4)
        } | {frozenset({C[i], D[i]}) for i in range(4)}
        assert groups_as_sets(groups) == expected

    def test_cpu_parallel_rack(self):
        groups = derive_groups(RADICES, 2, Parallel(0))
        expected = {frozenset({A[i], B[i], C[i], D[i]}) for i in range(4)}
        assert groups_as_sets(groups) == expected

    def test_cpu_master_rack(self):
        groups = derive_groups(RADICES, 2, Master(0))
        assert groups_as_sets(groups) == {frozenset({A[0], B[0], C[0], D[0]})}

    def test_server_inside_group(self):
        groups = derive_groups(RADICES, 1, InsideGroup())
        assert groups_as_sets(groups) == {frozenset(A + B), frozenset(C + D)}

    def test_server_parallel_rack(self):
        groups = derive_groups(RADICES, 1, Parallel(0))
        expected = {frozenset({A[i], C[i]}) for i in range(4)} | {
            frozenset({B[i], D[i]}) for i in range(4)
        }
        assert groups_as_sets(groups) == expected

    def test_rack_inside_group(self):
        groups = derive_groups(RADICES, 0, InsideGroup())
        assert groups_as_sets(groups) == {frozenset(range(16))}


class TestGroupProperties:
    def test_group_members_sorted_root_first(self):
        for groups in (derive_groups(RADICES, 2, Parallel(0)), slice_groups(RADICES, 2)):
            for group in groups:
                assert list(group) == sorted(group)

    def test_parallel_requires_strict_ancestor(self):
        with pytest.raises(DSLError):
            derive_groups(RADICES, 1, Parallel(1))
        with pytest.raises(DSLError):
            derive_groups(RADICES, 1, Parallel(2))

    def test_singleton_groups_filtered(self):
        # Slicing at the leaf gives singletons only; they are all dropped.
        assert derive_groups(RADICES, 3, InsideGroup()) == ()

    def test_groups_are_disjoint(self):
        for form in (InsideGroup(), Parallel(0), Parallel(1), Master(0)):
            if form.ancestor is not None and form.ancestor >= 2:
                continue
            groups = derive_groups(RADICES, 2, form)
            flat = [d for g in groups for d in g]
            assert len(flat) == len(set(flat))

    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=4),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_groups_cover_devices_uniformly(self, radices, data):
        """Parallel/InsideGroup groups partition a subset of devices into equal sizes."""
        radices = tuple(radices)
        slice_level = data.draw(st.integers(min_value=0, max_value=len(radices) - 1))
        forms = [InsideGroup()] + [Parallel(a) for a in range(slice_level)]
        form = data.draw(st.sampled_from(forms))
        groups = derive_groups(radices, slice_level, form)
        if not groups:
            return
        sizes = {len(g) for g in groups}
        assert len(sizes) == 1
        flat = [d for g in groups for d in g]
        assert len(flat) == len(set(flat))


class TestEnumerateInstructions:
    def test_all_instructions_have_groups(self):
        for _, _, _, groups in enumerate_instructions(RADICES):
            assert groups and all(len(g) >= 2 for g in groups)

    def test_deduplication_reduces_count(self):
        deduped = list(enumerate_instructions((1, 2, 1, 2), deduplicate=True))
        raw = list(enumerate_instructions((1, 2, 1, 2), deduplicate=False))
        assert len(deduped) < len(raw)

    def test_collective_alphabet_respected(self):
        only_ar = list(enumerate_instructions(RADICES, collectives=[ALL_COLLECTIVES[0]]))
        assert all(op == ALL_COLLECTIVES[0] for _, _, op, _ in only_ar)

    def test_each_yield_consistent_with_derive_groups(self):
        for slice_level, form, _, groups in enumerate_instructions(RADICES):
            assert derive_groups(RADICES, slice_level, form) == groups

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(DSLError):
            list(enumerate_instructions(()))
