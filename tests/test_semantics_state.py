"""Tests for repro.semantics.state (DeviceState, StateContext)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemanticsError
from repro.semantics.state import DeviceState, StateContext


def random_state(draw, num_chunks):
    rows = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << num_chunks) - 1),
            min_size=num_chunks,
            max_size=num_chunks,
        )
    )
    return DeviceState(num_chunks, tuple(rows))


class TestConstruction:
    def test_initial_state_has_own_column(self):
        state = DeviceState.initial(4, 2)
        assert state.rows == (0b0100,) * 4
        assert state.non_empty_rows == (0, 1, 2, 3)

    def test_empty_state(self):
        state = DeviceState.empty(3)
        assert state.is_empty
        assert state.non_empty_rows == ()

    def test_full_state_default_everyone(self):
        state = DeviceState.full(3)
        assert state.rows == (0b111,) * 3

    def test_full_state_with_contributors(self):
        state = DeviceState.full(4, [0, 2])
        assert state.rows == (0b0101,) * 4

    def test_from_matrix_roundtrip(self):
        matrix = [[1, 0, 0], [0, 1, 1], [0, 0, 0]]
        state = DeviceState.from_matrix(matrix)
        assert state.rows == (0b001, 0b110, 0b000)
        assert np.array_equal(state.to_matrix(), np.array(matrix, dtype=np.uint8))

    def test_from_matrix_rejects_non_square(self):
        with pytest.raises(SemanticsError):
            DeviceState.from_matrix([[1, 0], [0, 1], [0, 0]])

    def test_from_matrix_rejects_non_binary(self):
        with pytest.raises(SemanticsError):
            DeviceState.from_matrix([[2, 0], [0, 1]])

    def test_rejects_out_of_range_device(self):
        with pytest.raises(SemanticsError):
            DeviceState.initial(4, 4)

    def test_rejects_wrong_row_count(self):
        with pytest.raises(SemanticsError):
            DeviceState(3, (0, 0))

    def test_rejects_mask_outside_range(self):
        with pytest.raises(SemanticsError):
            DeviceState(2, (0b100, 0))


class TestQueries:
    def test_contributors(self):
        state = DeviceState(3, (0b101, 0, 0b010))
        assert state.contributors(0) == (0, 2)
        assert state.contributors(1) == ()
        assert state.contributors(2) == (1,)

    def test_num_non_empty_rows_and_fraction(self):
        state = DeviceState(4, (0b1, 0, 0b1, 0))
        assert state.num_non_empty_rows == 2
        assert state.chunk_fraction() == pytest.approx(0.5)

    def test_describe_mentions_every_chunk(self):
        text = DeviceState.initial(2, 0).describe()
        assert "chunk 0" in text and "chunk 1" in text


class TestAlgebra:
    def test_union(self):
        a = DeviceState(2, (0b01, 0b01))
        b = DeviceState(2, (0b10, 0b10))
        assert a.union(b).rows == (0b11, 0b11)

    def test_union_size_mismatch(self):
        with pytest.raises(SemanticsError):
            DeviceState.empty(2).union(DeviceState.empty(3))

    def test_subset_relations(self):
        small = DeviceState(2, (0b01, 0))
        big = DeviceState(2, (0b11, 0b01))
        assert small.is_subset_of(big)
        assert small.is_strict_subset_of(big)
        assert not big.is_subset_of(small)
        assert big.is_subset_of(big)
        assert not big.is_strict_subset_of(big)

    def test_rows_disjoint_with(self):
        a = DeviceState(2, (0b01, 0b01))
        b = DeviceState(2, (0b10, 0b10))
        c = DeviceState(2, (0b01, 0b10))
        assert a.rows_disjoint_with(b)
        assert not a.rows_disjoint_with(c)

    def test_row_sets_disjoint_with(self):
        a = DeviceState(3, (0b1, 0, 0))
        b = DeviceState(3, (0, 0b1, 0))
        c = DeviceState(3, (0b10, 0, 0))
        assert a.row_sets_disjoint_with(b)
        assert not a.row_sets_disjoint_with(c)

    @given(st.data())
    @settings(max_examples=50)
    def test_union_is_commutative_and_monotone(self, data):
        num_chunks = data.draw(st.integers(min_value=1, max_value=5))
        a = random_state(data.draw, num_chunks)
        b = random_state(data.draw, num_chunks)
        assert a.union(b) == b.union(a)
        assert a.is_subset_of(a.union(b))
        assert b.is_subset_of(a.union(b))


class TestStateContext:
    def test_from_mapping_requires_contiguous_devices(self):
        states = {0: DeviceState.initial(2, 0), 1: DeviceState.initial(2, 1)}
        context = StateContext.from_mapping(states)
        assert context.num_devices == 2
        with pytest.raises(SemanticsError):
            StateContext.from_mapping({0: DeviceState.initial(2, 0), 2: DeviceState.initial(2, 1)})

    def test_replace_returns_new_context(self):
        context = StateContext((DeviceState.initial(2, 0), DeviceState.initial(2, 1)))
        new = context.replace({1: DeviceState.full(2)})
        assert new is not context
        assert context[1] == DeviceState.initial(2, 1)
        assert new[1] == DeviceState.full(2)

    def test_replace_validates_device_and_size(self):
        context = StateContext((DeviceState.initial(2, 0), DeviceState.initial(2, 1)))
        with pytest.raises(SemanticsError):
            context.replace({5: DeviceState.full(2)})
        with pytest.raises(SemanticsError):
            context.replace({0: DeviceState.full(3)})

    def test_mixed_sizes_rejected(self):
        with pytest.raises(SemanticsError):
            StateContext((DeviceState.empty(2), DeviceState.empty(3)))

    def test_empty_context_rejected(self):
        with pytest.raises(SemanticsError):
            StateContext(())

    def test_iteration_and_describe(self):
        context = StateContext((DeviceState.initial(2, 0), DeviceState.initial(2, 1)))
        assert len(list(context)) == 2
        assert "d0" in context.describe() and "d1" in context.describe()
