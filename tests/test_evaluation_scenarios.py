"""Tests for scenario grids, presets and filters (the sweep engine's front end)."""

from __future__ import annotations

import json

import pytest

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.config import (
    ExperimentConfig,
    SystemKind,
    _axis_shapes_for,
    table3_configs,
    table4_configs,
)
from repro.evaluation.scenarios import (
    PRESETS,
    Scenario,
    ScenarioGrid,
    preset,
    preset_names,
    scenarios_from_configs,
)
from repro.query import PlanQuery


class TestScenario:
    def test_query_carries_everything(self):
        config = ExperimentConfig(
            name="scn",
            system=SystemKind.A100,
            num_nodes=2,
            axes=(8, 4),
            reduction_axes=(0,),
            algorithm=NCCLAlgorithm.TREE,
            payload_scale=0.01,
            max_program_size=3,
        )
        scenario = Scenario(config=config, max_matrices=2)
        query = scenario.query()
        assert isinstance(query, PlanQuery)
        assert tuple(query.axes.sizes) == (8, 4)
        assert tuple(query.request.axes) == (0,)
        assert query.bytes_per_device == config.bytes_per_device
        assert query.algorithm == NCCLAlgorithm.TREE
        assert query.max_matrices == 2
        assert query.max_program_size == 3
        assert scenario.name == "scn"
        assert scenario.topology_key() == "a100-2n"


class TestScenarioGridExpansion:
    def test_explicit_shapes_skip_invalid_combinations(self):
        grid = ScenarioGrid(
            name="t",
            shapes=((8, 4), (32,), (5, 5)),  # (5, 5) != 32 devices: dropped
            workloads=((0,), (1,)),  # axis 1 invalid for the flat shape
            payload_scales=(0.002,),
        )
        names = [s.name for s in grid.expand()]
        assert names == [
            "t-a100-2n-8x4-r0-s0p002-ring",
            "t-a100-2n-8x4-r1-s0p002-ring",
            "t-a100-2n-32-r0-s0p002-ring",
        ]
        assert grid.count() == 3

    def test_auto_shapes_follow_the_appendix_protocol(self):
        grid = ScenarioGrid(shapes="auto", algorithms=(NCCLAlgorithm.RING, NCCLAlgorithm.TREE))
        expected = len(_axis_shapes_for(32)) * 2  # one topology, two algorithms
        assert grid.count() == expected

    def test_flat_shapes_are_single_axis(self):
        grid = ScenarioGrid(shapes="flat", node_counts=(1, 2))
        scenarios = grid.expand()
        assert [s.config.axes for s in scenarios] == [(16,), (32,)]

    def test_axis_product_order_is_deterministic(self):
        grid = ScenarioGrid(
            systems=(SystemKind.A100, SystemKind.V100),
            node_counts=(2,),
            shapes="flat",
            payload_scales=(0.001, 0.01),
            algorithms=(NCCLAlgorithm.RING, NCCLAlgorithm.TREE),
        )
        names = [s.name for s in grid.expand()]
        assert names == sorted(set(names), key=names.index)  # unique, stable
        # systems vary slowest, algorithms fastest
        assert names[0].startswith("grid-a100") and names[-1].startswith("grid-v100")
        assert names[0].endswith("ring") and names[1].endswith("tree")

    def test_queries_stream_matches_expansion(self):
        grid = ScenarioGrid(shapes=((8, 4),), payload_scales=(0.002,))
        pairs = list(grid.queries())
        assert len(pairs) == grid.count()
        for scenario, query in pairs:
            assert query == scenario.query()

    def test_scaled_replaces_every_payload_scale(self):
        grid = ScenarioGrid(payload_scales=(0.1, 1.0)).scaled(0.005)
        assert grid.payload_scales == (0.005,)

    def test_rejects_bad_shape_mode_and_empty_axes(self):
        with pytest.raises(EvaluationError):
            ScenarioGrid(shapes="everything")
        with pytest.raises(EvaluationError):
            ScenarioGrid(systems=())
        with pytest.raises(EvaluationError):
            ScenarioGrid(payload_scales=())


class TestScenarioGridFilters:
    def test_include_keeps_only_matches(self):
        grid = ScenarioGrid(
            name="t",
            shapes=((8, 4), (32,)),
            workloads=((0,), (1,)),
            include=("t-*-8x4-*",),
        )
        names = [s.name for s in grid.expand()]
        assert names and all("8x4" in name for name in names)

    def test_exclude_drops_matches(self):
        base = ScenarioGrid(name="t", shapes=((8, 4), (32,)), workloads=((0,), (1,)))
        filtered = ScenarioGrid(
            name="t",
            shapes=((8, 4), (32,)),
            workloads=((0,), (1,)),
            exclude=("*-r1-*",),
        )
        assert filtered.count() == base.count() - 1
        assert all("-r1-" not in s.name for s in filtered.expand())

    def test_exclude_wins_over_include(self):
        grid = ScenarioGrid(
            name="t",
            shapes=((8, 4),),
            workloads=((0,), (1,)),
            include=("t-*",),
            exclude=("t-*",),
        )
        assert grid.count() == 0


class TestScenarioGridSerialization:
    def test_dict_roundtrip(self):
        grid = ScenarioGrid(
            name="rt",
            systems=(SystemKind.V100,),
            node_counts=(2, 4),
            shapes=((8, 4),),
            workloads=((0,), (0, 1)),
            payload_scales=(0.01,),
            algorithms=(NCCLAlgorithm.TREE,),
            max_program_size=4,
            max_matrices=3,
            include=("rt-*",),
            exclude=("*-tree",),
        )
        assert ScenarioGrid.from_dict(grid.to_dict()) == grid

    def test_auto_shapes_roundtrip(self):
        grid = ScenarioGrid(shapes="auto")
        assert ScenarioGrid.from_dict(grid.to_dict()).shapes == "auto"

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "grid.json"
        grid = ScenarioGrid(name="f", shapes=((8, 4),))
        path.write_text(json.dumps(grid.to_dict()))
        assert ScenarioGrid.from_json_file(path) == grid

    def test_from_dict_accepts_a_bare_filter_string(self):
        grid = ScenarioGrid.from_dict(
            {"shapes": [[8, 4], [32]], "workloads": [[0]], "include": "*-8x4-*"}
        )
        assert grid.include == ("*-8x4-*",)
        assert all("8x4" in s.name for s in grid.expand())

    def test_bad_json_and_bad_shapes_raise(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ nope")
        with pytest.raises(EvaluationError):
            ScenarioGrid.from_json_file(path)
        with pytest.raises(EvaluationError):
            ScenarioGrid.from_dict({"systems": ["z9000"]})
        with pytest.raises(EvaluationError):
            ScenarioGrid.from_dict([1, 2, 3])


class TestPresets:
    def test_preset_registry_is_stable(self):
        assert preset_names() == [
            "appendix",
            "gcp-scaleout",
            "paper-table2",
            "payload-ladder",
            "smoke",
        ]

    def test_smoke_preset_names_are_stable(self):
        # The CI smoke job and JSONL checkpoints key on these exact names.
        assert [s.name for s in preset("smoke")] == [
            "smoke-a100-2n-8x4-r0-s0p002-ring",
            "smoke-a100-2n-8x4-r1-s0p002-ring",
            "smoke-a100-2n-32-r0-s0p002-ring",
        ]
        assert not PRESETS["smoke"].measure_programs

    def test_paper_table2_is_table3_plus_table4(self):
        scenarios = preset("paper-table2", 0.01)
        expected = len(table3_configs()) + len(table4_configs())
        assert len(scenarios) == expected
        assert all(s.config.payload_scale == 0.01 for s in scenarios)
        assert {s.name.split("-")[0] for s in scenarios} == {"T3", "T4"}

    def test_payload_ladder_spans_four_decades(self):
        scenarios = preset("payload-ladder")
        scales = sorted({s.config.payload_scale for s in scenarios})
        assert scales == [0.001, 0.01, 0.1, 1.0]
        algorithms = {s.config.algorithm for s in scenarios}
        assert algorithms == {NCCLAlgorithm.RING, NCCLAlgorithm.TREE}

    def test_gcp_scaleout_covers_both_systems_and_node_counts(self):
        scenarios = preset("gcp-scaleout", 0.01)
        assert {s.config.system for s in scenarios} == {SystemKind.A100, SystemKind.V100}
        assert {s.config.num_nodes for s in scenarios} == {1, 2, 4}

    def test_unknown_preset_raises(self):
        with pytest.raises(EvaluationError):
            preset("warp-speed")

    def test_preset_scale_override(self):
        default = preset("smoke")
        scaled = preset("smoke", 0.004)
        assert {s.config.payload_scale for s in default} == {0.002}
        assert {s.config.payload_scale for s in scaled} == {0.004}


class TestScenariosFromConfigs:
    def test_exact_duplicates_collapse(self):
        configs = table4_configs(0.01)
        scenarios = scenarios_from_configs(configs + configs)
        assert len(scenarios) == len(configs)

    def test_conflicting_names_raise(self):
        config = table4_configs(0.01)[0]
        other = ExperimentConfig(
            name=config.name,  # same name, different shape
            system=config.system,
            num_nodes=config.num_nodes,
            axes=(4, 8),
            reduction_axes=(0,),
            payload_scale=0.01,
        )
        with pytest.raises(EvaluationError):
            scenarios_from_configs([config, other])
