"""Tests for repro.evaluation.workloads."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.evaluation.workloads import (
    RESNET50_GRADIENT_BYTES,
    ReductionPhase,
    TrainingWorkload,
    megatron_sharded_layer,
    resnet50_data_parallel,
)


class TestReductionPhase:
    def test_exposed_seconds_with_overlap(self):
        phase = ReductionPhase("g", 100, (0,), overlap_fraction=0.25)
        assert phase.exposed_seconds(1.0) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            ReductionPhase("g", 0, (0,))
        with pytest.raises(EvaluationError):
            ReductionPhase("g", 10, (0,), overlap_fraction=1.0)
        with pytest.raises(EvaluationError):
            ReductionPhase("g", 10, ())


class TestTrainingWorkload:
    def make(self):
        return TrainingWorkload(
            name="w",
            compute_seconds=0.2,
            parallelism_axes=(8,),
            phases=(ReductionPhase("gradients", 100, (0,)),),
        )

    def test_step_time(self):
        workload = self.make()
        assert workload.step_time({"gradients": 0.1}) == pytest.approx(0.3)

    def test_missing_phase_rejected(self):
        with pytest.raises(EvaluationError):
            self.make().step_time({})

    def test_improvement(self):
        workload = self.make()
        improvement = workload.improvement({"gradients": 0.2}, {"gradients": 0.1})
        assert improvement == pytest.approx(1 - 0.3 / 0.4)

    def test_communication_fraction(self):
        workload = self.make()
        assert workload.communication_fraction({"gradients": 0.2}) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            TrainingWorkload("w", 0.0, (8,), (ReductionPhase("g", 1, (0,)),))
        with pytest.raises(EvaluationError):
            TrainingWorkload("w", 0.1, (8,), ())
        with pytest.raises(EvaluationError):
            TrainingWorkload("w", 0.1, (8,), (ReductionPhase("g", 1, (2,)),))


class TestConcreteWorkloads:
    def test_resnet50(self):
        workload = resnet50_data_parallel(32)
        assert workload.parallelism_axes == (32,)
        assert workload.phases[0].bytes_per_device == RESNET50_GRADIENT_BYTES
        assert RESNET50_GRADIENT_BYTES == pytest.approx(102.4e6, rel=0.01)
        with pytest.raises(EvaluationError):
            resnet50_data_parallel(1)

    def test_resnet50_improvement_matches_paper_scale(self):
        """Paper §1: a better reduction strategy gives ~15% end-to-end improvement
        when communication is a meaningful fraction of the step."""
        workload = resnet50_data_parallel(32, compute_seconds=0.30)
        baseline_comm = 0.20    # slow AllReduce placement
        optimized_comm = 0.12   # synthesized strategy
        improvement = workload.improvement(
            {"gradients": baseline_comm}, {"gradients": optimized_comm}
        )
        assert 0.10 < improvement < 0.25

    def test_megatron_layer(self):
        workload = megatron_sharded_layer(data_parallel=4, model_parallel=8)
        assert workload.parallelism_axes == (4, 8)
        assert {p.name for p in workload.phases} == {"activations", "gradients"}
        with pytest.raises(EvaluationError):
            megatron_sharded_layer(1, 8)
