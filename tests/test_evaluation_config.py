"""Tests for repro.evaluation.config."""

from __future__ import annotations

import pytest

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.config import (
    ExperimentConfig,
    SystemKind,
    appendix_configs,
    figure11_configs,
    paper_payload_bytes,
    table3_configs,
    table4_configs,
    table5_configs,
)


class TestPayload:
    def test_paper_payload_formula(self):
        # 2^29 floats per node count, 4 bytes each.
        assert paper_payload_bytes(2) == (1 << 29) * 2 * 4
        assert paper_payload_bytes(4) == (1 << 29) * 4 * 4

    def test_rejects_bad_node_count(self):
        with pytest.raises(EvaluationError):
            paper_payload_bytes(0)


class TestExperimentConfig:
    def make(self, **kwargs):
        defaults = dict(
            name="x",
            system=SystemKind.A100,
            num_nodes=2,
            axes=(2, 16),
            reduction_axes=(0,),
        )
        defaults.update(kwargs)
        return ExperimentConfig(**defaults)

    def test_valid_config(self):
        config = self.make()
        assert config.bytes_per_device == paper_payload_bytes(2)
        assert config.topology().num_devices == 32
        assert config.parallelism().sizes == (2, 16)
        assert config.request().axes == (0,)
        assert "a100" in config.describe()

    def test_axes_must_cover_system(self):
        with pytest.raises(EvaluationError):
            self.make(axes=(2, 8))

    def test_reduction_axis_in_range(self):
        with pytest.raises(EvaluationError):
            self.make(reduction_axes=(3,))

    def test_payload_scale(self):
        scaled = self.make().scaled(0.5)
        assert scaled.bytes_per_device == paper_payload_bytes(2) // 2
        with pytest.raises(EvaluationError):
            self.make(payload_scale=0)
        with pytest.raises(EvaluationError):
            self.make(payload_scale=2.0)

    def test_with_algorithm(self):
        tree = self.make().with_algorithm(NCCLAlgorithm.TREE)
        assert tree.algorithm == NCCLAlgorithm.TREE
        assert tree.name.endswith("tree")

    def test_system_kind_helpers(self):
        assert SystemKind.A100.gpus_per_node == 16
        assert SystemKind.V100.gpus_per_node == 8
        assert SystemKind.V100.build(2).num_devices == 16


class TestNamedConfigSets:
    def test_table3_configs_cover_all_variants(self):
        configs = table3_configs(payload_scale=0.1)
        # 4 shapes x 2 reduction axes x 2 algorithms.
        assert len(configs) == 16
        assert all(0 < c.payload_scale <= 0.1 for c in configs)
        systems = {c.system for c in configs}
        assert systems == {SystemKind.A100, SystemKind.V100}

    def test_table4_configs_match_paper_rows(self):
        configs = table4_configs()
        names = [c.name for c in configs]
        assert names == ["T4-F", "T4-G", "T4-H", "T4-I", "T4-J", "T4-K", "T4-L"]
        by_name = {c.name: c for c in configs}
        assert by_name["T4-G"].algorithm == NCCLAlgorithm.TREE
        assert by_name["T4-K"].system == SystemKind.V100
        assert by_name["T4-H"].axes == (16, 2, 2)
        assert by_name["T4-H"].reduction_axes == (0, 2)

    def test_figure11_configs(self):
        configs = figure11_configs()
        assert len(configs) == 2
        assert configs[0].system == SystemKind.V100
        assert configs[1].axes == (4, 2, 8)

    def test_appendix_configs_cover_both_systems_and_node_counts(self):
        configs = appendix_configs(payload_scale=0.01)
        assert {c.system for c in configs} == {SystemKind.A100, SystemKind.V100}
        assert {c.num_nodes for c in configs} == {2, 4}
        # Every config is internally consistent (constructor validates).
        assert all(c.bytes_per_device > 0 for c in configs)
        # The paper's headline shapes appear.
        shapes = {(c.system, c.num_nodes, c.axes) for c in configs}
        assert (SystemKind.A100, 4, (64,)) in shapes
        assert (SystemKind.V100, 4, (8, 2, 2)) in shapes

    def test_table5_configs_quick_and_full(self):
        quick = table5_configs(quick=True)
        full = table5_configs(quick=False)
        assert len(quick) < len(full)
