"""Tests for the planning service facade, batch API and parallel evaluator."""

from __future__ import annotations

import pytest

from repro.api import P2
from repro.errors import EvaluationError, ServiceError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.service import (
    ParallelEvaluator,
    PlanCache,
    PlanningRequest,
    PlanningService,
)
from repro.topology.gcp import a100_system, v100_system

MB = 1 << 20


def _ranking(plan):
    return [
        (s.matrix.describe(), s.mnemonic, s.predicted_seconds, s.is_default_all_reduce)
        for s in plan.strategies
    ]


@pytest.fixture(scope="module")
def topology():
    return a100_system(num_nodes=2)


@pytest.fixture(scope="module")
def request_84():
    return PlanningRequest(
        axes=ParallelismAxes.of(8, 4),
        request=ReductionRequest.over(0),
        bytes_per_device=64 * MB,
    )


class TestPlanningService:
    def test_warm_plan_identical_to_cold(self, topology, request_84):
        service = PlanningService(topology, max_program_size=3)
        cold = service.submit(request_84)
        warm = service.submit(request_84)
        assert not cold.stats.cache_hit
        assert warm.stats.cache_tier == "memory"
        assert _ranking(warm.plan) == _ranking(cold.plan)
        assert [s.program.signature() for s in warm.plan.strategies] == [
            s.program.signature() for s in cold.plan.strategies
        ]

    def test_matches_direct_p2(self, topology, request_84):
        direct = P2(topology, max_program_size=3).optimize(
            request_84.axes, request_84.request, request_84.bytes_per_device
        )
        served = PlanningService(topology, max_program_size=3).submit(request_84)
        assert _ranking(served.plan) == _ranking(direct)

    def test_cold_stats_carry_timings(self, topology, request_84):
        service = PlanningService(topology, max_program_size=3)
        stats = service.submit(request_84).stats
        assert stats.synthesis_seconds > 0
        assert stats.evaluation_seconds > 0
        assert stats.total_seconds >= stats.synthesis_seconds
        assert stats.num_candidates == 2
        assert stats.num_strategies > 0
        assert len(stats.fingerprint) == 64
        assert "cold" in stats.describe()

    def test_rejects_invalid_payload(self, topology):
        with pytest.raises(ServiceError):
            PlanningRequest(ParallelismAxes.of(32), ReductionRequest.over(0), 0)

    def test_p2_service_wiring(self, topology, request_84):
        service = PlanningService(topology, max_program_size=3)
        p2 = P2(topology, max_program_size=3)
        plan = p2.optimize(
            request_84.axes,
            request_84.request,
            request_84.bytes_per_device,
            service=service,
        )
        assert service.requests_served == 1
        again = p2.optimize(
            request_84.axes,
            request_84.request,
            request_84.bytes_per_device,
            service=service,
        )
        assert service.cache.stats.hits == 1
        assert _ranking(again) == _ranking(plan)

    def test_recovers_from_semantically_corrupt_cache_entry(
        self, topology, request_84, tmp_path
    ):
        """A valid envelope around a broken plan is a miss, not a crash."""
        import json

        service = PlanningService(
            topology, max_program_size=3, cache=PlanCache(directory=tmp_path)
        )
        cold = service.submit(request_84)
        path = tmp_path / f"{cold.stats.fingerprint}.json"
        envelope = json.loads(path.read_text())
        del envelope["plan"]["strategies"][0]["matrix"]  # still JSON, no longer a plan
        path.write_text(json.dumps(envelope))

        fresh = PlanningService(
            topology, max_program_size=3, cache=PlanCache(directory=tmp_path)
        )
        recovered = fresh.submit(request_84)
        assert not recovered.stats.cache_hit
        assert fresh.cache.stats.corrupt_entries == 1
        # The unusable lookup must not inflate the hit rate.
        assert fresh.cache.stats.hits == 0
        assert fresh.cache.stats.misses == 1
        assert _ranking(recovered.plan) == _ranking(cold.plan)
        # The recomputed plan was re-stored and now serves warm again.
        assert fresh.submit(request_84).stats.cache_tier == "memory"

    def test_p2_rejects_mismatched_service_knobs(self, topology, request_84):
        service = PlanningService(topology, max_program_size=5)
        p2 = P2(topology, max_program_size=3)
        with pytest.raises(EvaluationError):
            p2.optimize(
                request_84.axes,
                request_84.request,
                request_84.bytes_per_device,
                service=service,
            )

    def test_p2_rejects_mismatched_service_topology(self, request_84):
        service = PlanningService(v100_system(num_nodes=4))
        p2 = P2(a100_system(num_nodes=2))
        with pytest.raises(EvaluationError):
            p2.optimize(
                request_84.axes,
                request_84.request,
                request_84.bytes_per_device,
                service=service,
            )

    def test_describe(self, topology, request_84):
        service = PlanningService(topology, max_program_size=3)
        service.submit(request_84)
        text = service.describe()
        assert "served=1" in text
        assert "PlanCache" in text


class TestBatchAPI:
    def test_optimize_many_dedupes_identical_queries(self, topology, request_84):
        service = PlanningService(topology, max_program_size=3)
        other = PlanningRequest(
            axes=ParallelismAxes.of(8, 4),
            request=ReductionRequest.over(1),
            bytes_per_device=64 * MB,
        )
        responses = service.optimize_many([request_84, other, request_84])
        assert len(responses) == 3
        tiers = [r.stats.cache_tier for r in responses]
        assert tiers == [None, None, "memory"]
        # The duplicate shares the first answer's ranking exactly.
        assert _ranking(responses[2].plan) == _ranking(responses[0].plan)

    def test_batch_heterogeneous_algorithms_get_distinct_plans(self, topology):
        from repro.cost.nccl import NCCLAlgorithm

        ring = PlanningRequest(
            ParallelismAxes.of(8, 4), ReductionRequest.over(0), 64 * MB,
            algorithm=NCCLAlgorithm.RING,
        )
        tree = PlanningRequest(
            ParallelismAxes.of(8, 4), ReductionRequest.over(0), 64 * MB,
            algorithm=NCCLAlgorithm.TREE,
        )
        service = PlanningService(topology, max_program_size=3)
        responses = service.optimize_many([ring, tree])
        assert responses[0].stats.fingerprint != responses[1].stats.fingerprint
        assert all(not r.stats.cache_hit for r in responses)

    def test_warm_reports_cold_count(self, topology, request_84):
        service = PlanningService(topology, max_program_size=3)
        assert service.warm([request_84]) == 1
        assert service.warm([request_84]) == 0

    def test_disk_warm_start_across_services(self, topology, request_84, tmp_path):
        first = PlanningService(
            topology, max_program_size=3, cache=PlanCache(directory=tmp_path)
        )
        cold = first.submit(request_84)

        second = PlanningService(
            topology, max_program_size=3, cache=PlanCache(directory=tmp_path)
        )
        warm = second.submit(request_84)
        assert warm.stats.cache_tier == "disk"
        assert _ranking(warm.plan) == _ranking(cold.plan)


class TestParallelEvaluation:
    def test_pool_ranking_identical_to_serial(self, topology, request_84):
        p2 = P2(topology, max_program_size=3)
        serial = p2.optimize(
            request_84.axes, request_84.request, request_84.bytes_per_device
        )
        parallel = p2.optimize(
            request_84.axes,
            request_84.request,
            request_84.bytes_per_device,
            n_workers=2,
        )
        assert _ranking(parallel) == _ranking(serial)

    def test_service_with_workers_matches_serial_service(self, topology, request_84):
        serial = PlanningService(topology, max_program_size=3).submit(request_84)
        with PlanningService(topology, max_program_size=3, n_workers=2) as service:
            parallel = service.submit(request_84)
            assert parallel.stats.n_workers == 2
        assert _ranking(parallel.plan) == _ranking(serial.plan)

    def test_evaluator_zero_step_programs_are_free(self, topology):
        from repro.synthesis.lowering import LoweredProgram

        empty = LoweredProgram(num_devices=topology.num_devices, steps=())
        with ParallelEvaluator(topology, n_workers=2) as evaluator:
            assert evaluator.evaluate([empty], 1 * MB) == [0.0]

    def test_evaluator_preserves_input_order(self, topology, request_84):
        from repro.api import collect_strategy_entries, evaluate_entries_serial
        from repro.cost.model import CostModel
        from repro.cost.nccl import NCCLAlgorithm
        from repro.synthesis.pipeline import synthesize_all

        candidates = synthesize_all(
            topology.hierarchy, request_84.axes, request_84.request, max_program_size=3
        )
        entries = collect_strategy_entries(candidates, request_84.request)
        programs = [entry.lowered for entry in entries]
        serial = evaluate_entries_serial(
            entries, topology, CostModel(), 64 * MB, NCCLAlgorithm.RING
        )
        with ParallelEvaluator(topology, n_workers=2) as evaluator:
            parallel = evaluator.evaluate(programs, 64 * MB, NCCLAlgorithm.RING)
        assert parallel == serial

    def test_evaluator_rejects_bad_worker_count(self, topology):
        with pytest.raises(ServiceError):
            ParallelEvaluator(topology, n_workers=0)
