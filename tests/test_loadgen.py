"""Tests for the open-loop load harness: arrivals, reports, end-to-end runs.

The arrival-process tests pin the statistical contract (determinism per
seed, mean normalization of the named profiles, envelope correctness); the
report tests pin the snapshot → ``LoadReport`` derivation; the end-to-end
tests drive a real :class:`~repro.serve.daemon.PlanDaemon` over TCP, both
through :class:`~repro.loadgen.LoadHarness` directly and through
``repro-cli loadgen``.
"""

from __future__ import annotations

import argparse
import json
from random import Random

import pytest

from repro.errors import LoadgenError
from repro.loadgen import (
    LoadHarness,
    LoadReport,
    QueryMix,
    PROFILE_NAMES,
    arrival_times,
    bursty,
    constant_rate,
    diurnal,
    peak_rate,
    poisson_users,
    profile_from_name,
    scaled,
    summed,
    validate_tenants,
)
from repro.obs.recorder import Recorder
from repro.serve import DaemonConfig, DaemonThread
from repro.service import PlanningService
from repro.topology.gcp import figure2a_system


# --------------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------------- #
class TestRateFunctions:
    def test_constant(self):
        rate = constant_rate(7.5)
        assert rate(0.0) == rate(123.4) == 7.5

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(LoadgenError, match="positive"):
            constant_rate(0.0)

    def test_poisson_users_is_aggregate_rpm(self):
        rate = poisson_users(users=30, requests_per_minute=10)
        assert rate(0.0) == pytest.approx(5.0)  # 30 * 10 / 60
        with pytest.raises(LoadgenError):
            poisson_users(0, 10)

    def test_bursty_square_wave(self):
        rate = bursty(base_rps=1.0, burst_rps=8.0, period_s=10.0, duty=0.2)
        assert rate(0.0) == 8.0  # in the burst window
        assert rate(1.9) == 8.0
        assert rate(2.1) == 1.0  # past duty * period
        assert rate(12.1) == 1.0  # periodic
        assert rate(10.5) == 8.0

    def test_bursty_validation(self):
        with pytest.raises(LoadgenError):
            bursty(1.0, 0.0, 10.0)
        with pytest.raises(LoadgenError, match="duty"):
            bursty(1.0, 8.0, 10.0, duty=1.5)

    def test_diurnal_trough_and_crest(self):
        rate = diurnal(base_rps=2.0, peak_rps=10.0, period_s=60.0)
        assert rate(0.0) == pytest.approx(2.0)  # trough at t=0
        assert rate(30.0) == pytest.approx(10.0)  # crest at half period
        assert rate(60.0) == pytest.approx(2.0)  # back to trough
        with pytest.raises(LoadgenError):
            diurnal(5.0, 2.0, 60.0)  # peak below base

    def test_scaled_and_summed(self):
        doubled = scaled(constant_rate(3.0), 2.0)
        assert doubled(1.0) == pytest.approx(6.0)
        both = summed(constant_rate(1.0), constant_rate(2.5))
        assert both(0.0) == pytest.approx(3.5)
        with pytest.raises(LoadgenError):
            scaled(constant_rate(1.0), 0.0)
        with pytest.raises(LoadgenError):
            summed()

    @pytest.mark.parametrize("name", PROFILE_NAMES)
    def test_named_profiles_are_mean_normalized(self, name):
        """Every named shape offers the same mean load as constant at rps."""
        rps, period = 6.0, 10.0
        profile = profile_from_name(name, rps, burst_multiplier=4.0, period_s=period)
        samples = 10_000
        step = period / samples
        # Midpoint sampling over one full period (both shapes are periodic).
        mean = sum(profile((i + 0.5) * step) for i in range(samples)) / samples
        assert mean == pytest.approx(rps, rel=1e-3)

    def test_unknown_profile_name(self):
        with pytest.raises(LoadgenError, match="unknown profile"):
            profile_from_name("sawtooth", 5.0)

    def test_peak_rate_envelopes_the_profile(self):
        assert peak_rate(constant_rate(5.0), 10.0) == pytest.approx(5.25)
        profile = bursty(1.0, 8.0, period_s=2.0, duty=0.5)
        ceiling = peak_rate(profile, 10.0)
        assert ceiling >= 8.0
        with pytest.raises(LoadgenError, match="zero"):
            peak_rate(lambda t: 0.0, 10.0)


class TestArrivalTimes:
    def test_deterministic_per_seed(self):
        profile = constant_rate(50.0)
        first = arrival_times(profile, 2.0, Random(11))
        second = arrival_times(profile, 2.0, Random(11))
        assert first == second
        assert first  # 50 rps x 2 s draws a non-empty schedule

    def test_different_seeds_differ(self):
        profile = constant_rate(50.0)
        assert arrival_times(profile, 2.0, Random(1)) != arrival_times(
            profile, 2.0, Random(2)
        )

    def test_ascending_and_in_range(self):
        times = arrival_times(constant_rate(100.0), 1.5, Random(3))
        assert times == sorted(times)
        assert all(0.0 < t < 1.5 for t in times)

    def test_thinning_tracks_the_rate(self):
        # A bursty profile should put most arrivals inside the burst window.
        profile = bursty(base_rps=1.0, burst_rps=50.0, period_s=1.0, duty=0.2)
        times = arrival_times(profile, 20.0, Random(5))
        in_burst = sum(1 for t in times if (t % 1.0) < 0.2)
        assert in_burst / len(times) > 0.8

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(LoadgenError, match="duration"):
            arrival_times(constant_rate(5.0), 0.0, Random(0))


# --------------------------------------------------------------------------- #
# Query mix
# --------------------------------------------------------------------------- #
class TestQueryMix:
    def test_payload_ladder(self):
        mix = QueryMix.payload_ladder(
            axes=(4, 4), reduce_axes=(0,), base_bytes=1000, distinct=3
        )
        assert mix.distinct == 3
        assert [q.bytes_per_device for q in mix.queries] == [1000, 2000, 3000]
        assert len({q.to_json() for q in mix.queries}) == 3  # distinct fingerprints
        assert all(q.max_program_size == 3 for q in mix.queries)

    def test_validation(self):
        with pytest.raises(LoadgenError, match="distinct"):
            QueryMix.payload_ladder(axes=(4, 4), distinct=0)
        with pytest.raises(LoadgenError, match="at least one"):
            QueryMix(queries=())

    def test_sample_is_seeded_and_uniformish(self):
        mix = QueryMix.payload_ladder(axes=(4, 4), distinct=4)
        drawn = [mix.sample(Random(9)) for _ in range(5)]
        again = [mix.sample(Random(9)) for _ in range(5)]
        assert drawn == again
        rng = Random(9)
        seen = {mix.sample(rng).bytes_per_device for _ in range(200)}
        assert len(seen) == 4  # every distinct query gets traffic

    def test_validate_tenants(self):
        assert validate_tenants(["a", " b ", "", "  "]) == ["a", "b"]
        assert validate_tenants([]) == []


# --------------------------------------------------------------------------- #
# LoadReport derivation
# --------------------------------------------------------------------------- #
class TestLoadReport:
    def _snapshot(self):
        recorder = Recorder()
        recorder.count("loadgen.offered", 12)
        recorder.count("loadgen.sent", 10)
        recorder.count("loadgen.ok", 8)
        recorder.count("loadgen.shed", 2)
        recorder.count("loadgen.cache_hit", 6)
        recorder.count("loadgen.cache_miss", 2)
        recorder.count("loadgen.tenant.alpha.sent", 5)
        recorder.count("loadgen.tenant.beta.sent", 5)
        for value in (0.010, 0.020, 0.030, 0.040):
            recorder.observe("loadgen.latency", value)
        for value in (0.010, 0.020):
            recorder.observe("loadgen.latency.hit", value)
        return recorder.drain()

    def test_from_snapshot_derives_everything(self):
        report = LoadReport.from_snapshot(
            "phase", self._snapshot(), duration_s=2.0, elapsed_s=4.0
        )
        assert report.offered == 12
        assert report.sent == 10
        assert report.ok == 8
        assert report.shed == 2
        assert report.throughput_rps == pytest.approx(2.0)  # 8 ok / 4 s
        assert report.shed_rate == pytest.approx(0.2)  # 2 / 10 sent
        assert report.cache_hit_ratio == pytest.approx(0.75)  # 6 / (6+2)
        assert report.tenants == {"alpha": 5, "beta": 5}
        assert report.latency["count"] == 4
        assert report.latency["p50_s"] == pytest.approx(0.020, rel=0.25)
        assert report.latency["max_s"] == pytest.approx(0.040)
        assert report.hit_latency["count"] == 2
        assert report.miss_latency is None  # no miss-latency samples recorded

    def test_to_dict_round_trips_through_json(self):
        report = LoadReport.from_snapshot("phase", self._snapshot(), 2.0, 4.0)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["label"] == "phase"
        assert data["cache_hits"] == 6
        assert data["tenants"] == {"alpha": 5, "beta": 5}
        assert "snapshot" not in data  # the embedded snapshot stays out

    def test_describe_with_and_without_latency(self):
        with_latency = LoadReport.from_snapshot("warm", self._snapshot(), 2.0, 4.0)
        text = with_latency.describe()
        assert "[warm]" in text and "p50" in text and "p99" in text
        empty = LoadReport(label="idle", duration_s=1.0, elapsed_s=1.0)
        text = empty.describe()
        assert "[idle] 0/0 ok" in text and "p50" not in text

    def test_empty_snapshot_divides_safely(self):
        report = LoadReport.from_snapshot("idle", Recorder().drain(), 1.0, 0.0)
        assert report.throughput_rps == 0.0
        assert report.shed_rate == 0.0
        assert report.cache_hit_ratio == 0.0
        assert report.latency is None


class TestHarnessValidation:
    MIX = QueryMix.payload_ladder(axes=(4, 4), distinct=2)

    def test_rejects_bad_duration_and_concurrency(self):
        with pytest.raises(LoadgenError, match="duration"):
            LoadHarness(self.MIX, constant_rate(5.0), 0.0, port=1)
        with pytest.raises(LoadgenError, match="concurrency"):
            LoadHarness(
                self.MIX, constant_rate(5.0), 1.0, port=1, concurrency=0
            )

    def test_empty_schedule_fails_loudly(self):
        harness = LoadHarness(
            self.MIX, constant_rate(1e-6), 1.0, port=1, seed=0
        )
        assert harness.schedule() == []
        with pytest.raises(LoadgenError, match="empty"):
            harness.run()


# --------------------------------------------------------------------------- #
# End to end against a live daemon
# --------------------------------------------------------------------------- #
MIX = QueryMix.payload_ladder(
    axes=(4, 4), reduce_axes=(0,), base_bytes=1 << 20, distinct=2,
    max_program_size=3,
)


@pytest.fixture(scope="module")
def daemon():
    recorder = Recorder()
    service = PlanningService(
        figure2a_system(), max_program_size=3, recorder=recorder
    )
    with DaemonThread(
        service, DaemonConfig(port=0, queue_limit=64), recorder=recorder
    ) as handle:
        yield handle


class TestHarnessEndToEnd:
    def test_probe_then_run(self, daemon):
        host, port = daemon.address
        harness = LoadHarness(
            MIX,
            constant_rate(30.0),
            1.0,
            host=host,
            port=port,
            seed=4,
            concurrency=4,
            tenants=("alpha", "beta"),
        )
        before = harness.fetch_daemon_snapshot().counters.get("serve.ok", 0)

        cold = harness.probe("cold")
        assert cold.sent == cold.ok == MIX.distinct
        assert cold.cache_misses == MIX.distinct  # a cold daemon: all misses
        assert cold.cache_hits == 0
        assert cold.miss_latency["count"] == MIX.distinct

        warm = harness.run("warm")
        scheduled = len(harness.schedule())
        assert warm.offered == scheduled
        assert warm.sent == warm.ok == scheduled
        assert warm.cache_hit_ratio == 1.0  # the probe planned the whole mix
        assert warm.shed == 0 and warm.errors == 0
        assert warm.hit_latency["count"] == scheduled
        # Round-robin tenants: every request carries one of the two labels.
        assert sum(warm.tenants.values()) == scheduled
        assert set(warm.tenants) == {"alpha", "beta"}

        after = harness.fetch_daemon_snapshot().counters.get("serve.ok", 0)
        assert after - before == cold.ok + warm.ok


class TestLoadgenCli:
    def test_loadgen_against_live_daemon(self, daemon, tmp_path, capsys):
        from repro.cli import main

        host, port = daemon.address
        out = tmp_path / "BENCH_daemon_load.json"
        snapshot_out = tmp_path / "snapshot.json"
        exit_code = main(
            [
                "loadgen",
                "--host", host,
                "--port", str(port),
                "--duration", "1",
                "--rps", "20",
                "--distinct", "2",
                "--axes", "4", "4",
                "--reduce", "0",
                "--max-program-size", "3",
                "--seed", "3",
                "--concurrency", "4",
                "--out", str(out),
                "--snapshot-out", str(snapshot_out),
                "--json",
            ]
        )
        assert exit_code == 0
        phases = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert [p["label"] for p in phases] == ["cold", "constant"]

        record = json.loads(out.read_text())
        assert record["name"] == "daemon_load"
        assert record["counters"]["distinct_queries"] == 2
        assert record["counters"]["requests"] == record["warm"]["offered"]
        assert record["median_seconds"] > 0
        assert 0.0 <= record["shed_rate"] <= 1.0
        assert record["cache_hit_ratio"] == 1.0
        assert record["profile"] == "constant"

        snapshot = json.loads(snapshot_out.read_text())
        assert snapshot["schema"] == "repro.obs/1"
        # Merged client + daemon telemetry: both sides are present.
        assert snapshot["counters"]["loadgen.sent"] > 0
        assert snapshot["counters"]["serve.ok"] > 0

    def test_stats_renders_serving_section(self, daemon, tmp_path, capsys):
        from repro.cli import main

        host, port = daemon.address
        snapshot_out = tmp_path / "snap.json"
        assert main(
            [
                "loadgen",
                "--host", host, "--port", str(port),
                "--duration", "1", "--rps", "10",
                "--distinct", "2", "--axes", "4", "4",
                "--max-program-size", "3",
                "--tenants", "alpha,beta",
                "--skip-probe",
                "--snapshot-out", str(snapshot_out),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(snapshot_out)]) == 0
        rendered = capsys.readouterr().out
        assert "serving:" in rendered
        assert "loadgen" in rendered
        assert "alpha" in rendered and "beta" in rendered

    def test_needs_an_address(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="ready-file"):
            main(["loadgen", "--duration", "1"])

    def test_rps_and_users_are_exclusive(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="not both"):
            main(["loadgen", "--port", "1", "--rps", "5", "--users", "3"])

    def test_ready_file_resolution(self, tmp_path):
        from repro.cli import _resolve_daemon_address

        ready = tmp_path / "ready.json"
        ready.write_text(json.dumps({"host": "10.0.0.5", "port": 1234}))
        args = argparse.Namespace(
            ready_file=str(ready), unix=None, host="x", port=None
        )
        assert _resolve_daemon_address(args) == ("10.0.0.5", 1234, None)

        ready.write_text(json.dumps({"unix_path": "/tmp/p.sock", "port": None}))
        assert _resolve_daemon_address(args) == (None, None, "/tmp/p.sock")

        args = argparse.Namespace(
            ready_file=None, unix="/tmp/q.sock", host="x", port=None
        )
        assert _resolve_daemon_address(args) == (None, None, "/tmp/q.sock")

    def test_unreadable_ready_file(self):
        from repro.cli import _resolve_daemon_address

        args = argparse.Namespace(
            ready_file="/nonexistent/ready.json", unix=None, host="x", port=None
        )
        with pytest.raises(SystemExit, match="ready-file"):
            _resolve_daemon_address(args)
