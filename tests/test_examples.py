"""Smoke tests for the example scripts.

Each example is importable (so API drift breaks the suite, not just the
docs) and exposes a ``main`` entry point.  The cheapest example is actually
executed end to end; the longer ones are exercised indirectly by the
integration tests and the benchmark harness.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_five_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 5
        names = {p.stem for p in EXAMPLE_FILES}
        assert "quickstart" in names
        assert "resnet50_data_parallel" in names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None))
        assert module.__doc__ and len(module.__doc__) > 80

    def test_placement_exploration_runs(self, capsys):
        module = _load(EXAMPLES_DIR / "placement_exploration.py")
        module.main()
        out = capsys.readouterr().out
        assert "parallelism matrices" in out
        assert "strategies synthesized" in out
