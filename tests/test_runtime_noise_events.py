"""Tests for repro.runtime.noise and repro.runtime.events (the testbed simulator)."""

from __future__ import annotations

import pytest

from repro.baselines.allreduce import default_all_reduce
from repro.baselines.blueconnect import blueconnect
from repro.errors import ReproError
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.runtime.events import Flow, FlowNetwork, TestbedSimulator
from repro.runtime.noise import NoiseModel
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.topology.gcp import a100_system, v100_system
from repro.topology.links import LinkKind

GIB = float(1 << 30)


class TestNoiseModel:
    def test_deterministic_with_seed(self):
        a, b = NoiseModel(seed=3), NoiseModel(seed=3)
        assert [a.flow_factor() for _ in range(5)] == [b.flow_factor() for _ in range(5)]

    def test_reset_replays_sequence(self):
        model = NoiseModel(seed=5)
        first = [model.flow_factor() for _ in range(3)]
        model.reset()
        assert [model.flow_factor() for _ in range(3)] == first

    def test_zero_sigma_means_no_noise(self):
        model = NoiseModel(sigma=0.0, step_jitter=0.0)
        assert model.flow_factor() == 1.0
        assert model.step_overhead_jitter() == 0.0

    def test_flow_factor_positive(self):
        model = NoiseModel(seed=1)
        assert all(model.flow_factor() > 0 for _ in range(100))

    def test_link_efficiencies_bounded(self):
        model = NoiseModel()
        for kind in LinkKind:
            assert 0 < model.link_efficiency(kind) <= 1

    def test_cross_domain_factor(self):
        model = NoiseModel(cross_domain_penalty=1.3)
        assert model.cross_domain_factor(True) == pytest.approx(1.3)
        assert model.cross_domain_factor(False) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            NoiseModel(sigma=-1)
        with pytest.raises(ReproError):
            NoiseModel(step_jitter=-1)
        with pytest.raises(ReproError):
            NoiseModel(cross_domain_penalty=0.5)
        with pytest.raises(ReproError):
            NoiseModel(efficiencies={LinkKind.NIC: 1.5})


class TestFlowNetwork:
    def test_single_flow_duration(self):
        network = FlowNetwork({("link", 0): 10.0})
        flows = [Flow(0, total_bytes=100.0, resources=(("link", 0),))]
        finish = network.run(flows)
        assert finish[0] == pytest.approx(10.0)

    def test_two_flows_share_a_link_fairly(self):
        network = FlowNetwork({("link", 0): 10.0})
        flows = [
            Flow(0, 100.0, (("link", 0),)),
            Flow(1, 100.0, (("link", 0),)),
        ]
        finish = network.run(flows)
        # Both progress at 5 B/s until done.
        assert finish[0] == pytest.approx(20.0)
        assert finish[1] == pytest.approx(20.0)

    def test_short_flow_frees_capacity_for_long_flow(self):
        network = FlowNetwork({("link", 0): 10.0})
        flows = [
            Flow(0, 50.0, (("link", 0),)),
            Flow(1, 150.0, (("link", 0),)),
        ]
        finish = network.run(flows)
        # Flow 0 finishes at t=10 (5 B/s); flow 1 then speeds up to 10 B/s.
        assert finish[0] == pytest.approx(10.0)
        assert finish[1] == pytest.approx(20.0)

    def test_disjoint_links_do_not_interact(self):
        network = FlowNetwork({("a", 0): 10.0, ("b", 0): 5.0})
        flows = [Flow(0, 100.0, (("a", 0),)), Flow(1, 100.0, (("b", 0),))]
        finish = network.run(flows)
        assert finish[0] == pytest.approx(10.0)
        assert finish[1] == pytest.approx(20.0)

    def test_multi_resource_flow_bound_by_slowest(self):
        network = FlowNetwork({("a", 0): 10.0, ("b", 0): 2.0})
        flows = [Flow(0, 20.0, (("a", 0), ("b", 0)))]
        assert network.run(flows)[0] == pytest.approx(10.0)

    def test_zero_byte_flow_finishes_immediately(self):
        network = FlowNetwork({("a", 0): 10.0})
        finish = network.run([Flow(0, 0.0, (("a", 0),), fixed_seconds=1.0)])
        assert finish[0] == pytest.approx(1.0)

    def test_unknown_resource_rejected(self):
        network = FlowNetwork({("a", 0): 10.0})
        with pytest.raises(ReproError):
            network.run([Flow(0, 1.0, (("zzz", 9),))])

    def test_invalid_flows_and_capacities(self):
        with pytest.raises(ReproError):
            FlowNetwork({("a", 0): 0.0})
        with pytest.raises(ReproError):
            Flow(0, -1.0, (("a", 0),))
        with pytest.raises(ReproError):
            Flow(0, 1.0, ())


class TestTestbedSimulator:
    @pytest.fixture
    def setup(self):
        system = a100_system(num_nodes=2)
        axes = ParallelismAxes.of(2, 16)
        request = ReductionRequest.over(0)
        matrix = next(
            m
            for m in enumerate_parallelism_matrices(system.hierarchy, axes)
            if m.entries == ((2, 1), (1, 16))
        )
        placement = DevicePlacement(matrix)
        program = default_all_reduce(placement, request)
        return system, program

    def test_measurement_is_reproducible_with_same_seed(self, setup):
        system, program = setup
        a = TestbedSimulator(system, NoiseModel(seed=11)).measure(program, GIB, num_runs=2)
        b = TestbedSimulator(system, NoiseModel(seed=11)).measure(program, GIB, num_runs=2)
        assert a.total_seconds == pytest.approx(b.total_seconds)
        assert a.per_run_seconds == pytest.approx(b.per_run_seconds)

    def test_different_seeds_differ(self, setup):
        system, program = setup
        a = TestbedSimulator(system, NoiseModel(seed=1)).measure(program, GIB, num_runs=1)
        b = TestbedSimulator(system, NoiseModel(seed=2)).measure(program, GIB, num_runs=1)
        assert a.total_seconds != pytest.approx(b.total_seconds)

    def test_average_over_runs(self, setup):
        system, program = setup
        result = TestbedSimulator(system).measure(program, GIB, num_runs=3)
        assert len(result.per_run_seconds) == 3
        assert result.total_seconds == pytest.approx(
            sum(result.per_run_seconds) / 3
        )
        assert "measured" in result.describe()

    def test_measured_close_to_analytic_for_simple_case(self, setup):
        """The two models are different but must agree on the order of magnitude."""
        from repro.cost.simulator import simulate_program

        system, program = setup
        measured = TestbedSimulator(system, NoiseModel(seed=0)).measure(program, GIB, num_runs=2)
        predicted = simulate_program(program, system, GIB).total_seconds
        assert 0.3 * predicted < measured.total_seconds < 3.0 * predicted

    def test_larger_payload_takes_longer(self, setup):
        system, program = setup
        testbed = TestbedSimulator(system, NoiseModel(seed=0, sigma=0.0))
        small = testbed.measure(program, GIB, num_runs=1).total_seconds
        large = testbed.measure(program, 4 * GIB, num_runs=1).total_seconds
        assert large > 2 * small

    def test_hierarchical_program_beats_allreduce_on_testbed_too(self):
        system = a100_system(num_nodes=2)
        axes = ParallelismAxes.of(32)
        request = ReductionRequest.over(0)
        matrix = enumerate_parallelism_matrices(system.hierarchy, axes)[0]
        placement = DevicePlacement(matrix)
        hierarchy = build_synthesis_hierarchy(matrix, request)
        testbed = TestbedSimulator(system, NoiseModel(seed=0))
        baseline = testbed.measure(default_all_reduce(placement, request), GIB, num_runs=1)
        hierarchical = testbed.measure(blueconnect(hierarchy, placement), GIB, num_runs=1)
        assert hierarchical.total_seconds < baseline.total_seconds

    def test_v100_cross_domain_penalty_increases_measurement(self):
        system = v100_system(num_nodes=2)
        axes = ParallelismAxes.of(16)
        request = ReductionRequest.over(0)
        matrix = enumerate_parallelism_matrices(system.hierarchy, axes)[0]
        placement = DevicePlacement(matrix)
        program = default_all_reduce(placement, request)
        no_penalty = TestbedSimulator(
            system, NoiseModel(seed=0, sigma=0.0, cross_domain_penalty=1.0)
        ).measure(program, GIB, num_runs=1)
        with_penalty = TestbedSimulator(
            system, NoiseModel(seed=0, sigma=0.0, cross_domain_penalty=1.5)
        ).measure(program, GIB, num_runs=1)
        assert with_penalty.total_seconds > no_penalty.total_seconds

    def test_argument_validation(self, setup):
        system, program = setup
        testbed = TestbedSimulator(system)
        with pytest.raises(ReproError):
            testbed.measure(program, GIB, num_runs=0)
        other = a100_system(num_nodes=4)
        with pytest.raises(ReproError):
            TestbedSimulator(other).measure(program, GIB)
