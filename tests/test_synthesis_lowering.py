"""Tests for repro.synthesis.lowering."""

from __future__ import annotations

import pytest

from repro.dsl.forms import InsideGroup, Parallel
from repro.dsl.program import ReductionInstruction, ReductionProgram
from repro.errors import LoweringError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.matrix import enumerate_parallelism_matrices
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.placement import DevicePlacement
from repro.semantics.collectives import Collective
from repro.semantics.goals import initial_context
from repro.synthesis.hierarchy import build_synthesis_hierarchy
from repro.synthesis.lowering import (
    LoweredProgram,
    LoweredStep,
    lower_program,
    lower_synthesized,
)
from repro.synthesis.synthesizer import synthesize_programs


class TestLoweredStepValidation:
    def test_valid_step(self):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 1), (2, 3)))
        assert step.num_groups == 2 and step.group_size == 2
        assert step.devices == frozenset({0, 1, 2, 3})

    def test_rejects_empty_groups(self):
        with pytest.raises(LoweringError):
            LoweredStep(Collective.ALL_REDUCE, ())

    def test_rejects_singleton_group(self):
        with pytest.raises(LoweringError):
            LoweredStep(Collective.ALL_REDUCE, ((0,),))

    def test_rejects_overlapping_groups(self):
        with pytest.raises(LoweringError):
            LoweredStep(Collective.ALL_REDUCE, ((0, 1), (1, 2)))

    def test_describe_previews_groups(self):
        step = LoweredStep(Collective.REDUCE, tuple((2 * i, 2 * i + 1) for i in range(8)))
        assert "..." in step.describe()


class TestLoweredProgramValidation:
    def test_device_range_checked(self):
        step = LoweredStep(Collective.ALL_REDUCE, ((0, 5),))
        with pytest.raises(LoweringError):
            LoweredProgram(num_devices=4, steps=(step,))

    def test_signature_is_step_order_sensitive(self):
        s1 = LoweredStep(Collective.REDUCE, ((0, 1),))
        s2 = LoweredStep(Collective.BROADCAST, ((0, 1),))
        a = LoweredProgram(2, (s1, s2))
        b = LoweredProgram(2, (s2, s1))
        assert a.signature() != b.signature()

    def test_signature_is_group_order_insensitive(self):
        a = LoweredProgram(4, (LoweredStep(Collective.ALL_REDUCE, ((0, 1), (2, 3))),))
        b = LoweredProgram(4, (LoweredStep(Collective.ALL_REDUCE, ((2, 3), (0, 1))),))
        assert a.signature() == b.signature()

    def test_run_semantics_and_iteration(self):
        program = LoweredProgram(
            2, (LoweredStep(Collective.ALL_REDUCE, ((0, 1),)),), label="test"
        )
        final = program.run_semantics(initial_context(2))
        assert final[0].row(0) == 0b11
        assert len(program) == 1 and list(program)[0].collective == Collective.ALL_REDUCE
        assert "test" in program.describe()


class TestLoweringFigure2d:
    def test_lowered_blueconnect_covers_all_devices(
        self, figure2d_synthesis_hierarchy, figure2d_placement, shard_reduction
    ):
        program = ReductionProgram.of(
            ReductionInstruction(2, InsideGroup(), Collective.REDUCE_SCATTER),
            ReductionInstruction(2, Parallel(0), Collective.ALL_REDUCE),
            ReductionInstruction(2, InsideGroup(), Collective.ALL_GATHER),
        )
        lowered = lower_program(program, figure2d_synthesis_hierarchy, figure2d_placement)
        assert lowered.num_steps == 3
        # Every step touches all 16 devices (4 replicas of the 4-device pattern).
        for step in lowered.steps:
            assert step.devices == frozenset(range(16))
        assert lowered.validates_against(figure2d_placement, shard_reduction)

    def test_lowering_replicates_per_free_assignment(
        self, figure2d_synthesis_hierarchy, figure2d_placement
    ):
        program = ReductionProgram.single_all_reduce()
        lowered = lower_program(program, figure2d_synthesis_hierarchy, figure2d_placement)
        # One AllReduce group per non-reduction (data) replica: 4 groups of 4.
        assert lowered.steps[0].num_groups == 4
        assert lowered.steps[0].group_size == 4

    def test_lowering_rejects_mismatched_placement(
        self, figure2d_synthesis_hierarchy, figure2_matrices
    ):
        other = next(m for m in figure2_matrices if m.entries == ((1, 2, 2, 1), (1, 1, 1, 4)))
        program = ReductionProgram.single_all_reduce()
        with pytest.raises(LoweringError):
            lower_program(program, figure2d_synthesis_hierarchy, DevicePlacement(other))

    def test_lowering_rejects_groupless_instruction(
        self, figure2d_synthesis_hierarchy, figure2d_placement
    ):
        # Slicing at the leaf level yields no group of size >= 2.
        program = ReductionProgram.of(
            ReductionInstruction(4, InsideGroup(), Collective.ALL_REDUCE)
        )
        with pytest.raises(LoweringError):
            lower_program(program, figure2d_synthesis_hierarchy, figure2d_placement)


class TestLoweringAllSynthesizedPrograms:
    def test_every_synthesized_program_lowers_and_validates(self):
        hierarchy = SystemHierarchy.from_cardinalities([2, 4], ["node", "gpu"])
        axes = ParallelismAxes.of(4, 2)
        request = ReductionRequest.over(0)
        for matrix in enumerate_parallelism_matrices(hierarchy, axes):
            placement = DevicePlacement(matrix)
            synthesis_hierarchy = build_synthesis_hierarchy(matrix, request)
            result = synthesize_programs(synthesis_hierarchy, max_program_size=3)
            for synthesized in result.programs:
                lowered = lower_synthesized(synthesized, synthesis_hierarchy, placement)
                assert lowered.validates_against(placement, request), (
                    matrix.describe(),
                    synthesized.describe(synthesis_hierarchy.names),
                )

    def test_lowered_signatures_distinguish_strategies(self):
        hierarchy = SystemHierarchy.from_cardinalities([2, 2], ["node", "gpu"])
        axes = ParallelismAxes.of(4)
        matrix = enumerate_parallelism_matrices(hierarchy, axes)[0]
        placement = DevicePlacement(matrix)
        synthesis_hierarchy = build_synthesis_hierarchy(matrix, ReductionRequest.over(0))
        result = synthesize_programs(synthesis_hierarchy, max_program_size=3)
        signatures = {
            lower_synthesized(p, synthesis_hierarchy, placement).signature()
            for p in result.programs
        }
        assert len(signatures) > 1
