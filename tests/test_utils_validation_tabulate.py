"""Tests for repro.utils.validation and repro.utils.tabulate."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, TopologyError
from repro.utils.tabulate import format_cell, format_table
from repro.utils.validation import (
    check_non_negative,
    check_positive_int,
    check_positive_ints,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ReproError):
            check_positive_int(0, "x")
        with pytest.raises(ReproError):
            check_positive_int(-1, "x")

    def test_rejects_bool_and_float(self):
        with pytest.raises(ReproError):
            check_positive_int(True, "x")
        with pytest.raises(ReproError):
            check_positive_int(1.5, "x")

    def test_custom_exception_type(self):
        with pytest.raises(TopologyError):
            check_positive_int(0, "x", TopologyError)


class TestCheckPositiveInts:
    def test_returns_tuple(self):
        assert check_positive_ints([1, 2, 3], "xs") == (1, 2, 3)

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            check_positive_ints([], "xs")

    def test_reports_offending_index(self):
        with pytest.raises(ReproError, match=r"xs\[1\]"):
            check_positive_ints([1, 0], "xs")


class TestCheckProbabilityAndNonNegative:
    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ReproError):
            check_probability(1.5, "p")
        with pytest.raises(ReproError):
            check_probability(-0.1, "p")

    def test_non_negative(self):
        assert check_non_negative(0, "x") == 0.0
        assert check_non_negative(2.5, "x") == 2.5
        with pytest.raises(ReproError):
            check_non_negative(-1e-9, "x")


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_uses_format(self):
        assert format_cell(1.2345) == "1.23"
        assert format_cell(1.2345, "{:.3f}") == "1.234"

    def test_int_and_str(self):
        assert format_cell(7) == "7"
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert lines[-1].endswith("4.00")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
