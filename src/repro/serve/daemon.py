"""The planning daemon: a long-lived asyncio front end over ``PlanningService``.

This is ROADMAP item 1 made real: the piece of the system that *holds*
traffic.  :class:`PlanDaemon` listens on a TCP socket (and optionally a
Unix-domain socket), speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`, and answers ``PlanQuery`` objects through a
shared :class:`~repro.service.engine.PlanningService` — so the plan cache,
the compiled-profile cache and the worker pool all amortize across every
connection.

The serving discipline, in order of arrival:

1. **Framing** — each connection reads length-guarded lines; an overlong
   line gets ``line_too_long`` and the connection is closed, a torn line
   gets ``bad_request`` and the connection survives.
2. **Rate limiting** — an optional per-tenant token bucket (keyed by the
   request's ``tenant`` field; anonymous requests share one bucket) refuses
   over-quota requests with ``rate_limited`` before they cost anything.
3. **Admission control** — a bounded request queue; when it is full the
   request is *shed* with a structured ``overloaded`` reply and a
   ``serve.shed`` counter rather than queued into unbounded latency.
4. **Execution** — planning runs in a single-thread executor so a cold
   search never blocks the event loop; concurrency inside one plan comes
   from the service's own process pool (``n_workers``).  Each request is
   wrapped in a ``serve.request`` root span, so a ``trace_id`` shipped on
   the wire flows through ``PlanningService.plan`` into
   ``PlanOutcome.provenance()`` unchanged.
5. **Drain** — SIGTERM/SIGINT (or :meth:`PlanDaemon.shutdown`) stops
   accepting connections, answers everything already queued, then exits.

Cache warming on boot replays a ``PlanQuery`` JSONL file (the same format
``serve-batch --queries-file`` reads) through ``PlanningService.warm``, so a
restarted daemon serves its first real request from a hot cache.

:class:`DaemonThread` runs the whole daemon on a background thread with its
own event loop — the embedding used by the load harness's tests and
``benchmarks/bench_daemon_load.py``.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError, ServeError
from repro.obs.recorder import get_recorder
from repro.query import PlanQuery
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ServeRequest,
    decode_message,
    encode_message,
    error_reply,
    ok_reply,
)

__all__ = ["DaemonConfig", "TokenBucket", "PlanDaemon", "DaemonThread", "load_warm_queries"]

logger = logging.getLogger(__name__)


@dataclass
class DaemonConfig:
    """Everything tunable about how the daemon holds traffic.

    ``port=0`` binds an ephemeral TCP port (read it back from
    :attr:`PlanDaemon.tcp_address`); ``port=None`` disables TCP, in which
    case ``unix_path`` must be set.  ``rate_limit_per_s`` is per tenant —
    every distinct ``tenant`` string gets its own token bucket of that rate;
    ``None`` disables rate limiting entirely.
    """

    host: str = "127.0.0.1"
    port: Optional[int] = 0
    unix_path: Optional[str] = None
    queue_limit: int = 64
    max_line_bytes: int = MAX_LINE_BYTES
    rate_limit_per_s: Optional[float] = None
    rate_limit_burst: Optional[float] = None  # default: max(1, rate)
    warm_path: Optional[str] = None
    drain_timeout_s: float = 30.0
    # Default shard width applied to cold-path planning for requests that did
    # not pick their own (wire queries with an explicit ``shards`` win);
    # ``None`` leaves every query untouched.  Shards are fingerprint-neutral,
    # so this never changes what the cache returns — only how fast cold
    # exhaustive plans are computed.
    shards: Optional[int] = None
    # When the service carries a plan corpus (repro.corpus), replay it into
    # the plan cache before accepting traffic, so exact repeats of
    # historical queries are warm hits from the first request.  Ignored for
    # services without a corpus.
    corpus_warm: bool = True

    def __post_init__(self) -> None:
        if self.port is None and self.unix_path is None:
            raise ServeError("daemon needs a TCP port or a unix_path (or both)")
        if self.shards is not None and (
            isinstance(self.shards, bool)
            or not isinstance(self.shards, int)
            or self.shards < 1
        ):
            raise ServeError(f"shards must be a positive integer, got {self.shards!r}")
        if self.queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.max_line_bytes < 64:
            raise ServeError(f"max_line_bytes must be >= 64, got {self.max_line_bytes}")
        if self.rate_limit_per_s is not None and self.rate_limit_per_s <= 0:
            raise ServeError(
                f"rate_limit_per_s must be positive, got {self.rate_limit_per_s}"
            )


class TokenBucket:
    """A per-tenant token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    Lives entirely on the event loop (no locking); time is injected so tests
    can drive it deterministically.
    """

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = now

    def try_acquire(self, now: float) -> bool:
        elapsed = max(0.0, now - self.last)
        self.last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until one token will be available (0 when already is)."""
        deficit = 1.0 - self.tokens
        return max(0.0, deficit / self.rate)


def load_warm_queries(path: Union[str, Path]) -> List[PlanQuery]:
    """Read a warm file: plain ``PlanQuery`` JSONL (blank lines ignored).

    The same shape ``serve-batch --queries-file`` reads, so a previous run's
    query log is a valid warm file.  A torn line fails loudly — a warm file
    is an operator-provided artefact, not traffic.
    """
    queries: List[PlanQuery] = []
    text = Path(path).read_text()
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            queries.append(PlanQuery.from_dict(json.loads(line)))
        except (json.JSONDecodeError, ReproError, KeyError, TypeError, ValueError) as error:
            raise ServeError(f"{path}: bad warm query on line {number}: {error}")
    return queries


class _Connection:
    """Per-connection state: the writer plus a lock serializing its writes.

    Several queued requests from one connection may finish out of order;
    replies interleave at line granularity, matched back by ``id``.
    """

    __slots__ = ("reader", "writer", "write_lock")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()

    async def send(self, message: Dict[str, Any]) -> None:
        async with self.write_lock:
            self.writer.write(encode_message(message))
            await self.writer.drain()


class PlanDaemon:
    """The long-lived planning front end; see the module docstring.

    ``service`` is anything with ``plan(query) -> PlanOutcome`` and
    ``warm(queries) -> int`` — normally a
    :class:`~repro.service.engine.PlanningService`; tests inject stubs to
    make shedding and drain deterministic.
    """

    def __init__(
        self,
        service,
        config: Optional[DaemonConfig] = None,
        recorder=None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else DaemonConfig()
        self.recorder = recorder if recorder is not None else get_recorder()
        self._queue: Optional[asyncio.Queue] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._worker_task: Optional[asyncio.Task] = None
        # One planning thread: PlanningService (cache, simulator) is not
        # thread-safe, and intra-plan concurrency belongs to its process
        # pool.  The executor exists so a multi-second cold search never
        # blocks the event loop: hits, sheds and pings keep flowing.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._buckets: Dict[str, TokenBucket] = {}
        self._draining = False
        self._closed = asyncio.Event()
        self._started_mono = 0.0
        self.tcp_address: Optional[Tuple[str, int]] = None
        self.unix_address: Optional[str] = None
        self.warmed = 0
        self.corpus_warmed = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Warm the cache, bind the sockets, start the worker."""
        config = self.config
        self._queue = asyncio.Queue(maxsize=config.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-plan"
        )
        self._started_mono = time.monotonic()
        # Corpus first, then the warm file: corpus replay is pure cache
        # population (no search), so any warm-file query already answered by
        # history becomes a lookup instead of a cold plan.
        if config.corpus_warm and getattr(self.service, "corpus", None) is not None:
            await self._warm_corpus()
        if config.warm_path is not None:
            await self._warm(config.warm_path)
        if config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=config.host,
                port=config.port,
                limit=config.max_line_bytes,
            )
            self._servers.append(server)
            sockname = server.sockets[0].getsockname()
            self.tcp_address = (sockname[0], sockname[1])
        if config.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=config.unix_path,
                limit=config.max_line_bytes,
            )
            self._servers.append(server)
            self.unix_address = config.unix_path
        self._worker_task = asyncio.ensure_future(self._worker())
        logger.info(
            "daemon listening on %s%s (queue_limit=%d)",
            self.tcp_address,
            f" + {self.unix_address}" if self.unix_address else "",
            config.queue_limit,
        )

    async def _warm(self, path: str) -> None:
        """Replay the warm file through the service before accepting traffic."""
        queries = load_warm_queries(path)
        if not queries:
            return
        loop = asyncio.get_event_loop()
        started = time.perf_counter()
        cold = await loop.run_in_executor(self._executor, self.service.warm, queries)
        elapsed = time.perf_counter() - started
        self.warmed = len(queries)
        self.recorder.count("serve.warm.queries", len(queries))
        self.recorder.count("serve.warm.cold", cold)
        self.recorder.observe("serve.warm_seconds", elapsed)
        logger.info(
            "warmed %d queries from %s in %.2fs (%d were cold)",
            len(queries), path, elapsed, cold,
        )

    async def _warm_corpus(self) -> None:
        """Replay the service's plan corpus into its cache (no search runs)."""
        loop = asyncio.get_event_loop()
        started = time.perf_counter()
        warmed = await loop.run_in_executor(
            self._executor, self.service.warm_from_corpus
        )
        elapsed = time.perf_counter() - started
        self.corpus_warmed = warmed
        self.recorder.count("serve.corpus_warm.plans", warmed)
        self.recorder.observe("serve.corpus_warm_seconds", elapsed)
        logger.info(
            "pre-warmed %d plan(s) from the corpus in %.2fs", warmed, elapsed
        )

    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        """SIGTERM/SIGINT -> graceful drain (only valid on the main thread)."""
        import signal

        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum,
                lambda signum=signum: asyncio.ensure_future(
                    self._signalled(signum)
                ),
            )

    async def _signalled(self, signum: int) -> None:
        logger.info("signal %d: draining and shutting down", signum)
        await self.shutdown(drain=True)

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally answer everything queued, then close."""
        if self._closed.is_set():
            return
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if drain and self._queue is not None:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                logger.warning(
                    "drain timed out after %.1fs with %d requests still queued",
                    self.config.drain_timeout_s,
                    self._queue.qsize(),
                )
        if self._worker_task is not None:
            self._worker_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._worker_task
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.unix_address is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.unix_address)
        self._closed.set()
        logger.info("daemon closed")

    async def wait_closed(self) -> None:
        """Block until :meth:`shutdown` has completed (the CLI's main wait)."""
        await self._closed.wait()

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_mono

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer)
        self.recorder.count("serve.connections")
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as error:
                    # EOF; a trailing unterminated fragment is a torn frame.
                    if error.partial.strip():
                        await self._safe_send(
                            connection,
                            error_reply("bad_request", "unterminated final line"),
                        )
                        self.recorder.count("serve.bad_request")
                    break
                except asyncio.LimitOverrunError:
                    self.recorder.count("serve.line_too_long")
                    await self._safe_send(
                        connection,
                        error_reply(
                            "line_too_long",
                            f"lines are limited to {self.config.max_line_bytes} bytes",
                        ),
                    )
                    break  # the stream is desynchronized; close it
                if not line.strip():
                    continue
                await self._handle_line(connection, line)
        except (ConnectionResetError, BrokenPipeError):
            self.recorder.count("serve.client_gone")
        finally:
            with contextlib.suppress(ConnectionResetError, BrokenPipeError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(self, connection: _Connection, line: bytes) -> None:
        try:
            request = ServeRequest.parse(decode_message(line))
        except ReproError as error:
            self.recorder.count("serve.bad_request")
            await self._safe_send(connection, error_reply("bad_request", str(error)))
            return
        if request.op == "ping":
            await self._safe_send(
                connection,
                ok_reply(
                    request.request_id,
                    op="ping",
                    pid=os.getpid(),
                    uptime_s=self.uptime_s,
                ),
            )
            return
        if request.op == "stats":
            snapshot = self.recorder.snapshot()
            await self._safe_send(
                connection,
                ok_reply(request.request_id, op="stats", snapshot=snapshot.to_dict()),
            )
            return
        await self._admit_plan(connection, request)

    async def _admit_plan(self, connection: _Connection, request: ServeRequest) -> None:
        tenant = request.tenant or "_anonymous"
        self.recorder.count("serve.requests")
        self.recorder.count(f"serve.tenant.{tenant}.requests")
        if self._draining:
            await self._safe_send(
                connection,
                error_reply("draining", "daemon is shutting down", request.request_id),
            )
            self.recorder.count("serve.drain_refused")
            return
        if self.config.rate_limit_per_s is not None:
            bucket = self._buckets.get(tenant)
            now = time.monotonic()
            if bucket is None:
                rate = self.config.rate_limit_per_s
                burst = self.config.rate_limit_burst or max(1.0, rate)
                bucket = self._buckets[tenant] = TokenBucket(rate, burst, now)
            if not bucket.try_acquire(now):
                self.recorder.count("serve.rate_limited")
                self.recorder.count(f"serve.tenant.{tenant}.rate_limited")
                await self._safe_send(
                    connection,
                    error_reply(
                        "rate_limited",
                        f"tenant {tenant!r} exceeds "
                        f"{self.config.rate_limit_per_s:g} requests/s",
                        request.request_id,
                        retry_after_s=bucket.retry_after_s(),
                    ),
                )
                return
        assert self._queue is not None
        try:
            self._queue.put_nowait((connection, request))
        except asyncio.QueueFull:
            # Admission control: shedding at the door keeps queueing delay
            # bounded — the client gets a structured refusal it can back off
            # on instead of a timeout.
            self.recorder.count("serve.shed")
            self.recorder.count(f"serve.tenant.{tenant}.shed")
            await self._safe_send(
                connection,
                error_reply(
                    "overloaded",
                    f"request queue full ({self.config.queue_limit})",
                    request.request_id,
                    queue_depth=self._queue.qsize(),
                ),
            )
            return
        self.recorder.gauge("serve.queue_depth", self._queue.qsize())

    async def _safe_send(self, connection: _Connection, message: Dict[str, Any]) -> None:
        try:
            await connection.send(message)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            self.recorder.count("serve.client_gone")

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    async def _worker(self) -> None:
        """Drain the admission queue through the planning executor, forever."""
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        while True:
            connection, request = await self._queue.get()
            try:
                reply = await loop.run_in_executor(
                    self._executor, self._plan_blocking, request
                )
                await self._safe_send(connection, reply)
            except Exception:  # never let the worker die silently
                logger.exception("unexpected error answering %r", request.request_id)
                self.recorder.count("serve.internal_error")
                await self._safe_send(
                    connection,
                    error_reply("internal", "unexpected server error", request.request_id),
                )
            finally:
                self._queue.task_done()
                self.recorder.gauge("serve.queue_depth", self._queue.qsize())

    def _plan_blocking(self, request: ServeRequest) -> Dict[str, Any]:
        """Answer one plan request on the executor thread.

        The ``serve.request`` span is opened *here*, in the planning thread,
        so the service's own ``service.plan`` span nests under it through
        the thread's context — and a wire-supplied trace parent becomes the
        trace id every nested span (and the outcome's provenance) carries.
        """
        assert request.query is not None
        tenant = request.tenant or "_anonymous"
        query = request.query
        if self.config.shards is not None and query.shards == 1:
            # The daemon's default shard width; a query that asked for its
            # own (shards != 1 on the wire) keeps it.
            query = dataclasses.replace(query, shards=self.config.shards)
        with self.recorder.span(
            "serve.request", _parent=request.trace_parent, tenant=tenant
        ) as root:
            started = time.perf_counter()
            try:
                outcome = self.service.plan(query)
            except ReproError as error:
                self.recorder.count("serve.plan_failed")
                return error_reply("plan_failed", str(error), request.request_id)
            elapsed = time.perf_counter() - started
        self.recorder.observe("serve.request_seconds", elapsed)
        self.recorder.count("serve.ok")
        self.recorder.count(f"serve.tenant.{tenant}.ok")
        if request.include_plan:
            outcome_dict = outcome.to_dict()
        else:
            # The full ranked plan dominates the frame (tens of kB) and is
            # expensive to serialize; callers that only watch latency and
            # provenance (the load harness) get the headline numbers only.
            speedup = outcome.plan.speedup_over_default()
            outcome_dict = {
                "query": outcome.query.to_dict(),
                "num_candidates": outcome.num_candidates,
                "num_strategies": outcome.num_strategies,
                "best_seconds": (
                    outcome.plan.best.predicted_seconds
                    if outcome.plan.strategies
                    else None
                ),
                "speedup_over_default": speedup if speedup != float("inf") else None,
                "baseline_speedups": outcome.baseline_speedups(),
            }
            outcome_dict.update(outcome.provenance())
        reply = ok_reply(request.request_id, outcome=outcome_dict)
        if root.trace_id is not None:
            reply["trace_id"] = root.trace_id
        return reply


class DaemonThread:
    """Run a :class:`PlanDaemon` on a background thread with its own loop.

    The embedding tests and benchmarks use::

        with DaemonThread(service, config) as handle:
            client = PlanClient(*handle.address)
            ...

    ``stop(drain=True)`` (or context-manager exit) drains and joins.
    """

    def __init__(self, service, config: Optional[DaemonConfig] = None, recorder=None) -> None:
        self.service = service
        self.config = config if config is not None else DaemonConfig()
        self.recorder = recorder
        self.daemon: Optional[PlanDaemon] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "DaemonThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-daemon", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("daemon thread did not start within 30s")
        if self._startup_error is not None:
            raise ServeError(f"daemon failed to start: {self._startup_error}")
        return self

    def _thread_main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_event_loop()
        self.daemon = PlanDaemon(self.service, self.config, recorder=self.recorder)
        try:
            await self.daemon.start()
        except BaseException as error:  # surface bind errors to the caller
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self.daemon.wait_closed()

    @property
    def address(self) -> Tuple[str, int]:
        assert self.daemon is not None and self.daemon.tcp_address is not None
        return self.daemon.tcp_address

    def stop(self, drain: bool = True) -> None:
        if self.daemon is None or self._loop is None or self._thread is None:
            return
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.daemon.shutdown(drain=drain), self._loop
        )
        future.result(timeout=self.config.drain_timeout_s + 10)
        self._thread.join(timeout=10)

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
