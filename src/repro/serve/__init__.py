"""The planning daemon: hold live traffic against the planning service.

Three pieces:

* :mod:`repro.serve.protocol` — the wire format: newline-delimited JSON
  messages with length-guarded framing and a structured error vocabulary
  (``overloaded``, ``rate_limited``, ``bad_request``, ...).
* :mod:`repro.serve.daemon` — :class:`PlanDaemon`, the asyncio front end:
  TCP + Unix-domain listeners, a bounded admission queue with shedding,
  per-tenant token-bucket rate limits, warm-on-boot, SIGTERM drain, and
  ``serve.request`` root spans so wire trace ids land in plan provenance.
* :mod:`repro.serve.client` — :class:`PlanClient`, the blocking one-socket
  client the load harness and tests drive the daemon with.

Start one from the command line with ``repro-cli serve``; drive it with
``repro-cli loadgen`` (:mod:`repro.loadgen`).  Everything is stdlib-only.
"""

from repro.serve.client import PlanClient
from repro.serve.daemon import (
    DaemonConfig,
    DaemonThread,
    PlanDaemon,
    TokenBucket,
    load_warm_queries,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ServeRequest,
    decode_message,
    encode_message,
    error_reply,
    ok_reply,
)

__all__ = [
    "MAX_LINE_BYTES",
    "ServeRequest",
    "encode_message",
    "decode_message",
    "error_reply",
    "ok_reply",
    "DaemonConfig",
    "TokenBucket",
    "PlanDaemon",
    "DaemonThread",
    "load_warm_queries",
    "PlanClient",
]
