"""A small blocking client for the planning daemon.

:class:`PlanClient` owns one socket (TCP or Unix-domain) and speaks the
newline-delimited JSON protocol synchronously — the shape the load
harness's worker threads, the tests and ad-hoc scripts want.  It is *not*
thread-safe: one client per thread (a client is one connection; the daemon
multiplexes many connections, not many threads on one connection).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServeError
from repro.query import PlanQuery
from repro.serve.protocol import MAX_LINE_BYTES, decode_message, encode_message

__all__ = ["PlanClient"]


class PlanClient:
    """One blocking connection to a :class:`~repro.serve.daemon.PlanDaemon`.

    Exactly one of ``(host, port)`` or ``unix_path`` selects the transport.
    Replies longer than ``max_line_bytes`` abort the connection — the same
    bound the server applies to requests.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: float = 30.0,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        if unix_path is not None:
            if host is not None or port is not None:
                raise ServeError("pass host/port or unix_path, not both")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(unix_path)
            self.address: Tuple[Any, ...] = (unix_path,)
        else:
            if host is None or port is None:
                raise ServeError("PlanClient needs host and port (or unix_path)")
            sock = socket.create_connection((host, port), timeout=timeout)
            self.address = (host, port)
        self._sock = sock
        self._buffer = b""
        self.max_line_bytes = max_line_bytes

    # ------------------------------------------------------------------ #
    # Framing
    # ------------------------------------------------------------------ #
    def _read_line(self) -> bytes:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line, self._buffer = self._buffer[: newline + 1], self._buffer[newline + 1:]
                return line
            if len(self._buffer) > self.max_line_bytes:
                raise ServeError(
                    f"reply exceeds {self.max_line_bytes} bytes without a newline"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServeError("connection closed by the daemon")
            self._buffer += chunk

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, block for one reply."""
        try:
            self._sock.sendall(encode_message(message))
            return decode_message(self._read_line())
        except socket.timeout:
            raise ServeError("daemon did not reply within the client timeout")
        except (BrokenPipeError, ConnectionResetError) as error:
            raise ServeError(f"connection to the daemon lost: {error}")

    def send_raw(self, payload: bytes) -> Dict[str, Any]:
        """Ship raw bytes and read one reply (protocol tests)."""
        self._sock.sendall(payload)
        return decode_message(self._read_line())

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def plan(
        self,
        query: PlanQuery,
        tenant: Optional[str] = None,
        include_plan: bool = False,
        request_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Answer one query; returns the raw reply dict (check ``"ok"``).

        ``include_plan=False`` by default: monitoring callers want the
        provenance and the headline numbers, not the full ranked plan.
        """
        message: Dict[str, Any] = {"op": "plan", "query": query.to_dict()}
        if tenant is not None:
            message["tenant"] = tenant
        if request_id is not None:
            message["id"] = request_id
        if trace_id is not None:
            message["trace_id"] = trace_id
        message["include_plan"] = include_plan
        return self.request(message)

    def ping(self) -> Dict[str, Any]:
        reply = self.request({"op": "ping"})
        if not reply.get("ok"):
            raise ServeError(f"ping failed: {reply}")
        return reply

    def stats(self) -> Dict[str, Any]:
        """The daemon's live telemetry snapshot (``repro.obs/1`` schema)."""
        reply = self.request({"op": "stats"})
        if not reply.get("ok"):
            raise ServeError(f"stats failed: {reply}")
        return reply["snapshot"]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PlanClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
