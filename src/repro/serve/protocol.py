"""The daemon's wire protocol: newline-delimited JSON, length-guarded.

One message is one JSON object on one line, UTF-8 encoded, terminated by
``\\n`` — the same shape ``serve-batch --json`` already emits, so anything
that can produce a ``PlanQuery`` JSONL file can speak to the daemon with
``nc``.  The framing rules are deliberately boring:

* a line longer than the connection's ``max_line_bytes`` is a protocol
  violation — the server answers ``{"error": "line_too_long"}`` and closes
  the connection (an unbounded line is indistinguishable from a hostile or
  broken peer, and the read buffer must stay bounded);
* a line that is not a JSON object is answered with
  ``{"error": "bad_request"}`` and the connection *stays open* (a torn line
  from a well-behaved client should not kill its neighbours on the same
  connection);
* requests and replies carry an optional caller-chosen ``id`` so one
  connection can have several requests in flight.

A request is either a full envelope or a bare query::

    {"op": "plan", "query": {...PlanQuery.to_dict()...}, "tenant": "team-a",
     "id": "r1", "trace_id": "abc123", "include_plan": false}
    {"axes": [8, 4], "reduce": [0], "bytes": 67108864}

Ops: ``plan`` (default when a query is present), ``ping`` and ``stats``
(the daemon's live :class:`~repro.obs.RecorderSnapshot`, the currency the
load harness reports from).  Replies always carry ``"ok"``::

    {"ok": true, "id": "r1", "outcome": {...PlanOutcome.to_dict()...}}
    {"ok": false, "error": "overloaded", "detail": "queue full (64)"}

Error codes: ``bad_request``, ``line_too_long``, ``overloaded`` (admission
control shed the request), ``rate_limited`` (per-tenant token bucket),
``draining`` (the daemon is shutting down), ``plan_failed`` (the query was
well-formed but planning raised), ``internal``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServeError
from repro.query import PlanQuery

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "ServeRequest",
    "encode_message",
    "decode_message",
    "error_reply",
    "ok_reply",
]

# Default per-connection line limit.  PlanQuery dicts are a few hundred
# bytes; a megabyte leaves room for generous envelopes while keeping the
# per-connection buffer bounded.
MAX_LINE_BYTES = 1 << 20

OPS = ("plan", "ping", "stats")


def encode_message(message: Dict[str, Any]) -> bytes:
    """One JSON object as one newline-terminated UTF-8 line.

    Compact separators keep the frame small; ``json.dumps`` never emits raw
    newlines, so the line framing is safe for any JSON-serializable payload.
    """
    return json.dumps(message, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    ) + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a JSON object; :class:`ServeError` if not."""
    try:
        data = json.loads(line.decode("utf-8"))
    except UnicodeDecodeError as error:
        raise ServeError(f"message is not UTF-8: {error}")
    except json.JSONDecodeError as error:
        raise ServeError(f"message is not JSON: {error}")
    if not isinstance(data, dict):
        raise ServeError(
            f"message must be a JSON object, got {type(data).__name__}"
        )
    return data


def error_reply(
    code: str,
    detail: Optional[str] = None,
    request_id: Optional[str] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """The structured error shape every refusal uses."""
    reply: Dict[str, Any] = {"ok": False, "error": code}
    if detail is not None:
        reply["detail"] = detail
    if request_id is not None:
        reply["id"] = request_id
    reply.update(extra)
    return reply


def ok_reply(request_id: Optional[str] = None, **payload: Any) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        reply["id"] = request_id
    reply.update(payload)
    return reply


@dataclass(frozen=True)
class ServeRequest:
    """One parsed request: op, query, tenancy and trace metadata."""

    op: str
    query: Optional[PlanQuery] = None
    tenant: Optional[str] = None
    request_id: Optional[str] = None
    include_plan: bool = True
    # (trace_id, span_id) shipped by the caller: the daemon's serve.request
    # root span attaches to it, so the wire's trace id flows into
    # PlanOutcome.provenance() unchanged.
    trace_parent: Optional[Tuple[str, str]] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, data: Dict[str, Any]) -> "ServeRequest":
        """Parse a decoded message; :class:`ServeError` on any bad shape."""
        request_id = data.get("id")
        if request_id is not None and not isinstance(request_id, str):
            raise ServeError(f"'id' must be a string, got {request_id!r}")
        op = data.get("op")
        if op is None:
            # A bare PlanQuery dict (or a {"query": ...} envelope) is a plan.
            op = "plan" if ("query" in data or "axes" in data) else None
        if op not in OPS:
            raise ServeError(
                f"unknown op {op!r}; expected one of {list(OPS)} "
                "(or a bare plan-query object)"
            )
        tenant = data.get("tenant")
        if tenant is not None:
            if not isinstance(tenant, str) or not tenant:
                raise ServeError(f"'tenant' must be a non-empty string, got {tenant!r}")
            if len(tenant) > 128:
                raise ServeError("'tenant' must be at most 128 characters")
        include_plan = data.get("include_plan", True)
        if not isinstance(include_plan, bool):
            raise ServeError(
                f"'include_plan' must be a boolean, got {include_plan!r}"
            )
        trace_parent = None
        trace_id = data.get("trace_id")
        if trace_id is not None:
            if not isinstance(trace_id, str) or not trace_id:
                raise ServeError(f"'trace_id' must be a non-empty string, got {trace_id!r}")
            span_id = data.get("span_id")
            if span_id is not None and (not isinstance(span_id, str) or not span_id):
                raise ServeError(f"'span_id' must be a non-empty string, got {span_id!r}")
            trace_parent = (trace_id, span_id or "client")
        query = None
        if op == "plan":
            payload = data.get("query", data)
            # ServeError is a QueryError sibling; normalize everything the
            # query layer raises into the protocol's error vocabulary.
            query = PlanQuery.from_dict(payload)
        return cls(
            op=op,
            query=query,
            tenant=tenant,
            request_id=request_id,
            include_plan=include_plan,
            trace_parent=trace_parent,
        )
