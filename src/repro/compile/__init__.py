"""Emission of lowered programs as XLA-style collective operations.

The paper's implementation lowers synthesized programs "into sequences of XLA
collective operations, which in turn result in sequences of NCCL calls".
:mod:`repro.compile.xla` provides the equivalent artefact for this
reproduction: an HLO-like textual module with one collective op per step
(including ``replica_groups``), plus a parser so programs can be round-tripped
and inspected by external tooling.
"""

from repro.compile.xla import (
    XlaCollectiveOp,
    XlaModule,
    emit_xla_module,
    parse_xla_module,
    program_from_module,
)

__all__ = [
    "XlaCollectiveOp",
    "XlaModule",
    "emit_xla_module",
    "parse_xla_module",
    "program_from_module",
]
