"""HLO-like emission and parsing of lowered reduction programs.

One lowered step becomes one collective instruction operating on a
per-device buffer of ``element_count`` elements:

.. code-block:: text

    HloModule p2_reduction, num_devices=32

    %step0 = f32[8388608] reduce-scatter(%param), replica_groups={{0,1,2,3},{4,5,6,7}}, channel_id=1
    %step1 = f32[2097152] all-reduce(%step0), replica_groups={{0,4},{1,5},{2,6},{3,7}}, channel_id=2
    %step2 = f32[8388608] all-gather(%step1), replica_groups={{0,1,2,3},{4,5,6,7}}, channel_id=3

    ROOT %result = f32[8388608] tuple(%step2)

The shapes track how the per-device payload shrinks after a ReduceScatter and
grows back after an AllGather, mirroring what XLA would emit.  ``reduce`` and
``broadcast`` steps are emitted with the group's first device as the root
(``root=<device>`` attribute), matching the convention used throughout the
paper and this library.

:func:`parse_xla_module` inverts the emission so programs can be round-tripped
(tested) or produced by external tools and re-imported.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.semantics.collectives import Collective
from repro.synthesis.lowering import LoweredProgram, LoweredStep

__all__ = [
    "XlaCollectiveOp",
    "XlaModule",
    "emit_xla_module",
    "parse_xla_module",
    "program_from_module",
]

_OPCODES = {
    Collective.ALL_REDUCE: "all-reduce",
    Collective.REDUCE_SCATTER: "reduce-scatter",
    Collective.ALL_GATHER: "all-gather",
    Collective.REDUCE: "reduce",
    Collective.BROADCAST: "broadcast",
}
_COLLECTIVES = {opcode: op for op, opcode in _OPCODES.items()}


@dataclass(frozen=True)
class XlaCollectiveOp:
    """One emitted collective instruction."""

    name: str
    opcode: str
    operand: str
    element_count: int
    dtype: str
    replica_groups: Tuple[Tuple[int, ...], ...]
    channel_id: int
    root: Optional[int] = None

    @property
    def collective(self) -> Collective:
        if self.opcode not in _COLLECTIVES:
            raise ReproError(f"unknown collective opcode {self.opcode!r}")
        return _COLLECTIVES[self.opcode]

    def render(self) -> str:
        groups = ",".join(
            "{" + ",".join(str(d) for d in group) + "}" for group in self.replica_groups
        )
        attributes = f"replica_groups={{{groups}}}, channel_id={self.channel_id}"
        if self.root is not None:
            attributes += f", root={self.root}"
        return (
            f"%{self.name} = {self.dtype}[{self.element_count}] "
            f"{self.opcode}(%{self.operand}), {attributes}"
        )


@dataclass(frozen=True)
class XlaModule:
    """A textual module: metadata plus the ordered collective ops."""

    name: str
    num_devices: int
    element_count: int
    dtype: str
    ops: Tuple[XlaCollectiveOp, ...]

    def render(self) -> str:
        lines = [f"HloModule {self.name}, num_devices={self.num_devices}", ""]
        for op in self.ops:
            lines.append(op.render())
        final_elements = self.ops[-1].element_count if self.ops else self.element_count
        final_operand = self.ops[-1].name if self.ops else "param"
        lines.append("")
        lines.append(
            f"ROOT %result = {self.dtype}[{final_elements}] tuple(%{final_operand})"
        )
        return "\n".join(lines)


def emit_xla_module(
    program: LoweredProgram,
    element_count: int,
    dtype: str = "f32",
    module_name: str = "p2_reduction",
) -> XlaModule:
    """Emit ``program`` as an XLA-style module over per-device buffers."""
    if element_count < 1:
        raise ReproError("element_count must be >= 1")
    ops: List[XlaCollectiveOp] = []
    operand = "param"
    current_elements = element_count
    for index, step in enumerate(program.steps):
        group_size = step.group_size
        if step.collective == Collective.REDUCE_SCATTER:
            if current_elements % group_size != 0:
                raise ReproError(
                    f"step {index}: {current_elements} elements are not divisible by the "
                    f"group size {group_size}"
                )
            current_elements //= group_size
        elif step.collective == Collective.ALL_GATHER:
            current_elements *= group_size
        root = step.groups[0][0] if step.collective.is_rooted else None
        op = XlaCollectiveOp(
            name=f"step{index}",
            opcode=_OPCODES[step.collective],
            operand=operand,
            element_count=current_elements,
            dtype=dtype,
            replica_groups=step.groups,
            channel_id=index + 1,
            root=root,
        )
        ops.append(op)
        operand = op.name
    return XlaModule(
        name=module_name,
        num_devices=program.num_devices,
        element_count=element_count,
        dtype=dtype,
        ops=tuple(ops),
    )


# --------------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------------- #
_HEADER_RE = re.compile(r"^HloModule\s+(?P<name>[\w.-]+),\s*num_devices=(?P<devices>\d+)\s*$")
_OP_RE = re.compile(
    r"^%(?P<name>\w+)\s*=\s*(?P<dtype>\w+)\[(?P<elements>\d+)\]\s*"
    r"(?P<opcode>[a-z-]+)\(%(?P<operand>\w+)\),\s*"
    r"replica_groups=\{(?P<groups>.*)\},\s*channel_id=(?P<channel>\d+)"
    r"(?:,\s*root=(?P<root>\d+))?\s*$"
)
_ROOT_RE = re.compile(r"^ROOT\s+%\w+\s*=.*$")


def _parse_groups(text: str) -> Tuple[Tuple[int, ...], ...]:
    groups: List[Tuple[int, ...]] = []
    for match in re.finditer(r"\{([^{}]*)\}", text):
        body = match.group(1).strip()
        if not body:
            raise ReproError("empty replica group")
        groups.append(tuple(int(token) for token in body.split(",")))
    if not groups:
        raise ReproError(f"could not parse replica groups from {text!r}")
    return tuple(groups)


def parse_xla_module(text: str) -> XlaModule:
    """Parse a module previously produced by :func:`emit_xla_module`."""
    name = ""
    num_devices = 0
    ops: List[XlaCollectiveOp] = []
    first_elements: Optional[int] = None
    dtype = "f32"
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or _ROOT_RE.match(line):
            continue
        header = _HEADER_RE.match(line)
        if header:
            name = header.group("name")
            num_devices = int(header.group("devices"))
            continue
        op_match = _OP_RE.match(line)
        if not op_match:
            raise ReproError(f"cannot parse line: {raw_line!r}")
        opcode = op_match.group("opcode")
        if opcode not in _COLLECTIVES:
            raise ReproError(f"unknown collective opcode {opcode!r}")
        op = XlaCollectiveOp(
            name=op_match.group("name"),
            opcode=opcode,
            operand=op_match.group("operand"),
            element_count=int(op_match.group("elements")),
            dtype=op_match.group("dtype"),
            replica_groups=_parse_groups(op_match.group("groups")),
            channel_id=int(op_match.group("channel")),
            root=int(op_match.group("root")) if op_match.group("root") else None,
        )
        dtype = op.dtype
        if first_elements is None:
            first_elements = op.element_count
            if op.collective == Collective.REDUCE_SCATTER:
                first_elements = op.element_count * len(op.replica_groups[0])
        ops.append(op)
    if not name or num_devices == 0:
        raise ReproError("module header missing or malformed")
    return XlaModule(
        name=name,
        num_devices=num_devices,
        element_count=first_elements or 1,
        dtype=dtype,
        ops=tuple(ops),
    )


def program_from_module(module: XlaModule, label: str = "") -> LoweredProgram:
    """Rebuild a :class:`LoweredProgram` from a parsed module."""
    steps = tuple(
        LoweredStep(collective=op.collective, groups=op.replica_groups) for op in module.ops
    )
    return LoweredProgram(
        num_devices=module.num_devices,
        steps=steps,
        source=None,
        label=label or module.name,
    )
