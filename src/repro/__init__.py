"""repro — a reproduction of P² (MLSys 2022).

P² synthesizes (1) parallelism placements — mappings of parallelism axes onto
a hierarchical accelerator system expressed as *parallelism matrices* — and
(2) hierarchy-aware reduction strategies — sequences of collective operations
implementing a requested reduction — and ranks them with a topology-aware
simulator.

The most convenient entry point is :class:`repro.api.P2`:

    >>> from repro import P2, ParallelismAxes, ReductionRequest
    >>> from repro.topology import a100_system
    >>> system = a100_system(num_nodes=2)
    >>> p2 = P2(system)
    >>> plan = p2.optimize(ParallelismAxes.of(8, 4), ReductionRequest.over(0),
    ...                    bytes_per_device=1 << 20)    # doctest: +SKIP

Lower-level building blocks live in the subpackages listed in ``DESIGN.md``.
"""

import logging as _logging

from repro._version import __version__
from repro.hierarchy import (
    DevicePlacement,
    ParallelismAxes,
    ParallelismMatrix,
    ReductionRequest,
    SystemHierarchy,
    enumerate_parallelism_matrices,
)
from repro.semantics import Collective
from repro.synthesis import (
    HierarchyVariant,
    LoweredProgram,
    build_synthesis_hierarchy,
    synthesize_all,
    synthesize_programs,
)

# Library logging etiquette: the package logs under the "repro" hierarchy and
# emits nothing unless the application configures handlers (the CLI's
# --verbose flags do; see repro.cli).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "__version__",
    "SystemHierarchy",
    "ParallelismAxes",
    "ReductionRequest",
    "ParallelismMatrix",
    "DevicePlacement",
    "enumerate_parallelism_matrices",
    "Collective",
    "HierarchyVariant",
    "LoweredProgram",
    "build_synthesis_hierarchy",
    "synthesize_programs",
    "synthesize_all",
    "P2",
    "PlanningService",
    "PlanQuery",
    "PlanOutcome",
    "Planner",
]


def __getattr__(name: str):
    # Imported lazily to keep `import repro` cheap for users who only need the
    # core data structures and to avoid importing the topology/cost stack
    # before it is needed.
    if name == "P2":
        from repro.api import P2

        return P2
    if name == "PlanningService":
        from repro.service.engine import PlanningService

        return PlanningService
    if name in ("PlanQuery", "PlanOutcome", "Planner"):
        import repro.query

        return getattr(repro.query, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
