"""JSON persistence for sweep results.

Only plain data is stored: configurations are flattened to their constructor
arguments and each program keeps its label, mnemonic, size and the two times.
Loading therefore does not reconstruct lowered programs (they can always be
re-synthesized deterministically from the configuration); it reconstructs
everything the tables, figures and statistics need.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.config import ExperimentConfig, SystemKind
from repro.evaluation.runner import MatrixResult, ProgramResult, SweepResult
from repro.hierarchy.matrix import ParallelismMatrix
from repro.hierarchy.parallelism import ParallelismAxes
from repro.hierarchy.levels import SystemHierarchy

__all__ = ["results_to_json", "results_from_json", "save_results", "load_results"]

FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
def _config_to_dict(config: ExperimentConfig) -> Dict:
    return {
        "name": config.name,
        "system": config.system.value,
        "num_nodes": config.num_nodes,
        "axes": list(config.axes),
        "reduction_axes": list(config.reduction_axes),
        "algorithm": config.algorithm.value,
        "payload_scale": config.payload_scale,
        "max_program_size": config.max_program_size,
    }


def _program_to_dict(program: ProgramResult) -> Dict:
    return {
        "label": program.label,
        "mnemonic": program.mnemonic,
        "size": program.size,
        "num_steps": program.num_steps,
        "predicted_seconds": program.predicted_seconds,
        "measured_seconds": program.measured_seconds,
        "is_default_all_reduce": program.is_default_all_reduce,
    }


def _matrix_to_dict(matrix: MatrixResult) -> Dict:
    return {
        "entries": [list(row) for row in matrix.matrix.entries],
        "synthesis_seconds": matrix.synthesis_seconds,
        "programs": [_program_to_dict(p) for p in matrix.programs],
    }


def results_to_json(results: Sequence[SweepResult]) -> str:
    """Serialize sweep results to a JSON string."""
    payload = {
        "format_version": FORMAT_VERSION,
        "results": [
            {
                "config": _config_to_dict(result.config),
                "synthesis_seconds": result.synthesis_seconds,
                "prediction_seconds": result.prediction_seconds,
                "measurement_seconds": result.measurement_seconds,
                "matrices": [_matrix_to_dict(m) for m in result.matrices],
            }
            for result in results
        ],
    }
    return json.dumps(payload, indent=2)


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
def _config_from_dict(data: Dict) -> ExperimentConfig:
    return ExperimentConfig(
        name=data["name"],
        system=SystemKind(data["system"]),
        num_nodes=data["num_nodes"],
        axes=tuple(data["axes"]),
        reduction_axes=tuple(data["reduction_axes"]),
        algorithm=NCCLAlgorithm(data["algorithm"]),
        payload_scale=data["payload_scale"],
        max_program_size=data["max_program_size"],
    )


def _matrix_from_dict(data: Dict, config: ExperimentConfig) -> MatrixResult:
    hierarchy: SystemHierarchy = config.topology().hierarchy
    axes: ParallelismAxes = config.parallelism()
    matrix = ParallelismMatrix(
        hierarchy, axes, tuple(tuple(row) for row in data["entries"])
    )
    programs = [
        ProgramResult(
            label=p["label"],
            mnemonic=p["mnemonic"],
            size=p["size"],
            num_steps=p["num_steps"],
            predicted_seconds=p["predicted_seconds"],
            measured_seconds=p["measured_seconds"],
            is_default_all_reduce=p["is_default_all_reduce"],
        )
        for p in data["programs"]
    ]
    return MatrixResult(
        matrix=matrix,
        programs=programs,
        synthesis_seconds=data["synthesis_seconds"],
    )


def results_from_json(text: str) -> List[SweepResult]:
    """Deserialize sweep results from :func:`results_to_json` output."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise EvaluationError(
            f"unsupported sweep-result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    results: List[SweepResult] = []
    for entry in payload["results"]:
        config = _config_from_dict(entry["config"])
        matrices = [_matrix_from_dict(m, config) for m in entry["matrices"]]
        results.append(
            SweepResult(
                config=config,
                matrices=matrices,
                synthesis_seconds=entry["synthesis_seconds"],
                prediction_seconds=entry["prediction_seconds"],
                measurement_seconds=entry["measurement_seconds"],
            )
        )
    return results


# --------------------------------------------------------------------------- #
# Files
# --------------------------------------------------------------------------- #
def save_results(results: Sequence[SweepResult], path: Union[str, Path]) -> Path:
    """Write sweep results to ``path`` as JSON; return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_json(results))
    return path


def load_results(path: Union[str, Path]) -> List[SweepResult]:
    """Read sweep results previously written by :func:`save_results`."""
    return results_from_json(Path(path).read_text())
