"""JSON persistence for sweep results.

Only plain data is stored: configurations are flattened to their constructor
arguments and each program keeps its label, mnemonic, size and the two times.
Loading therefore does not reconstruct lowered programs (they can always be
re-synthesized deterministically from the configuration); it reconstructs
everything the tables, figures and statistics need.

Two formats share the same building blocks:

* :func:`results_to_json` / :func:`results_from_json` — one JSON document
  for a whole result list (``repro-cli sweep --save``).
* :func:`result_to_record` / :func:`result_from_record` — one self-contained
  dict per scenario, written as JSONL by
  :meth:`~repro.evaluation.runner.SweepRunner.run_stream` (one flushed line
  per scenario = a resumable checkpoint).  Records carry the scenario name,
  the canonical :class:`~repro.query.PlanQuery` dict and the
  :class:`~repro.query.PlanOutcome` provenance next to the result proper.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.cost.nccl import NCCLAlgorithm
from repro.errors import EvaluationError
from repro.evaluation.config import ExperimentConfig, SystemKind
from repro.evaluation.runner import MatrixResult, ProgramResult, SweepResult
from repro.hierarchy.matrix import ParallelismMatrix
from repro.hierarchy.parallelism import ParallelismAxes
from repro.hierarchy.levels import SystemHierarchy

__all__ = [
    "results_to_json",
    "results_from_json",
    "save_results",
    "load_results",
    "result_to_record",
    "result_from_record",
    "load_jsonl_results",
    "iter_jsonl_records",
]

FORMAT_VERSION = 1
SWEEP_RECORD_VERSION = 1


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
def _config_to_dict(config: ExperimentConfig) -> Dict:
    return {
        "name": config.name,
        "system": config.system.value,
        "num_nodes": config.num_nodes,
        "axes": list(config.axes),
        "reduction_axes": list(config.reduction_axes),
        "algorithm": config.algorithm.value,
        "payload_scale": config.payload_scale,
        "max_program_size": config.max_program_size,
    }


def _program_to_dict(program: ProgramResult) -> Dict:
    return {
        "label": program.label,
        "mnemonic": program.mnemonic,
        "size": program.size,
        "num_steps": program.num_steps,
        "predicted_seconds": program.predicted_seconds,
        "measured_seconds": program.measured_seconds,
        "is_default_all_reduce": program.is_default_all_reduce,
    }


def _matrix_to_dict(matrix: MatrixResult) -> Dict:
    return {
        "entries": [list(row) for row in matrix.matrix.entries],
        "synthesis_seconds": matrix.synthesis_seconds,
        "programs": [_program_to_dict(p) for p in matrix.programs],
    }


def results_to_json(results: Sequence[SweepResult]) -> str:
    """Serialize sweep results to a JSON string."""
    payload = {
        "format_version": FORMAT_VERSION,
        "results": [
            {
                "config": _config_to_dict(result.config),
                "synthesis_seconds": result.synthesis_seconds,
                "prediction_seconds": result.prediction_seconds,
                "measurement_seconds": result.measurement_seconds,
                "provenance": result.provenance(),
                "baseline_speedups": result.baseline_speedups,
                "matrices": [_matrix_to_dict(m) for m in result.matrices],
            }
            for result in results
        ],
    }
    return json.dumps(payload, indent=2)


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
def _config_from_dict(data: Dict) -> ExperimentConfig:
    return ExperimentConfig(
        name=data["name"],
        system=SystemKind(data["system"]),
        num_nodes=data["num_nodes"],
        axes=tuple(data["axes"]),
        reduction_axes=tuple(data["reduction_axes"]),
        algorithm=NCCLAlgorithm(data["algorithm"]),
        payload_scale=data["payload_scale"],
        max_program_size=data["max_program_size"],
    )


def _matrix_from_dict(data: Dict, config: ExperimentConfig) -> MatrixResult:
    hierarchy: SystemHierarchy = config.topology().hierarchy
    axes: ParallelismAxes = config.parallelism()
    matrix = ParallelismMatrix(
        hierarchy, axes, tuple(tuple(row) for row in data["entries"])
    )
    programs = [
        ProgramResult(
            label=p["label"],
            mnemonic=p["mnemonic"],
            size=p["size"],
            num_steps=p["num_steps"],
            predicted_seconds=p["predicted_seconds"],
            measured_seconds=p["measured_seconds"],
            is_default_all_reduce=p["is_default_all_reduce"],
        )
        for p in data["programs"]
    ]
    return MatrixResult(
        matrix=matrix,
        programs=programs,
        synthesis_seconds=data["synthesis_seconds"],
    )


def results_from_json(text: str) -> List[SweepResult]:
    """Deserialize sweep results from :func:`results_to_json` output."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise EvaluationError(
            f"unsupported sweep-result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    results: List[SweepResult] = []
    for entry in payload["results"]:
        config = _config_from_dict(entry["config"])
        matrices = [_matrix_from_dict(m, config) for m in entry["matrices"]]
        provenance = entry.get("provenance", {})
        results.append(
            SweepResult(
                config=config,
                matrices=matrices,
                synthesis_seconds=entry["synthesis_seconds"],
                prediction_seconds=entry["prediction_seconds"],
                measurement_seconds=entry["measurement_seconds"],
                cache_tier=provenance.get("cache_tier"),
                fingerprint=provenance.get("fingerprint"),
                planner_seconds=provenance.get("planner_seconds", 0.0),
                n_workers=provenance.get("n_workers", 1),
                profile_hits=provenance.get("profile_hits", 0),
                profile_misses=provenance.get("profile_misses", 0),
                search=provenance.get("search"),
                synthesis_stats=provenance.get("synthesis_stats"),
                baseline_speedups=entry.get("baseline_speedups"),
                trace_id=provenance.get("trace_id"),
            )
        )
    return results


# --------------------------------------------------------------------------- #
# Per-scenario records (the JSONL checkpoint format of SweepRunner.run_stream)
# --------------------------------------------------------------------------- #
def result_to_record(result: SweepResult, query: Optional[Dict] = None) -> Dict:
    """One self-contained JSONL record for one scenario's result.

    ``query`` is the scenario's canonical ``PlanQuery.to_dict()``; resume
    matches records by (scenario name, query), so a renamed or re-shaped
    scenario is recomputed rather than wrongly restored.
    """
    return {
        "format_version": SWEEP_RECORD_VERSION,
        "scenario": result.config.name,
        "config": _config_to_dict(result.config),
        "query": query,
        "provenance": result.provenance(),
        "baseline_speedups": result.baseline_speedups,
        "matrices": [_matrix_to_dict(m) for m in result.matrices],
    }


def result_from_record(data: Dict) -> SweepResult:
    """Rebuild a :class:`SweepResult` from :func:`result_to_record` output."""
    version = data.get("format_version")
    if version != SWEEP_RECORD_VERSION:
        raise EvaluationError(
            f"unsupported sweep-record format version {version!r} "
            f"(expected {SWEEP_RECORD_VERSION})"
        )
    config = _config_from_dict(data["config"])
    matrices = [_matrix_from_dict(m, config) for m in data["matrices"]]
    provenance = data.get("provenance", {})
    return SweepResult(
        config=config,
        matrices=matrices,
        synthesis_seconds=provenance.get("synthesis_seconds", 0.0),
        prediction_seconds=provenance.get("evaluation_seconds", 0.0),
        measurement_seconds=provenance.get("measurement_seconds", 0.0),
        cache_tier=provenance.get("cache_tier"),
        fingerprint=provenance.get("fingerprint"),
        planner_seconds=provenance.get("planner_seconds", 0.0),
        n_workers=provenance.get("n_workers", 1),
        profile_hits=provenance.get("profile_hits", 0),
        profile_misses=provenance.get("profile_misses", 0),
        search=provenance.get("search"),
        synthesis_stats=provenance.get("synthesis_stats"),
        baseline_speedups=data.get("baseline_speedups"),
        trace_id=provenance.get("trace_id"),
    )


def load_jsonl_results(path: Union[str, Path]) -> List[SweepResult]:
    """Load every record of a :meth:`SweepRunner.run_stream` JSONL checkpoint.

    The last record wins for a repeated scenario name (a resumed sweep whose
    query changed appends a superseding record); order follows first
    appearance.
    """
    by_name: Dict[str, SweepResult] = {}
    for record in iter_jsonl_records(path):
        by_name[record.get("scenario", "")] = result_from_record(record)
    return list(by_name.values())


def iter_jsonl_records(path: Union[str, Path]) -> Iterator[Dict]:
    """Parsed records of a JSONL checkpoint, tolerating a torn trailing line."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a partially written (interrupted) trailing line
            if isinstance(record, dict):
                yield record


# --------------------------------------------------------------------------- #
# Files
# --------------------------------------------------------------------------- #
def save_results(results: Sequence[SweepResult], path: Union[str, Path]) -> Path:
    """Write sweep results to ``path`` as JSON; return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_json(results))
    return path


def load_results(path: Union[str, Path]) -> List[SweepResult]:
    """Read sweep results previously written by :func:`save_results`."""
    return results_from_json(Path(path).read_text())
