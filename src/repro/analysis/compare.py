"""Comparing two sweeps of the same configurations.

Typical uses: ring vs. tree (``NCCL_ALGO``), two cost-model settings, or the
effect of a topology change (e.g. doubling the NIC bandwidth) on which
placements and strategies win.  Results are matched by configuration name and
parallelism matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import EvaluationError
from repro.evaluation.runner import MatrixResult, SweepResult
from repro.utils.tabulate import format_table

__all__ = ["MatrixComparison", "SweepComparison", "compare_sweeps"]


@dataclass(frozen=True)
class MatrixComparison:
    """Best-strategy comparison for one (configuration, matrix) pair."""

    config_name: str
    matrix_description: str
    left_seconds: float
    right_seconds: float
    left_program: str
    right_program: str

    @property
    def ratio(self) -> float:
        """``left / right``: > 1 means the right sweep is faster."""
        if self.right_seconds <= 0:
            return 1.0
        return self.left_seconds / self.right_seconds

    @property
    def same_strategy(self) -> bool:
        return self.left_program == self.right_program


@dataclass(frozen=True)
class SweepComparison:
    """All matched (configuration, matrix) comparisons between two sweeps."""

    left_label: str
    right_label: str
    comparisons: Tuple[MatrixComparison, ...]

    @property
    def num_matched(self) -> int:
        return len(self.comparisons)

    @property
    def right_wins(self) -> int:
        return sum(1 for c in self.comparisons if c.ratio > 1.05)

    @property
    def left_wins(self) -> int:
        return sum(1 for c in self.comparisons if c.ratio < 1 / 1.05)

    @property
    def strategy_changes(self) -> int:
        return sum(1 for c in self.comparisons if not c.same_strategy)

    def describe(self) -> str:
        rows = [
            [
                c.config_name,
                c.matrix_description,
                c.left_seconds,
                c.right_seconds,
                c.ratio,
                c.left_program,
                c.right_program,
            ]
            for c in self.comparisons
        ]
        table = format_table(
            [
                "config",
                "matrix",
                f"{self.left_label} (s)",
                f"{self.right_label} (s)",
                "ratio",
                f"{self.left_label} strategy",
                f"{self.right_label} strategy",
            ],
            rows,
            title=f"{self.left_label} vs {self.right_label}",
            float_fmt="{:.3f}",
        )
        footer = (
            f"\n{self.right_label} faster on {self.right_wins}/{self.num_matched} mappings, "
            f"{self.left_label} faster on {self.left_wins}; "
            f"optimal strategy changes on {self.strategy_changes}"
        )
        return table + footer


def _index(results: Sequence[SweepResult]) -> Dict[Tuple[str, str], MatrixResult]:
    index: Dict[Tuple[str, str], MatrixResult] = {}
    for result in results:
        base_name = result.config.name.rsplit("-ring", 1)[0].rsplit("-tree", 1)[0]
        for matrix in result.matrices:
            index[(base_name, matrix.matrix_description)] = matrix
    return index


def compare_sweeps(
    left: Sequence[SweepResult],
    right: Sequence[SweepResult],
    left_label: str = "left",
    right_label: str = "right",
) -> SweepComparison:
    """Match the two result sets by (configuration, matrix) and compare bests.

    Configuration names are matched after stripping a trailing ``-ring`` /
    ``-tree`` suffix so that algorithm comparisons produced via
    :meth:`ExperimentConfig.with_algorithm` line up.
    """
    left_index = _index(left)
    right_index = _index(right)
    matched_keys = sorted(set(left_index) & set(right_index))
    if not matched_keys:
        raise EvaluationError("the two sweeps share no (configuration, matrix) pairs")

    comparisons: List[MatrixComparison] = []
    for key in matched_keys:
        left_matrix = left_index[key]
        right_matrix = right_index[key]
        left_best = left_matrix.best()
        right_best = right_matrix.best()
        if left_best is None or right_best is None:
            continue
        comparisons.append(
            MatrixComparison(
                config_name=key[0],
                matrix_description=key[1],
                left_seconds=left_best.evaluation_seconds,
                right_seconds=right_best.evaluation_seconds,
                left_program=left_best.mnemonic,
                right_program=right_best.mnemonic,
            )
        )
    return SweepComparison(
        left_label=left_label,
        right_label=right_label,
        comparisons=tuple(comparisons),
    )
