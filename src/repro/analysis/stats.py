"""Aggregate statistics over sweep results.

The paper's abstract summarises its evaluation as: "for 69% of parallelism
placements and user requested reductions, our framework synthesizes programs
that outperform the default all-reduce implementation (max 2.04x, average
1.27x)".  :func:`summarize_results` computes exactly those aggregates (plus a
few more) over any set of sweep results, so the reproduction's numbers can be
placed side by side with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import EvaluationError
from repro.evaluation.runner import SweepResult
from repro.utils.tabulate import format_table

__all__ = ["SpeedupSummary", "summarize_results", "render_summary"]


@dataclass(frozen=True)
class SpeedupSummary:
    """Speedup statistics over a set of (configuration, matrix) mappings."""

    num_configurations: int
    num_mappings: int
    num_outperforming: int
    average_speedup_outperforming: float
    average_speedup_all: float
    max_speedup: float
    max_speedup_matrix: str
    median_speedup: float

    @property
    def fraction_outperforming(self) -> float:
        if self.num_mappings == 0:
            return 0.0
        return self.num_outperforming / self.num_mappings

    def describe(self) -> str:
        return (
            f"{self.num_mappings} mappings over {self.num_configurations} configurations; "
            f"synthesized programs outperform AllReduce for "
            f"{self.fraction_outperforming * 100:.0f}% of mappings "
            f"(average {self.average_speedup_outperforming:.2f}x over those, "
            f"max {self.max_speedup:.2f}x on {self.max_speedup_matrix}); "
            f"paper: 69%, average 1.27x, max 2.04x"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    middle = n // 2
    if n % 2 == 1:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def summarize_results(
    results: Sequence[SweepResult], outperform_threshold: float = 1.05
) -> SpeedupSummary:
    """Compute the abstract-style speedup summary over ``results``.

    A mapping counts as "outperforming" when its best synthesized program is
    at least ``outperform_threshold`` times faster than the default AllReduce
    (5% by default, to avoid counting noise-level wins).
    """
    if not results:
        raise EvaluationError("summarize_results needs at least one sweep result")
    speedups: List[Tuple[float, str]] = []
    for result in results:
        for matrix in result.matrices:
            baseline = matrix.all_reduce
            if baseline is None or baseline.evaluation_seconds <= 0:
                continue
            speedup = matrix.speedup_over_all_reduce()
            if speedup is None:
                continue
            speedups.append((speedup, matrix.matrix_description))
    if not speedups:
        raise EvaluationError("no mappings with a measurable AllReduce baseline")

    values = [s for s, _ in speedups]
    outperforming = [s for s in values if s >= outperform_threshold]
    max_speedup, max_matrix = max(speedups, key=lambda pair: pair[0])
    return SpeedupSummary(
        num_configurations=len(results),
        num_mappings=len(values),
        num_outperforming=len(outperforming),
        average_speedup_outperforming=(
            sum(outperforming) / len(outperforming) if outperforming else 1.0
        ),
        average_speedup_all=sum(values) / len(values),
        max_speedup=max_speedup,
        max_speedup_matrix=max_matrix,
        median_speedup=_median(values),
    )


def render_summary(results_by_group: Dict[str, Sequence[SweepResult]]) -> str:
    """Render one summary row per group (e.g. per system) plus a total row."""
    rows = []
    all_results: List[SweepResult] = []
    for group, results in results_by_group.items():
        all_results.extend(results)
        summary = summarize_results(results)
        rows.append(
            [
                group,
                summary.num_mappings,
                summary.fraction_outperforming * 100,
                summary.average_speedup_outperforming,
                summary.max_speedup,
            ]
        )
    total = summarize_results(all_results)
    rows.append(
        [
            "Total",
            total.num_mappings,
            total.fraction_outperforming * 100,
            total.average_speedup_outperforming,
            total.max_speedup,
        ]
    )
    return format_table(
        ["group", "mappings", "outperforming (%)", "avg speedup", "max speedup"],
        rows,
        title="Synthesized strategies vs AllReduce (paper abstract: 69%, 1.27x avg, 2.04x max)",
    )
