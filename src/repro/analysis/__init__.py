"""Post-processing of sweep results: persistence, statistics and comparisons.

The evaluation harness can take minutes at paper-scale payloads, so results
should be produced once and analysed many times:

* :mod:`repro.analysis.serialization` — save/load sweep results as JSON.
* :mod:`repro.analysis.stats` — aggregate statistics (fraction of mappings a
  synthesized program helps, average and maximum speedups, per-system
  breakdowns) in the form the paper's abstract quotes.
* :mod:`repro.analysis.compare` — compare two sweeps of the same
  configurations (e.g. ring vs. tree, or two cost-model settings).
"""

from repro.analysis.serialization import (
    iter_jsonl_records,
    load_jsonl_results,
    load_results,
    result_from_record,
    result_to_record,
    results_from_json,
    results_to_json,
    save_results,
)
from repro.analysis.stats import SpeedupSummary, summarize_results
from repro.analysis.compare import SweepComparison, compare_sweeps

__all__ = [
    "results_to_json",
    "results_from_json",
    "save_results",
    "load_results",
    "result_to_record",
    "result_from_record",
    "load_jsonl_results",
    "iter_jsonl_records",
    "SpeedupSummary",
    "summarize_results",
    "SweepComparison",
    "compare_sweeps",
]
