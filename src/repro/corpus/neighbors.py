"""Nearest-neighbor lookup over canonical plan-query features.

A corpus record is a useful seed for a query when their search spaces
overlap: identical parallelism axes guarantee the seeded strategies are
reachable placements, and the rest of the canonical
:meth:`~repro.query.PlanQuery.to_dict` features (reduction request,
algorithm, payload) only grade *how strong* the seeded incumbent will be.
Distance is therefore a hard filter followed by a lexicographic rank:

* **hard filter** — the record's planning context (topology + cost model
  digest) must match when both sides carry one, and the axes (sizes *and*
  names) must be exactly the query's.  Budgeted records never enter the
  corpus, so no filter is needed here.
* **rank** — exact-fingerprint matches first (the same query replayed),
  then same-reduction records (their seeds survive
  :class:`~repro.search.PinnedPlanSource`'s wholesale foreign-request
  disqualification), then same-algorithm records, then by payload-band
  distance ``|log2(payload_record / payload_query)|`` (collective cost is
  closer to linear in log-payload than in payload), newest record first
  on ties.

Foreign-request records are deliberately *kept* as candidates with a low
rank rather than filtered: the pinned source itself disqualifies them
wholesale at zero cost, so returning them is harmless, and ranking (not
filtering) keeps this module free of reachability judgments that belong
to the search layer.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Mapping, Optional, Tuple

from repro.corpus.store import CorpusRecord

__all__ = ["nearest_records", "query_distance"]


def _axes_of(query: Mapping[str, Any]) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
    axes = query.get("axes") or {}
    return (
        tuple(int(s) for s in axes.get("sizes") or ()),
        tuple(str(n) for n in axes.get("names") or ()),
    )


def _request_of(query: Mapping[str, Any]) -> Tuple[int, ...]:
    request = query.get("request") or {}
    return tuple(int(a) for a in request.get("axes") or ())


def _payload_of(query: Mapping[str, Any]) -> int:
    return int(query.get("bytes_per_device") or 0)


def query_distance(
    record_query: Mapping[str, Any],
    query: Mapping[str, Any],
    *,
    exact: bool = False,
) -> Tuple[int, int, int, float]:
    """Lexicographic rank of a candidate record against a live query.

    Smaller is nearer.  Components: fingerprint mismatch (``exact`` marks a
    known exact match), reduction-request mismatch, algorithm mismatch,
    payload-band distance in octaves.  Axes are assumed already equal (the
    hard filter in :func:`nearest_records`).
    """
    request_penalty = 0 if _request_of(record_query) == _request_of(query) else 1
    algorithm_penalty = (
        0 if record_query.get("algorithm") == query.get("algorithm") else 1
    )
    record_payload = _payload_of(record_query)
    live_payload = _payload_of(query)
    if record_payload > 0 and live_payload > 0:
        band = abs(math.log2(record_payload / live_payload))
    else:
        band = float("inf")
    return (0 if exact else 1, request_penalty, algorithm_penalty, band)


def nearest_records(
    records: Iterable[CorpusRecord],
    query: Mapping[str, Any],
    *,
    context: Optional[str] = None,
    exact_fingerprint: Optional[str] = None,
    top_k: int = 2,
) -> List[CorpusRecord]:
    """The ``top_k`` nearest corpus records for ``query`` (a canonical dict).

    ``context`` is the live :func:`~repro.corpus.store.context_fingerprint`;
    records carrying a *different* context are excluded (records with no
    context — hand-ingested history — are trusted and rank-ordered like the
    rest).  ``exact_fingerprint`` marks records that answer this very query
    so they sort first.
    """
    if top_k < 1:
        return []
    live_axes = _axes_of(query)
    ranked: List[Tuple[Tuple[int, int, int, float], int, CorpusRecord]] = []
    for record in records:
        if (
            context is not None
            and record.context is not None
            and record.context != context
        ):
            continue
        if _axes_of(record.query) != live_axes:
            continue
        distance = query_distance(
            record.query,
            query,
            exact=exact_fingerprint is not None
            and record.fingerprint == exact_fingerprint,
        )
        # Newest record wins ties: -seq ascends as records age.
        ranked.append((distance, -record.seq, record))
    ranked.sort(key=lambda item: (item[0], item[1]))
    return [record for _, _, record in ranked[:top_k]]


def neighbor_features(record: CorpusRecord) -> Mapping[str, Any]:
    """The features a record is matched on (debugging/stats helper)."""
    sizes, names = _axes_of(record.query)
    return {
        "axes_sizes": list(sizes),
        "axes_names": list(names),
        "request_axes": list(_request_of(record.query)),
        "algorithm": record.query.get("algorithm"),
        "bytes_per_device": _payload_of(record.query),
        "context": record.context,
        "seq": record.seq,
    }
