"""Append-only JSONL plan corpus with dedupe, bounded size and compaction.

A :class:`PlanCorpus` is a directory holding one ``corpus.jsonl`` file.
Each line is a self-contained record — the canonical query dict, the full
serialized plan (:meth:`repro.api.OptimizationPlan.to_dict`, lossless), the
service fingerprint of the query and a *context* fingerprint binding the
record to the (topology, cost model) it was planned under.  Records arrive
from three producers that all speak :class:`~repro.query.PlanOutcome`:
sweep runs (via the service attached by ``planner_factory``), ``serve-batch``
output files (``repro-cli corpus ingest``), and live daemon traffic (the
daemon's service ingests every cold plan it serves).

Two standing rules are enforced at ingest, not trusted to callers:

* **budgeted plans are never stored** — the same invariant that keeps them
  out of the service cache: a budget-truncated ranking is not a
  deterministic function of the query, so replaying it as history would
  seed searches from machine-speed-dependent artifacts;
* **dedupe by (fingerprint, payload)** — re-running a sweep with
  ``--resume``, or re-ingesting an output file, must not grow the corpus:
  an outcome whose fingerprint and payload are already present is dropped.

The file is append-only in steady state; :meth:`PlanCorpus.compact`
rewrites it (write-then-rename, like the plan cache) keeping the newest
record per dedupe key and trimming to ``max_records``.  Ingest
auto-compacts when the record count overflows the bound.  Torn or
malformed lines — a crashed writer's partial flush — are skipped on load,
mirroring the sweep checkpoint reader's tolerance.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError, ServiceError
from repro.service.fingerprint import canonical_cost_model, canonical_topology

__all__ = [
    "CORPUS_FORMAT_VERSION",
    "CORPUS_FILENAME",
    "CorpusRecord",
    "PlanCorpus",
    "context_fingerprint",
]

logger = logging.getLogger(__name__)

CORPUS_FORMAT_VERSION = 1
CORPUS_FILENAME = "corpus.jsonl"
DEFAULT_MAX_RECORDS = 512


def context_fingerprint(topology, cost_model) -> str:
    """Digest of the planning context a corpus record was produced under.

    Unlike the full query fingerprint this covers *only* the topology and
    cost model, so records for different queries against the same machine
    share it — it is the hard gate nearest-neighbor lookup uses to refuse
    seeds from a corpus directory that mixes deployments.
    """
    canonical = {
        "topology": canonical_topology(topology),
        "cost_model": canonical_cost_model(cost_model),
    }
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CorpusRecord:
    """One persisted planning outcome: canonical query + lossless plan."""

    fingerprint: str
    context: Optional[str]
    query: Dict[str, Any]
    plan: Dict[str, Any]
    seq: int

    @property
    def key(self) -> Tuple[str, int]:
        """The dedupe identity: (query fingerprint, payload bytes)."""
        return (self.fingerprint, int(self.query.get("bytes_per_device") or 0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": CORPUS_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "context": self.context,
            "query": self.query,
            "plan": self.plan,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorpusRecord":
        if data.get("format_version") != CORPUS_FORMAT_VERSION:
            raise ServiceError(
                f"unsupported corpus record version {data.get('format_version')!r}"
            )
        fingerprint = data["fingerprint"]
        query = data["query"]
        plan = data["plan"]
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ServiceError("corpus record carries no fingerprint")
        if not isinstance(query, dict) or not isinstance(plan, dict):
            raise ServiceError("corpus record query/plan must be objects")
        return cls(
            fingerprint=fingerprint,
            context=data.get("context"),
            query=query,
            plan=plan,
            seq=int(data.get("seq", 0)),
        )


def _is_budgeted(query: Mapping[str, Any]) -> bool:
    return (
        query.get("max_candidates") is not None
        or query.get("time_budget_s") is not None
    )


class PlanCorpus:
    """Append-only, deduplicated, bounded store of planning outcomes.

    Parameters
    ----------
    directory:
        Where ``corpus.jsonl`` lives; created on first ingest.
    max_records:
        Bound on stored records; overflowing an ingest triggers
        :meth:`compact`, which keeps the newest record per dedupe key and
        then the newest ``max_records`` overall.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        if max_records < 1:
            raise ServiceError("corpus max_records must be >= 1")
        self.directory = Path(directory).expanduser()
        self.max_records = max_records
        self._records: List[CorpusRecord] = []
        self._keys: set = set()
        self._seq = 0
        self.ingested = 0
        self.deduplicated = 0
        self.rejected_budgeted = 0
        self._load()

    @property
    def path(self) -> Path:
        return self.directory / CORPUS_FILENAME

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[CorpusRecord, ...]:
        """Every stored record, oldest first."""
        return tuple(self._records)

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        if not self.path.exists():
            return
        skipped = 0
        newest: Dict[Tuple[str, int], CorpusRecord] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = CorpusRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError, ServiceError):
                    # A torn trailing line from a crashed writer, or a
                    # foreign-format line: skip it, keep the rest.
                    skipped += 1
                    continue
                # Duplicate keys (a hand-merged file) resolve newest-wins,
                # matching compact()'s policy.
                current = newest.get(record.key)
                if current is None or record.seq >= current.seq:
                    newest[record.key] = record
                self._seq = max(self._seq, record.seq + 1)
        self._records = sorted(newest.values(), key=lambda r: r.seq)
        self._keys = set(newest)
        if skipped:
            logger.debug("corpus load skipped %d malformed line(s)", skipped)

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def ingest_outcome(self, outcome, context: Optional[str] = None) -> bool:
        """Store one :class:`~repro.query.PlanOutcome`; True when it was new.

        Budgeted outcomes and outcomes without a fingerprint are refused —
        the corpus only holds deterministic, identifiable history.
        """
        if outcome.query.has_search_budget:
            self.rejected_budgeted += 1
            return False
        if not outcome.fingerprint:
            return False
        return self._ingest(
            fingerprint=outcome.fingerprint,
            context=context,
            query=outcome.query.to_dict(),
            plan=outcome.plan.to_dict(),
        )

    def ingest_record(self, data: Mapping[str, Any], context: Optional[str] = None) -> bool:
        """Store one serialized outcome dict (a ``serve-batch`` JSONL line).

        Accepts both :meth:`PlanOutcome.to_dict` lines (``query`` + ``plan``
        + ``fingerprint`` at the top level) and this corpus's own record
        envelope, so ``repro-cli corpus ingest`` can merge corpora too.
        The plan payload is round-tripped through
        :meth:`~repro.api.OptimizationPlan.from_dict` before storage, so a
        malformed line is rejected rather than poisoning future seeds.
        """
        from repro.api import OptimizationPlan

        if not isinstance(data, Mapping):
            return False
        query = data.get("query")
        plan = data.get("plan")
        fingerprint = data.get("fingerprint")
        if not isinstance(query, Mapping) or not isinstance(plan, Mapping):
            return False
        if not isinstance(fingerprint, str) or not fingerprint:
            return False
        if _is_budgeted(query):
            self.rejected_budgeted += 1
            return False
        try:
            OptimizationPlan.from_dict(plan)
        except (ReproError, KeyError, TypeError, ValueError):
            return False
        return self._ingest(
            fingerprint=fingerprint,
            context=data.get("context", context),
            query=dict(query),
            plan=dict(plan),
        )

    def _ingest(
        self,
        fingerprint: str,
        context: Optional[str],
        query: Dict[str, Any],
        plan: Dict[str, Any],
    ) -> bool:
        record = CorpusRecord(
            fingerprint=fingerprint,
            context=context,
            query=query,
            plan=plan,
            seq=self._seq,
        )
        if record.key in self._keys:
            self.deduplicated += 1
            return False
        self._seq += 1
        self._records.append(record)
        self._keys.add(record.key)
        self.ingested += 1
        self._append(record)
        if len(self._records) > self.max_records:
            self.compact()
        return True

    def _append(self, record: CorpusRecord) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), separators=(",", ":")) + "\n")
            handle.flush()

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #
    def compact(self) -> int:
        """Rewrite the file: newest per key, trimmed to ``max_records``.

        Returns how many records were dropped.  The rewrite goes through a
        temporary file and an atomic rename, so a crash mid-compaction
        leaves the previous file intact.
        """
        newest: Dict[Tuple[str, int], CorpusRecord] = {}
        for record in self._records:
            current = newest.get(record.key)
            if current is None or record.seq >= current.seq:
                newest[record.key] = record
        survivors = sorted(newest.values(), key=lambda r: r.seq)
        if len(survivors) > self.max_records:
            survivors = survivors[-self.max_records :]
        dropped = len(self._records) - len(survivors)
        self._records = survivors
        self._keys = {record.key for record in survivors}
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".jsonl.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in survivors:
                handle.write(
                    json.dumps(record.to_dict(), separators=(",", ":")) + "\n"
                )
        tmp.replace(self.path)
        if dropped:
            logger.debug("corpus compaction dropped %d record(s)", dropped)
        return dropped

    def total_bytes(self) -> int:
        """On-disk size of the corpus file in bytes (0 when absent)."""
        return self.path.stat().st_size if self.path.exists() else 0

    def stats(self) -> Dict[str, Any]:
        """JSON-ready summary for ``repro-cli corpus stats``."""
        payloads = sorted(
            {int(r.query.get("bytes_per_device") or 0) for r in self._records}
        )
        return {
            "path": str(self.path),
            "records": len(self._records),
            "distinct_fingerprints": len({r.fingerprint for r in self._records}),
            "distinct_payloads": len(payloads),
            "max_records": self.max_records,
            "total_bytes": self.total_bytes(),
            "ingested": self.ingested,
            "deduplicated": self.deduplicated,
            "rejected_budgeted": self.rejected_budgeted,
        }

    def describe(self) -> str:
        return (
            f"PlanCorpus({len(self._records)} records, "
            f"{self.total_bytes() / 1e3:.1f} kB at {self.path})"
        )
