"""The plan corpus: persisted planning history that seeds future searches.

Every cold, unbudgeted plan the system produces is a reusable asset: its
ranked strategies are strong incumbents for *related* queries (same axes,
nearby payload, same or different algorithm), not just for exact cache hits.
This package persists those outcomes and turns them back into search seeds:

* :mod:`repro.corpus.store` — :class:`PlanCorpus`, an append-only
  JSONL-backed store of ``(query, plan)`` records with dedupe, bounded
  size and compaction,
* :mod:`repro.corpus.neighbors` — nearest-neighbor ranking over canonical
  :meth:`~repro.query.PlanQuery.to_dict` features (axes shape, planning
  context, payload band, algorithm), exact matches first,
* :mod:`repro.corpus.seeding` — glue that converts neighbor plans into
  :class:`~repro.search.PinnedPlanSource` seeds for the search driver and
  pre-warms a :class:`~repro.service.engine.PlanningService` cache from
  the corpus on boot.

Seeding is lossless by construction: seeds only tighten the
branch-and-bound watermark under a search budget, so exhaustive seeded
plans are bit-identical to unseeded ones — only faster to reach their
incumbent — and remain sound to cache under the seed-free fingerprint.
"""

from repro.corpus.neighbors import nearest_records, query_distance
from repro.corpus.seeding import CorpusSeeder, warm_from_corpus
from repro.corpus.store import (
    CORPUS_FORMAT_VERSION,
    CorpusRecord,
    PlanCorpus,
    context_fingerprint,
)

__all__ = [
    "CORPUS_FORMAT_VERSION",
    "CorpusRecord",
    "PlanCorpus",
    "CorpusSeeder",
    "context_fingerprint",
    "nearest_records",
    "query_distance",
    "warm_from_corpus",
]
