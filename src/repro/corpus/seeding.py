"""Turn corpus history into search seeds and pre-warmed service caches.

Two consumers sit on top of the corpus:

* :class:`CorpusSeeder` — per cold query, look up the nearest corpus
  records and convert their plans into
  :class:`~repro.search.PinnedPlanSource` seeds prepended to the default
  source list.  Seeds are fingerprint-neutral: they only tighten the
  branch-and-bound watermark under a search budget, so exhaustive seeded
  plans stay bit-identical to unseeded ones (the driver enforces this) and
  the service may cache them under the ordinary seed-free fingerprint.
  Foreign-reduction seeds are disqualified wholesale by the pinned source
  itself — the seeder ranks them low but does not re-implement that
  judgment.
* :func:`warm_from_corpus` — on boot, replay corpus records whose
  fingerprint still matches what the live service would compute for the
  same query (same topology, cost model and fingerprint version) straight
  into the plan cache, so exact repeats of historical queries are memory
  hits without a single search.

Telemetry: ``corpus.lookups`` counts seed lookups, ``corpus.hits`` the
lookups that found at least one usable neighbor, ``corpus.seeded`` the
pinned sources actually injected, and ``corpus.warmed`` the records
replayed into a cache — all through the ordinary :mod:`repro.obs` spine,
so daemon ``stats`` snapshots report the corpus hit ratio for free.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from repro.corpus.neighbors import nearest_records
from repro.corpus.store import PlanCorpus, context_fingerprint
from repro.errors import ReproError
from repro.obs.recorder import get_recorder
from repro.query import PlanQuery

__all__ = ["CorpusSeeder", "warm_from_corpus"]

logger = logging.getLogger(__name__)

DEFAULT_TOP_K_NEIGHBORS = 2
DEFAULT_STRATEGIES_PER_SEED = 1


class CorpusSeeder:
    """Builds seeded source lists for cold queries from a plan corpus.

    Parameters
    ----------
    corpus:
        The history to draw from.
    topology / cost_model:
        The live planning context; records from a different context are
        never used as seeds.
    top_k_neighbors:
        How many nearest records to convert into pinned sources.
    strategies_per_seed:
        How many top-ranked strategies each pinned source replays.
    """

    def __init__(
        self,
        corpus: PlanCorpus,
        topology,
        cost_model,
        *,
        top_k_neighbors: int = DEFAULT_TOP_K_NEIGHBORS,
        strategies_per_seed: int = DEFAULT_STRATEGIES_PER_SEED,
        recorder=None,
    ) -> None:
        self.corpus = corpus
        self.topology = topology
        self.cost_model = cost_model
        self.top_k_neighbors = top_k_neighbors
        self.strategies_per_seed = strategies_per_seed
        self.recorder = recorder if recorder is not None else get_recorder()
        self.context = context_fingerprint(topology, cost_model)

    def seed_sources(
        self, query: PlanQuery, fingerprint: Optional[str] = None
    ) -> Optional[List]:
        """A full source list seeded from history, or ``None`` on no match.

        Returns ``[pinned..., baselines, synthesis]`` — ready to hand to
        :func:`repro.api.compute_plan` — when at least one neighbor plan
        deserializes; ``None`` means "use the default sources", so callers
        can pass the result straight through.
        """
        from repro.api import OptimizationPlan
        from repro.search import PinnedPlanSource, default_sources

        recorder = self.recorder
        recorder.count("corpus.lookups")
        records = self.corpus.records()
        if not records:
            return None
        neighbors = nearest_records(
            records,
            query.to_dict(),
            context=self.context,
            exact_fingerprint=fingerprint,
            top_k=self.top_k_neighbors,
        )
        if not neighbors:
            return None
        pinned = []
        for record in neighbors:
            try:
                plan = OptimizationPlan.from_dict(record.plan)
            except (ReproError, KeyError, TypeError, ValueError):
                # History that no longer deserializes (format drift) is
                # useless as a seed but harmless: skip it.
                logger.debug(
                    "corpus seed %s failed to deserialize; skipped",
                    record.fingerprint,
                )
                continue
            if not plan.strategies:
                continue
            pinned.append(
                PinnedPlanSource.from_plan(plan, top_k=self.strategies_per_seed)
            )
        if not pinned:
            return None
        recorder.count("corpus.hits")
        recorder.count("corpus.seeded", len(pinned))
        return [*pinned, *default_sources()]

    def ingest(self, outcome) -> bool:
        """Store a cold outcome, stamped with this seeder's context."""
        stored = self.corpus.ingest_outcome(outcome, context=self.context)
        if stored:
            self.recorder.count("corpus.ingested")
        return stored


def warm_from_corpus(service, corpus: PlanCorpus) -> int:
    """Replay corpus records into ``service``'s plan cache; return how many.

    Only records that are *provably* this service's own answers are
    replayed: the record's stored fingerprint must equal what the live
    service computes for the record's query, which binds topology, cost
    model, fingerprint version and the canonical query dict all at once.
    Budgeted records never enter the corpus, so everything replayed honours
    the budgeted-plans-are-never-cached invariant.
    """
    warmed = 0
    for record in corpus.records():
        try:
            query = PlanQuery.from_dict(record.query)
        except ReproError:
            continue
        if query.has_search_budget:
            continue
        if service.query_fingerprint(query) != record.fingerprint:
            continue
        service.cache.put(record.fingerprint, record.plan)
        warmed += 1
    if warmed:
        service.recorder.count("corpus.warmed", warmed)
        logger.debug("warmed %d plan(s) from %s", warmed, corpus.path)
    return warmed
