"""Ring schedules for the five collectives (NCCL's ``Ring`` algorithm).

All schedules are over group *positions* ``0..g-1`` arranged on a logical
ring; the lowering / executor maps positions onto physical devices.  The
payload is split into ``g`` equal blocks for the bandwidth-optimal
ReduceScatter / AllGather / AllReduce schedules; Reduce and Broadcast are
simple chains that forward the whole payload (matching the ``n/B`` term the
cost model charges them).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ReproError
from repro.schedules.transfer import CollectiveSchedule, ScheduleRound, Transfer
from repro.semantics.collectives import Collective

__all__ = ["build_ring_schedule"]


def _reduce_scatter_rounds(group_size: int) -> List[ScheduleRound]:
    rounds: List[ScheduleRound] = []
    for r in range(group_size - 1):
        transfers = tuple(
            Transfer(src=i, dst=(i + 1) % group_size, block=(i - r) % group_size, reduce=True)
            for i in range(group_size)
        )
        rounds.append(ScheduleRound(transfers))
    return rounds


def _all_gather_rounds(group_size: int, owner_offset: int) -> List[ScheduleRound]:
    """All-gather rounds assuming position ``i`` initially owns block ``(i + owner_offset) % g``."""
    rounds: List[ScheduleRound] = []
    for r in range(group_size - 1):
        transfers = tuple(
            Transfer(
                src=i,
                dst=(i + 1) % group_size,
                block=(i + owner_offset - r) % group_size,
                reduce=False,
            )
            for i in range(group_size)
        )
        rounds.append(ScheduleRound(transfers))
    return rounds


def _chain_rounds(group_size: int, num_blocks: int, towards_root: bool) -> List[ScheduleRound]:
    """A chain moving the full payload one hop per round (Reduce / Broadcast)."""
    rounds: List[ScheduleRound] = []
    for r in range(group_size - 1):
        if towards_root:
            src, dst = group_size - 1 - r, group_size - 2 - r
        else:
            src, dst = r, r + 1
        transfers = tuple(
            Transfer(src=src, dst=dst, block=block, reduce=towards_root)
            for block in range(num_blocks)
        )
        rounds.append(ScheduleRound(transfers))
    return rounds


def build_ring_schedule(
    collective: Collective, group_size: int, num_blocks: int = 0
) -> CollectiveSchedule:
    """Build the ring schedule for ``collective`` over ``group_size`` positions.

    ``num_blocks`` is only meaningful for the chain collectives (Reduce /
    Broadcast), where it controls the granularity of the forwarded payload; the
    bandwidth-optimal collectives always use ``group_size`` blocks.
    """
    if group_size < 2:
        raise ReproError("ring schedules need at least 2 devices")

    if collective == Collective.REDUCE_SCATTER:
        rounds = _reduce_scatter_rounds(group_size)
        # After the reduce-scatter phase, position i owns block (i + 1) mod g.
        result = tuple(((i + 1) % group_size,) for i in range(group_size))
        return CollectiveSchedule(
            collective, group_size, group_size, tuple(rounds), "ring", result
        )

    if collective == Collective.ALL_GATHER:
        # Assumes position i starts owning block i (the convention the
        # collective-level executor's ReduceScatter leaves behind).
        rounds = _all_gather_rounds(group_size, owner_offset=0)
        return CollectiveSchedule(collective, group_size, group_size, tuple(rounds), "ring")

    if collective == Collective.ALL_REDUCE:
        rounds = _reduce_scatter_rounds(group_size)
        rounds += _all_gather_rounds(group_size, owner_offset=1)
        return CollectiveSchedule(collective, group_size, group_size, tuple(rounds), "ring")

    if collective in (Collective.REDUCE, Collective.BROADCAST):
        blocks = num_blocks if num_blocks > 0 else 1
        towards_root = collective == Collective.REDUCE
        rounds = _chain_rounds(group_size, blocks, towards_root)
        if collective == Collective.REDUCE:
            result: Tuple[Tuple[int, ...], ...] = tuple(
                tuple(range(blocks)) if i == 0 else () for i in range(group_size)
            )
        else:
            result = ()
        return CollectiveSchedule(collective, group_size, blocks, tuple(rounds), "ring", result)

    raise ReproError(f"no ring schedule for collective {collective}")  # pragma: no cover
