"""Binomial-tree schedules (NCCL's ``Tree`` algorithm family).

Reduce climbs a binomial tree towards position 0 in ``ceil(log2 g)`` rounds;
Broadcast descends it; AllReduce is a Reduce followed by a Broadcast (2x the
latency depth, matching the tree entries of the cost model).  The whole
payload moves on every hop, again matching the ``n/B``-per-direction
bandwidth term the cost model charges tree collectives.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import ReproError
from repro.schedules.transfer import CollectiveSchedule, ScheduleRound, Transfer
from repro.semantics.collectives import Collective

__all__ = ["build_tree_schedule"]


def _reduce_rounds(group_size: int, num_blocks: int) -> List[ScheduleRound]:
    rounds: List[ScheduleRound] = []
    depth = max(1, math.ceil(math.log2(group_size)))
    for r in range(depth):
        distance = 1 << r
        transfers: List[Transfer] = []
        for i in range(group_size):
            if i % (2 * distance) == distance:
                dst = i - distance
                transfers.extend(
                    Transfer(src=i, dst=dst, block=block, reduce=True)
                    for block in range(num_blocks)
                )
        if transfers:
            rounds.append(ScheduleRound(tuple(transfers)))
    return rounds


def _broadcast_rounds(group_size: int, num_blocks: int) -> List[ScheduleRound]:
    rounds: List[ScheduleRound] = []
    depth = max(1, math.ceil(math.log2(group_size)))
    for r in range(depth - 1, -1, -1):
        distance = 1 << r
        transfers: List[Transfer] = []
        for i in range(group_size):
            if i % (2 * distance) == 0 and i + distance < group_size:
                transfers.extend(
                    Transfer(src=i, dst=i + distance, block=block, reduce=False)
                    for block in range(num_blocks)
                )
        if transfers:
            rounds.append(ScheduleRound(tuple(transfers)))
    return rounds


def build_tree_schedule(
    collective: Collective, group_size: int, num_blocks: int = 1
) -> CollectiveSchedule:
    """Build the binomial-tree schedule for ``collective``.

    Only the rooted collectives and AllReduce have tree forms; ReduceScatter
    and AllGather raise (NCCL also implements those with rings only).
    """
    if group_size < 2:
        raise ReproError("tree schedules need at least 2 devices")
    if num_blocks < 1:
        raise ReproError("tree schedules need at least one block")

    if collective == Collective.REDUCE:
        rounds = _reduce_rounds(group_size, num_blocks)
        result: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(range(num_blocks)) if i == 0 else () for i in range(group_size)
        )
        return CollectiveSchedule(collective, group_size, num_blocks, tuple(rounds), "tree", result)

    if collective == Collective.BROADCAST:
        rounds = _broadcast_rounds(group_size, num_blocks)
        return CollectiveSchedule(collective, group_size, num_blocks, tuple(rounds), "tree")

    if collective == Collective.ALL_REDUCE:
        rounds = _reduce_rounds(group_size, num_blocks) + _broadcast_rounds(
            group_size, num_blocks
        )
        return CollectiveSchedule(collective, group_size, num_blocks, tuple(rounds), "tree")

    raise ReproError(f"no tree schedule for collective {collective}")
