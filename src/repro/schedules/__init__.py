"""Chunk-level schedules for the collectives (the "inside" of NCCL).

The cost model (:mod:`repro.cost.nccl`) prices a collective with the classic
ring / tree formulas; this package makes those algorithms concrete by
generating the actual per-round send/receive schedules:

* :mod:`repro.schedules.ring` — ring ReduceScatter, AllGather, AllReduce,
  Reduce and Broadcast (pipelined chains),
* :mod:`repro.schedules.tree` — binomial-tree Reduce, Broadcast and AllReduce,
* :mod:`repro.schedules.executor` — executes a schedule transfer-by-transfer
  on the in-memory cluster, so schedules can be verified against the
  collective-level executor, and
* :mod:`repro.schedules.transfer` — the schedule data model plus per-device
  traffic statistics (used to cross-check the alpha-beta cost factors).

This is the SCCL-adjacent substrate: it demonstrates that every collective
step of a lowered program can be realised as point-to-point transfers on the
modelled topology, and it pins the cost model's byte counts to an executable
artifact.
"""

from repro.schedules.transfer import (
    CollectiveSchedule,
    ScheduleRound,
    ScheduleStatistics,
    Transfer,
    schedule_statistics,
)
from repro.schedules.ring import build_ring_schedule
from repro.schedules.tree import build_tree_schedule
from repro.schedules.executor import ScheduleExecutor, execute_schedule

__all__ = [
    "Transfer",
    "ScheduleRound",
    "CollectiveSchedule",
    "ScheduleStatistics",
    "schedule_statistics",
    "build_ring_schedule",
    "build_tree_schedule",
    "ScheduleExecutor",
    "execute_schedule",
]
