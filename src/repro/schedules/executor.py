"""Executing chunk-level schedules on the in-memory cluster.

The executor maps a schedule's *blocks* onto the global chunks the group
currently holds, then applies every transfer (add or overwrite, one block at a
time) in round order.  After the last round it fixes up each member's chunk
validity according to the schedule's declared ``result_blocks``, so the
cluster ends in the same state a collective-level execution would reach — up
to the block-ownership permutation inherent to ring ReduceScatter, which the
schedule itself declares.

This makes it possible to test, end to end, that the ring/tree algorithms the
cost model prices really do implement the collectives whose Hoare semantics
drive synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import RuntimeExecutionError
from repro.runtime.cluster import SimCluster
from repro.schedules.transfer import CollectiveSchedule
from repro.semantics.collectives import Collective

__all__ = ["ScheduleExecutor", "execute_schedule"]


@dataclass
class ScheduleExecutor:
    """Runs :class:`CollectiveSchedule` objects on a :class:`SimCluster`."""

    cluster: SimCluster

    # ------------------------------------------------------------------ #
    # Block <-> global chunk mapping
    # ------------------------------------------------------------------ #
    def _reference_chunks(
        self, schedule: CollectiveSchedule, group: Sequence[int]
    ) -> Tuple[int, ...]:
        """The global chunks the schedule's blocks partition, in order."""
        op = schedule.collective
        if op in (Collective.ALL_REDUCE, Collective.REDUCE_SCATTER, Collective.REDUCE):
            chunk_sets = {self.cluster[d].sorted_valid_chunks for d in group}
            if len(chunk_sets) != 1:
                raise RuntimeExecutionError(
                    f"{op}: group members hold different chunk sets; cannot partition blocks"
                )
            return next(iter(chunk_sets))
        if op == Collective.BROADCAST:
            return self.cluster[group[0]].sorted_valid_chunks
        # AllGather: the union, ordered; member at position t must own block t.
        union: List[int] = []
        for device in group:
            union.extend(self.cluster[device].sorted_valid_chunks)
        return tuple(sorted(union))

    def _block_to_chunks(
        self, schedule: CollectiveSchedule, reference: Tuple[int, ...]
    ) -> List[Tuple[int, ...]]:
        if not reference:
            raise RuntimeExecutionError("the group holds no valid chunks")
        if len(reference) % schedule.num_blocks != 0:
            raise RuntimeExecutionError(
                f"{len(reference)} chunks cannot be split into {schedule.num_blocks} equal blocks"
            )
        per_block = len(reference) // schedule.num_blocks
        return [
            tuple(reference[b * per_block : (b + 1) * per_block])
            for b in range(schedule.num_blocks)
        ]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, schedule: CollectiveSchedule, group: Sequence[int]) -> None:
        """Run ``schedule`` with group position ``p`` mapped to device ``group[p]``."""
        if len(group) != schedule.group_size:
            raise RuntimeExecutionError(
                f"schedule is for {schedule.group_size} devices but the group has {len(group)}"
            )
        if len(set(group)) != len(group):
            raise RuntimeExecutionError(f"group {tuple(group)} contains duplicate devices")
        for device in group:
            if not 0 <= device < self.cluster.num_devices:
                raise RuntimeExecutionError(f"device {device} out of range")

        reference = self._reference_chunks(schedule, group)
        blocks = self._block_to_chunks(schedule, reference)

        for round_ in schedule.rounds:
            # Snapshot the sent data first so concurrent transfers within a
            # round all read pre-round values (as real hardware would).
            staged = []
            for transfer in round_.transfers:
                src_device = self.cluster[group[transfer.src]]
                payload = {
                    chunk: src_device.chunk(chunk) for chunk in blocks[transfer.block]
                }
                staged.append((transfer, payload))
            for transfer, payload in staged:
                dst_device = self.cluster[group[transfer.dst]]
                for chunk, values in payload.items():
                    if transfer.reduce:
                        dst_device.set_chunk(chunk, dst_device.chunk(chunk) + values)
                    else:
                        dst_device.set_chunk(chunk, values)

        # Fix up validity to the schedule's declared final ownership.
        for position, device_id in enumerate(group):
            device = self.cluster[device_id]
            owned_blocks = schedule.member_result_blocks(position)
            owned_chunks = {chunk for block in owned_blocks for chunk in blocks[block]}
            for chunk in reference:
                if chunk in owned_chunks:
                    device.set_chunk(chunk, device.chunk(chunk), valid=True)
                else:
                    device.invalidate([chunk])


def execute_schedule(
    schedule: CollectiveSchedule, cluster: SimCluster, group: Sequence[int]
) -> None:
    """Convenience wrapper: execute ``schedule`` on ``cluster`` in place."""
    ScheduleExecutor(cluster).execute(schedule, group)
