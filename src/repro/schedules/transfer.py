"""Schedule data model: transfers, rounds, whole-collective schedules.

A schedule partitions the group's payload into ``num_blocks`` equal *blocks*
(NCCL's chunks) and moves blocks between group members over a sequence of
*rounds*.  Within a round all transfers are concurrent; a transfer either
accumulates into the destination (``reduce=True``, used while reducing) or
overwrites it (``reduce=False``, used while gathering / broadcasting).

Block indices are local to the collective; the executor maps them onto the
global chunk ranges the devices actually hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReproError
from repro.semantics.collectives import Collective

__all__ = [
    "Transfer",
    "ScheduleRound",
    "CollectiveSchedule",
    "ScheduleStatistics",
    "schedule_statistics",
]


@dataclass(frozen=True)
class Transfer:
    """Move one block from ``src`` to ``dst`` (positions within the group)."""

    src: int
    dst: int
    block: int
    reduce: bool

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ReproError("a transfer cannot have the same source and destination")
        if self.src < 0 or self.dst < 0 or self.block < 0:
            raise ReproError("transfer indices must be non-negative")


@dataclass(frozen=True)
class ScheduleRound:
    """All transfers that happen concurrently in one round."""

    transfers: Tuple[Transfer, ...]

    def __post_init__(self) -> None:
        # A device cannot receive the same block twice in one round.
        seen = set()
        for transfer in self.transfers:
            key = (transfer.dst, transfer.block)
            if key in seen:
                raise ReproError(
                    f"device {transfer.dst} receives block {transfer.block} twice in one round"
                )
            seen.add(key)

    @property
    def num_transfers(self) -> int:
        return len(self.transfers)


@dataclass(frozen=True)
class CollectiveSchedule:
    """A complete chunk-level implementation of one collective over one group.

    ``result_blocks`` records, per group position, which blocks that member
    holds (valid and fully combined) once the schedule has run; an empty tuple
    means "every member holds every block" (AllReduce / AllGather / Broadcast).
    """

    collective: Collective
    group_size: int
    num_blocks: int
    rounds: Tuple[ScheduleRound, ...]
    algorithm: str = "ring"
    result_blocks: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ReproError("a schedule needs a group of at least 2 devices")
        if self.num_blocks < 1:
            raise ReproError("a schedule needs at least one block")
        for round_ in self.rounds:
            for transfer in round_.transfers:
                if transfer.src >= self.group_size or transfer.dst >= self.group_size:
                    raise ReproError("transfer references a position outside the group")
                if transfer.block >= self.num_blocks:
                    raise ReproError("transfer references a block outside the payload")
        if self.result_blocks:
            if len(self.result_blocks) != self.group_size:
                raise ReproError("result_blocks must list one entry per group member")
            for blocks in self.result_blocks:
                for block in blocks:
                    if not 0 <= block < self.num_blocks:
                        raise ReproError(f"result block {block} out of range")

    def member_result_blocks(self, position: int) -> Tuple[int, ...]:
        """Blocks the member at ``position`` holds after the schedule runs."""
        if not 0 <= position < self.group_size:
            raise ReproError(f"position {position} out of range")
        if not self.result_blocks:
            return tuple(range(self.num_blocks))
        return self.result_blocks[position]

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def num_transfers(self) -> int:
        return sum(r.num_transfers for r in self.rounds)

    def describe(self) -> str:
        return (
            f"{self.algorithm} {self.collective} over {self.group_size} devices: "
            f"{self.num_rounds} rounds, {self.num_transfers} transfers, "
            f"{self.num_blocks} blocks"
        )


@dataclass(frozen=True)
class ScheduleStatistics:
    """Per-device traffic implied by a schedule, in units of one block."""

    max_blocks_sent: int
    max_blocks_received: int
    total_transfers: int
    num_rounds: int

    def bytes_sent_per_device(self, payload_bytes: float, num_blocks: int) -> float:
        """Bytes the busiest device sends, for a per-device payload of ``payload_bytes``."""
        return self.max_blocks_sent * payload_bytes / num_blocks


def schedule_statistics(schedule: CollectiveSchedule) -> ScheduleStatistics:
    """Compute per-device send/receive counts for a schedule."""
    sent: Dict[int, int] = {}
    received: Dict[int, int] = {}
    for round_ in schedule.rounds:
        for transfer in round_.transfers:
            sent[transfer.src] = sent.get(transfer.src, 0) + 1
            received[transfer.dst] = received.get(transfer.dst, 0) + 1
    return ScheduleStatistics(
        max_blocks_sent=max(sent.values(), default=0),
        max_blocks_received=max(received.values(), default=0),
        total_transfers=schedule.num_transfers,
        num_rounds=schedule.num_rounds,
    )
