"""Command-line interface.

``repro-cli`` exposes the main reproduction artefacts:

* ``repro-cli optimize`` — run P² for a system / parallelism shape and print
  the ranked strategies (the tool's primary use case).  ``--max-candidates``
  / ``--time-budget`` opt into the budgeted branch-and-bound search driver;
  the printed summary then includes the per-baseline speedups and search
  counters.
* ``repro-cli plan`` — choose one placement for several reductions at once
  (gradients + activations, each with its own payload and frequency).
* ``repro-cli emit`` — print the best strategy as XLA-style collective ops.
* ``repro-cli serve-batch`` — answer a batch of optimize queries through the
  planning service (plan cache + optional worker pool + per-request stats).
* ``repro-cli serve`` — run the planning daemon: newline-delimited JSON over
  TCP and/or Unix sockets, bounded admission queue with shedding, per-tenant
  rate limits, cache warming on boot and SIGTERM drain (:mod:`repro.serve`).
* ``repro-cli loadgen`` — open-loop synthetic traffic against a running
  daemon (Poisson / bursty / diurnal profiles, query-mix cache control);
  reports throughput, p50/p99 latency, shed rate and cache-hit ratio, and
  can write a ``BENCH_daemon_load.json`` record (:mod:`repro.loadgen`).
* ``repro-cli cache stats | clear`` — inspect or clear an on-disk plan cache
  (``stats --json`` emits the telemetry snapshot schema).
* ``repro-cli stats`` — pretty-print a telemetry file written by
  ``--trace-out`` (Chrome trace, bare snapshot JSON or JSONL).
* ``repro-cli table3 | table4 | table5`` — regenerate the paper tables.
* ``repro-cli figure11`` — regenerate the Figure 11 series.
* ``repro-cli sweep`` — run a scenario sweep: a named preset
  (``--preset smoke|paper-table2|gcp-scaleout|payload-ladder|appendix``), a
  grid file (``--grid grid.json``) or the full appendix by default, with
  JSONL streaming (``--out``/``--json``), checkpoint resume (``--resume``)
  and cache/worker amortization (``--cache-dir``/``--workers``).

All commands accept ``--payload-scale`` so they can be run quickly on a
laptop; the default reproduces the paper's full payload sizes.

Observability: ``optimize``, ``serve-batch`` and ``sweep`` accept
``--trace-out FILE`` (enable the telemetry recorder, write a
Perfetto-loadable Chrome trace on exit), and the root parser accepts
``-v``/``-vv`` and ``--quiet`` to configure the ``repro`` stdlib logger.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional, Sequence

from repro.api import P2
from repro.cost.nccl import NCCLAlgorithm
from repro.errors import ReproError
from repro.evaluation.config import (
    SystemKind,
    appendix_configs,
    figure11_configs,
    paper_payload_bytes,
)
from repro.evaluation.figures import build_figure11
from repro.evaluation.report import render_sweep_summary
from repro.evaluation.runner import SweepRunner
from repro.evaluation.tables import (
    build_appendix_table,
    build_table3,
    build_table4,
    build_table5,
)
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Reproduction of P2: parallelism placement and reduction strategy synthesis",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log INFO messages from the repro package; "
                             "repeat (-vv) for DEBUG")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="log only errors")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_out(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-out", type=str, default=None, metavar="FILE",
                       help="enable telemetry and write a Chrome trace-event "
                            "JSON file (Perfetto-loadable; also readable by "
                            "`repro-cli stats`) on exit")

    def add_corpus_argument(p: argparse.ArgumentParser) -> None:
        p.add_argument("--corpus", type=str, default=None, metavar="DIR",
                       help="plan-corpus directory: seed cold searches from "
                            "their nearest historical plans and ingest every "
                            "cold unbudgeted outcome back (lossless: "
                            "exhaustive seeded plans are bit-identical to "
                            "unseeded, only faster)")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--payload-scale", type=float, default=1.0,
                       help="scale the paper's payload (use e.g. 0.01 for quick runs)")
        p.add_argument("--quick", action="store_true",
                       help="use reduced configuration sets where applicable")

    def add_shape_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--system", choices=[s.value for s in SystemKind], default="a100")
        p.add_argument("--nodes", type=int, default=2)
        p.add_argument("--axes", type=int, nargs="+", required=True,
                       help="parallelism axis sizes, e.g. --axes 8 4")
        p.add_argument("--algorithm", choices=[a.value for a in NCCLAlgorithm], default="ring")
        p.add_argument("--bytes", type=int, default=None,
                       help="payload bytes per device (default: the paper's 2^29*nodes floats)")

    def add_search_limit_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--max-matrices", type=int, default=None,
                       help="cap the number of parallelism matrices considered "
                            "(bounds the search on large topologies)")
        p.add_argument("--max-program-size", type=int, default=5,
                       help="program-size limit for strategy synthesis (default 5)")
        add_search_budget_arguments(p)

    def add_search_budget_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--max-candidates", type=int, default=None,
                       help="search budget: stop after considering this many "
                            "candidate strategies (enables lazy enumeration "
                            "and lossless lower-bound pruning)")
        p.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                       help="search budget: stop enumerating candidates after "
                            "this much wall-clock time (best-so-far plan; "
                            "never cached)")
        p.add_argument("--shards", type=int, default=None,
                       help="partition the cold-path search across this many "
                            "worker processes sharing a branch-and-bound "
                            "incumbent (exhaustive results are identical to "
                            "--shards 1; exclusive with --workers)")

    p_opt = sub.add_parser("optimize", help="synthesize and rank strategies for one shape")
    add_shape_arguments(p_opt)
    add_search_limit_arguments(p_opt)
    p_opt.add_argument("--reduce", type=int, nargs="+", default=[0],
                       help="reduction axis indices, e.g. --reduce 0 2")
    p_opt.add_argument("--top", type=int, default=10)
    p_opt.add_argument("--workers", type=int, default=None,
                       help="evaluate candidates on a process pool of this size")
    p_opt.add_argument("--json", action="store_true",
                       help="emit the outcome (query + plan + provenance) as one JSON object")
    add_corpus_argument(p_opt)
    add_trace_out(p_opt)

    p_batch = sub.add_parser(
        "serve-batch",
        help="answer a batch of optimize queries through the planning service",
    )
    p_batch.add_argument("--system", choices=[s.value for s in SystemKind], default="a100")
    p_batch.add_argument("--nodes", type=int, default=2)
    add_search_limit_arguments(p_batch)
    p_batch.add_argument(
        "--query",
        action="append",
        default=None,
        metavar="AXES:REDUCE:BYTES[:ALGO]",
        help="one query, e.g. --query 8,4:0:67108864 or --query 2,16:1:1048576:tree "
             "(repeatable; omit BYTES for the paper payload)",
    )
    p_batch.add_argument(
        "--queries-file", type=str, default=None,
        help="JSON file with a list of PlanQuery dicts, or JSONL with one "
             "PlanQuery dict per line; the legacy "
             '{"axes": [8,4], "reduce": [0], "bytes": 67108864} shape is '
             "also accepted",
    )
    p_batch.add_argument("--cache-dir", type=str, default=None,
                         help="persist plans here (warm-starts later runs)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="process-pool size for cold-path evaluation")
    p_batch.add_argument("--top", type=int, default=1,
                         help="strategies to print per query")
    p_batch.add_argument("--json", action="store_true",
                         help="emit one JSON object per query (JSONL) instead of tables")
    add_corpus_argument(p_batch)
    add_trace_out(p_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the planning daemon (newline-delimited JSON over TCP/Unix sockets)",
    )
    p_serve.add_argument("--system", choices=[s.value for s in SystemKind], default="a100")
    p_serve.add_argument("--nodes", type=int, default=2)
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7411,
                         help="TCP port (0 binds an ephemeral port; discover it "
                              "via --ready-file)")
    p_serve.add_argument("--no-tcp", action="store_true",
                         help="disable the TCP listener (requires --unix)")
    p_serve.add_argument("--unix", type=str, default=None, metavar="PATH",
                         help="also listen on a Unix-domain socket at PATH")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="admission-queue bound; requests beyond it are "
                              "shed with a structured 'overloaded' reply")
    p_serve.add_argument("--max-line-bytes", type=int, default=None,
                         help="per-connection line-length bound (default 1 MiB)")
    p_serve.add_argument("--rate-limit", type=float, default=None, metavar="RPS",
                         help="per-tenant token-bucket rate limit (requests/s); "
                              "default: unlimited")
    p_serve.add_argument("--rate-burst", type=float, default=None,
                         help="token-bucket burst size (default max(1, rate))")
    p_serve.add_argument("--warm", type=str, default=None, metavar="FILE",
                         help="PlanQuery JSONL replayed through the plan cache "
                              "before accepting traffic")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds to wait for queued requests on shutdown")
    p_serve.add_argument("--cache-dir", type=str, default=None,
                         help="persist plans here (warm-starts later runs)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="process-pool size for cold-path evaluation")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="default shard width for cold-path planning "
                              "(queries carrying their own shards keep it; "
                              "exclusive with --workers)")
    p_serve.add_argument("--max-program-size", type=int, default=5)
    p_serve.add_argument("--ready-file", type=str, default=None, metavar="FILE",
                         help='write {"host", "port", "pid", ...} JSON here once '
                              "listening (how scripts find an ephemeral port)")
    add_corpus_argument(p_serve)
    p_serve.add_argument("--no-corpus-warm", action="store_true",
                         help="skip replaying the corpus into the plan cache "
                              "on boot (corpus seeding/ingest still run)")
    add_trace_out(p_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="fire open-loop synthetic traffic at a running daemon",
    )
    p_load.add_argument("--host", type=str, default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=None)
    p_load.add_argument("--unix", type=str, default=None, metavar="PATH",
                        help="connect over a Unix-domain socket instead of TCP")
    p_load.add_argument("--ready-file", type=str, default=None, metavar="FILE",
                        help="read the daemon address from a `serve --ready-file`")
    p_load.add_argument("--duration", type=float, default=10.0,
                        help="open-loop window in seconds")
    p_load.add_argument("--rps", type=float, default=None,
                        help="mean offered load (requests/s); default 5")
    p_load.add_argument("--users", type=float, default=None,
                        help="alternative rate spec: this many concurrent users "
                             "x --rpm requests/minute each")
    p_load.add_argument("--rpm", type=float, default=10.0,
                        help="requests per minute per user (with --users)")
    p_load.add_argument("--load-profile", choices=["constant", "bursty", "diurnal"],
                        default="constant", dest="load_profile",
                        help="arrival-rate shape (bursty/diurnal are normalized "
                             "to the same mean load as constant)")
    p_load.add_argument("--burst-multiplier", type=float, default=4.0,
                        help="peak/base ratio for bursty and diurnal profiles")
    p_load.add_argument("--period", type=float, default=10.0,
                        help="burst/diurnal period in seconds")
    p_load.add_argument("--distinct", type=int, default=4,
                        help="distinct queries in the mix (the cache knob: "
                             "hit ratio approaches 1 - distinct/requests)")
    p_load.add_argument("--axes", type=int, nargs="+", default=[8, 4],
                        help="parallelism axes of every query in the mix")
    p_load.add_argument("--reduce", type=int, nargs="+", default=[0])
    p_load.add_argument("--bytes", type=int, default=1 << 20,
                        help="base payload; distinct query i uses bytes*(i+1)")
    p_load.add_argument("--max-program-size", type=int, default=3)
    p_load.add_argument("--tenants", type=str, default=None,
                        help="comma-separated tenant labels, assigned round-robin")
    p_load.add_argument("--seed", type=int, default=0,
                        help="arrival schedule and query sampling seed")
    p_load.add_argument("--concurrency", type=int, default=8,
                        help="worker threads (one daemon connection each)")
    p_load.add_argument("--timeout", type=float, default=60.0,
                        help="per-request client timeout in seconds")
    p_load.add_argument("--skip-probe", action="store_true",
                        help="skip the sequential cold-plan probe phase")
    p_load.add_argument("--out", type=str, default=None, metavar="FILE",
                        help="write a BENCH-style JSON record "
                             "(the BENCH_daemon_load.json schema)")
    p_load.add_argument("--bench-name", type=str, default="daemon_load",
                        help="the 'name' field of the --out record")
    p_load.add_argument("--snapshot-out", type=str, default=None, metavar="FILE",
                        help="write the merged loadgen+daemon telemetry snapshot "
                             "(readable by `repro-cli stats`)")
    p_load.add_argument("--json", action="store_true",
                        help="emit one JSON object per phase instead of prose")

    p_cache = sub.add_parser("cache", help="inspect or clear an on-disk plan cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for cache_name, cache_help in [
        ("stats", "print entry count, size and fingerprints of a plan cache"),
        ("clear", "delete every entry of a plan cache"),
    ]:
        p = cache_sub.add_parser(cache_name, help=cache_help)
        p.add_argument("--cache-dir", type=str, required=True)
        if cache_name == "stats":
            p.add_argument("--json", action="store_true",
                           help="emit the stats as a telemetry snapshot "
                                "(same schema as `repro-cli stats --json`)")

    p_corpus = sub.add_parser(
        "corpus", help="inspect or maintain a plan corpus (see --corpus)"
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command", required=True)
    p_corpus_stats = corpus_sub.add_parser(
        "stats", help="print record counts and size of a plan corpus"
    )
    p_corpus_stats.add_argument("--corpus", type=str, required=True, metavar="DIR")
    p_corpus_stats.add_argument("--json", action="store_true",
                                help="emit the stats as one JSON object")
    p_corpus_ingest = corpus_sub.add_parser(
        "ingest",
        help="ingest serialized outcomes (serve-batch --json output, or "
             "another corpus file) into a plan corpus",
    )
    p_corpus_ingest.add_argument("--corpus", type=str, required=True, metavar="DIR")
    p_corpus_ingest.add_argument("file", help="JSONL file of PlanOutcome/corpus records")
    p_corpus_compact = corpus_sub.add_parser(
        "compact",
        help="rewrite a corpus keeping the newest record per query, "
             "trimmed to --max-records",
    )
    p_corpus_compact.add_argument("--corpus", type=str, required=True, metavar="DIR")
    p_corpus_compact.add_argument("--max-records", type=int, default=None,
                                  help="override the stored-record bound for "
                                       "this compaction")

    p_stats = sub.add_parser(
        "stats", help="pretty-print a telemetry file written by --trace-out"
    )
    p_stats.add_argument("file",
                         help="a Chrome trace with embedded snapshot, a bare "
                              "snapshot JSON, or a JSONL event stream")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the canonical snapshot JSON instead of the "
                              "plain-text summary")

    p_plan = sub.add_parser(
        "plan", help="choose one placement for several reductions (one --reduction per reduction)"
    )
    add_shape_arguments(p_plan)
    p_plan.add_argument(
        "--reduction",
        action="append",
        required=True,
        metavar="NAME:AXES:BYTES[:WEIGHT]",
        help="e.g. --reduction gradients:0:268435456 --reduction activations:1:67108864:4",
    )

    p_emit = sub.add_parser("emit", help="emit the best strategy as XLA-style collective ops")
    add_shape_arguments(p_emit)
    p_emit.add_argument("--reduce", type=int, nargs="+", default=[0])
    p_emit.add_argument("--elements", type=int, default=None,
                        help="elements per device in the emitted module (default: bytes/4)")

    for name, helptext in [
        ("table3", "reproduce Table 3 (placement impact on AllReduce)"),
        ("table4", "reproduce Table 4 (synthesized strategies vs AllReduce)"),
        ("table5", "reproduce Table 5 (simulator accuracy)"),
        ("figure11", "reproduce the Figure 11 series"),
        ("sweep", "run a scenario sweep (a preset, a grid file or the appendix)"),
    ]:
        p = sub.add_parser(name, help=helptext)
        add_common(p)
        if name == "sweep":
            from repro.evaluation.scenarios import preset_names

            # None (not 1.0) so an explicit "--payload-scale 1.0" is
            # distinguishable from "not given" and overrides preset defaults.
            p.set_defaults(payload_scale=None)
            p.add_argument("--save", type=str, default=None,
                           help="write the raw sweep results to this JSON file")
            p.add_argument("--preset", choices=preset_names(), default=None,
                           help="run a named scenario preset instead of the appendix")
            p.add_argument("--grid", type=str, default=None,
                           help="run the ScenarioGrid described by this JSON file")
            p.add_argument("--out", type=str, default=None,
                           help="stream one JSONL record per scenario to this file "
                                "(flushed per scenario: a resumable checkpoint)")
            p.add_argument("--resume", action="store_true",
                           help="skip scenarios already recorded in --out")
            p.add_argument("--workers", type=int, default=None,
                           help="answer queries through a planning service with "
                                "a process pool of this size")
            p.add_argument("--cache-dir", type=str, default=None,
                           help="answer queries through a planning service with an "
                                "on-disk plan cache here (warm re-runs are lookups)")
            p.add_argument("--json", action="store_true",
                           help="print each scenario record as one JSON line")
            add_search_budget_arguments(p)
            add_corpus_argument(p)
            add_trace_out(p)
    return parser


def _run_optimize(args: argparse.Namespace) -> int:
    from repro.query import PlanQuery

    system = SystemKind(args.system)
    topology = system.build(args.nodes)
    bytes_per_device = args.bytes or paper_payload_bytes(args.nodes)
    query = PlanQuery(
        axes=ParallelismAxes(tuple(args.axes)),
        request=ReductionRequest(tuple(args.reduce)),
        bytes_per_device=bytes_per_device,
        algorithm=NCCLAlgorithm(args.algorithm),
        max_matrices=args.max_matrices,
        max_program_size=args.max_program_size,
        max_candidates=args.max_candidates,
        time_budget_s=args.time_budget,
        shards=1 if args.shards is None else args.shards,
    )
    if query.shards > 1 and args.workers and args.workers > 1:
        raise SystemExit("--shards and --workers are exclusive: pick one parallelism axis")
    p2 = P2(topology, max_program_size=args.max_program_size)
    seeder = None
    sources = None
    if args.corpus:
        from repro.corpus import CorpusSeeder, PlanCorpus
        from repro.service.fingerprint import plan_query_fingerprint

        seeder = CorpusSeeder(PlanCorpus(args.corpus), topology, p2.cost_model)
        sources = seeder.seed_sources(
            query, plan_query_fingerprint(topology, query, p2.cost_model)
        )
    outcome = p2.plan(query, n_workers=args.workers, sources=sources)
    if seeder is not None:
        seeder.ingest(outcome)
    if args.json:
        import json

        print(json.dumps(outcome.to_dict(), sort_keys=True))
        return 0
    plan = outcome.plan
    print(plan.describe(top_k=args.top))
    print()
    print(f"best strategy: {plan.best.describe()}")
    print(f"speedup over best-placed AllReduce: {plan.speedup_over_default():.2f}x")
    for name, speedup in sorted(outcome.baseline_speedups().items()):
        rendered = "inf" if speedup is None else f"{speedup:.2f}"
        print(f"speedup over {name} baseline (best placement): {rendered}x")
    if outcome.search is not None and (
        outcome.search.get("bound_rejected")
        or outcome.search.get("budget_stopped")
        or outcome.search.get("time_stopped")
        or outcome.search.get("seeds")
    ):
        print(
            f"search: {outcome.search['considered']} considered, "
            f"{outcome.search['bound_rejected']} bound-rejected, "
            f"{outcome.search['placements_pruned']} placements pruned"
        )
        incumbent_at = outcome.search.get("time_to_incumbent_s")
        if incumbent_at is not None:
            seeded = (
                " (seeded incumbent)"
                if outcome.search.get("seeded_incumbent")
                else ""
            )
            print(f"time to incumbent: {incumbent_at * 1e3:.1f} ms{seeded}")
    return 0


def _parse_batch_query(
    spec: str,
    default_bytes: int,
    max_matrices: Optional[int],
    max_program_size: Optional[int] = None,
):
    from repro.query import PlanQuery

    try:
        return PlanQuery.from_spec(
            spec,
            bytes_per_device=default_bytes,
            max_matrices=max_matrices,
            max_program_size=max_program_size,
        )
    except ReproError as error:
        raise SystemExit(f"bad --query {spec!r}: {error}")


def _load_batch_queries(
    path: str,
    default_bytes: int,
    max_matrices: Optional[int],
    max_program_size: Optional[int] = None,
):
    """Load PlanQuery dicts from a JSON list or a JSONL file (legacy shapes ok).

    Returns ``(queries, errors)``: a malformed line or entry becomes one
    structured error record (``{"error": "bad_json" | "bad_query", "line" |
    "index": N, "detail": ...}``) instead of aborting the whole batch, so
    one torn line in a big query file costs one query, not the run.
    """
    import json

    from repro.query import PlanQuery

    with open(path) as handle:
        text = handle.read()
    queries, errors, entries = [], [], []
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        # Not one JSON document: treat as JSONL, one query object per line.
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                entries.append(({"line": number}, json.loads(line)))
            except json.JSONDecodeError as error:
                errors.append(
                    {"error": "bad_json", "line": number, "detail": str(error)}
                )
    else:
        if isinstance(document, dict):
            document = [document]  # a single query object is a one-entry batch
        if not isinstance(document, list):
            raise SystemExit(f"{path}: expected a JSON list of query objects")
        entries = [({"index": index}, entry) for index, entry in enumerate(document)]
    for where, entry in entries:
        try:
            queries.append(
                PlanQuery.from_dict(
                    entry,
                    bytes_per_device=default_bytes,
                    max_matrices=max_matrices,
                    max_program_size=max_program_size,
                )
            )
        except (ReproError, KeyError, TypeError, ValueError) as error:
            errors.append({"error": "bad_query", **where, "detail": str(error)})
    return queries, errors


def _run_serve_batch(args: argparse.Namespace) -> int:
    from repro.service import PlanCache, PlanningService

    system = SystemKind(args.system)
    topology = system.build(args.nodes)
    default_bytes = paper_payload_bytes(args.nodes)

    queries, line_errors = [], []
    if args.queries_file:
        file_queries, line_errors = _load_batch_queries(
            args.queries_file, default_bytes, args.max_matrices,
            args.max_program_size,
        )
        queries.extend(file_queries)
    for spec in args.query or []:
        queries.append(
            _parse_batch_query(
                spec, default_bytes, args.max_matrices, args.max_program_size
            )
        )
    if line_errors:
        # Structured per-line records in --json mode (mixed into the output
        # stream, distinguishable by the "error" key), human lines on stderr
        # otherwise; either way the exit code goes nonzero at the end.
        import json

        for record in line_errors:
            if args.json:
                print(
                    json.dumps({"file": args.queries_file, **record}, sort_keys=True),
                    flush=True,
                )
            else:
                where = (
                    f"line {record['line']}"
                    if "line" in record
                    else f"entry {record['index']}"
                )
                print(
                    f"{args.queries_file}: {where}: {record['error']}: "
                    f"{record['detail']}",
                    file=sys.stderr,
                )
    if not queries:
        if line_errors:
            print(
                f"{args.queries_file}: no valid queries "
                f"({len(line_errors)} malformed)",
                file=sys.stderr,
            )
            return 1
        raise SystemExit("serve-batch needs at least one --query or --queries-file")
    if (
        args.max_candidates is not None
        or args.time_budget is not None
        or args.shards is not None
    ):
        import dataclasses

        # Uniform search budget / shard width for the batch; a query file
        # that carries its own keeps it (the command line only fills gaps).
        queries = [
            dataclasses.replace(
                query,
                max_candidates=(
                    query.max_candidates
                    if query.max_candidates is not None
                    else args.max_candidates
                ),
                time_budget_s=(
                    query.time_budget_s
                    if query.time_budget_s is not None
                    else args.time_budget
                ),
                shards=(
                    query.shards
                    if query.shards != 1 or args.shards is None
                    else args.shards
                ),
            )
            for query in queries
        ]
    if args.workers and args.workers > 1 and any(q.shards > 1 for q in queries):
        raise SystemExit("--shards and --workers are exclusive: pick one parallelism axis")

    cache = PlanCache(directory=args.cache_dir)
    corpus = None
    if args.corpus:
        from repro.corpus import PlanCorpus

        corpus = PlanCorpus(args.corpus)
    with PlanningService(
        topology,
        max_program_size=args.max_program_size,
        cache=cache,
        n_workers=args.workers,
        corpus=corpus,
    ) as service:
        if args.json:
            import json

            # Stream: one line flushed per answered query, so a consumer (or
            # an interrupted run) sees every completed outcome immediately.
            for outcome in service.plan_stream(queries):
                print(json.dumps(outcome.to_dict(), sort_keys=True), flush=True)
            return 1 if line_errors else 0
        outcomes = service.plan_many(queries)
        for outcome in outcomes:
            print(f"query {outcome.query.describe()}")
            print(f"  {outcome.describe()}")
            for strategy in outcome.plan.top(args.top):
                print(f"  {strategy.describe()}")
        print()
        print(service.describe())
    return 1 if line_errors else 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import os

    from repro.obs import Recorder, get_recorder
    from repro.serve import MAX_LINE_BYTES, DaemonConfig, PlanDaemon
    from repro.service import PlanCache, PlanningService

    if args.no_tcp and not args.unix:
        raise SystemExit("serve --no-tcp needs --unix")
    if args.shards and args.shards > 1 and args.workers and args.workers > 1:
        raise SystemExit("--shards and --workers are exclusive: pick one parallelism axis")
    system = SystemKind(args.system)
    topology = system.build(args.nodes)
    # The daemon's `stats` op serves the live recorder; if --trace-out did
    # not already install one, give the daemon its own so stats/shed/tenant
    # counters exist regardless.
    recorder = get_recorder()
    if not recorder.enabled:
        recorder = Recorder()
    config = DaemonConfig(
        host=args.host,
        port=None if args.no_tcp else args.port,
        unix_path=args.unix,
        queue_limit=args.queue_limit,
        max_line_bytes=args.max_line_bytes or MAX_LINE_BYTES,
        rate_limit_per_s=args.rate_limit,
        rate_limit_burst=args.rate_burst,
        warm_path=args.warm,
        drain_timeout_s=args.drain_timeout,
        shards=args.shards,
        corpus_warm=not args.no_corpus_warm,
    )
    corpus = None
    if args.corpus:
        from repro.corpus import PlanCorpus

        corpus = PlanCorpus(args.corpus)

    async def amain() -> None:
        daemon = PlanDaemon(service, config, recorder=recorder)
        daemon.install_signal_handlers(asyncio.get_event_loop())
        await daemon.start()
        listening = []
        ready = {"pid": os.getpid()}
        if daemon.tcp_address is not None:
            ready["host"], ready["port"] = daemon.tcp_address
            listening.append(f"{daemon.tcp_address[0]}:{daemon.tcp_address[1]}")
        if daemon.unix_address is not None:
            ready["unix_path"] = daemon.unix_address
            listening.append(daemon.unix_address)
        if args.ready_file:
            with open(args.ready_file, "w") as handle:
                json.dump(ready, handle)
        print(
            f"planning daemon (pid {ready['pid']}) serving "
            f"{system.value} x {args.nodes} nodes on {' + '.join(listening)}"
            + (f", warmed {daemon.warmed} queries" if daemon.warmed else "")
            + (
                f", pre-warmed {daemon.corpus_warmed} plans from the corpus"
                if daemon.corpus_warmed
                else ""
            ),
            file=sys.stderr,
        )
        await daemon.wait_closed()

    with PlanningService(
        topology,
        max_program_size=args.max_program_size,
        cache=PlanCache(directory=args.cache_dir),
        n_workers=args.workers,
        recorder=recorder,
        corpus=corpus,
    ) as service:
        asyncio.run(amain())
    return 0


def _resolve_daemon_address(args: argparse.Namespace):
    """(host, port, unix_path) for loadgen, from flags or a --ready-file."""
    import json

    if args.ready_file:
        try:
            with open(args.ready_file) as handle:
                info = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"cannot read --ready-file {args.ready_file}: {error}")
        if info.get("unix_path") and not info.get("port"):
            return None, None, info["unix_path"]
        return info.get("host", "127.0.0.1"), info.get("port"), None
    if args.unix:
        return None, None, args.unix
    return args.host, args.port, None


def _run_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServeError
    from repro.loadgen import (
        LoadHarness,
        QueryMix,
        profile_from_name,
        validate_tenants,
    )

    host, port, unix_path = _resolve_daemon_address(args)
    if port is None and unix_path is None:
        raise SystemExit("loadgen needs --port, --unix or --ready-file")
    if args.rps is not None and args.users is not None:
        raise SystemExit("pass --rps or --users, not both")
    if args.users is not None:
        rps = args.users * args.rpm / 60.0
    else:
        rps = args.rps if args.rps is not None else 5.0
    mix = QueryMix.payload_ladder(
        axes=tuple(args.axes),
        reduce_axes=tuple(args.reduce),
        base_bytes=args.bytes,
        distinct=args.distinct,
        max_program_size=args.max_program_size,
    )
    profile = profile_from_name(
        args.load_profile, rps, args.burst_multiplier, args.period
    )
    tenants = validate_tenants((args.tenants or "").split(","))
    harness = LoadHarness(
        mix,
        profile,
        args.duration,
        host=host,
        port=port,
        unix_path=unix_path,
        seed=args.seed,
        concurrency=args.concurrency,
        tenants=tenants,
        timeout_s=args.timeout,
    )

    def emit(report) -> None:
        if args.json:
            print(json.dumps(report.to_dict(), sort_keys=True), flush=True)
        else:
            print(report.describe(), flush=True)

    try:
        cold = None
        if not args.skip_probe:
            # One sequential pass over the mix: every miss here is a genuine
            # cold plan, giving an uncontended cold-latency distribution.
            cold = harness.probe("cold")
            emit(cold)
        report = harness.run(args.load_profile)
        emit(report)
        try:
            daemon_snapshot = harness.fetch_daemon_snapshot()
        except (ServeError, OSError):
            daemon_snapshot = None  # daemon gone; the client side still stands
    except (ServeError, OSError) as error:
        raise SystemExit(f"loadgen: cannot drive the daemon: {error}")

    if report.latency is None:
        print("loadgen: no request succeeded; nothing to report", file=sys.stderr)
        return 1
    if not args.json and cold is not None and cold.miss_latency and report.hit_latency:
        ratio = cold.miss_latency["p99_s"] / max(report.hit_latency["p99_s"], 1e-9)
        print(
            f"cold-plan p99 {cold.miss_latency['p99_s'] * 1e3:.1f}ms vs warm-hit "
            f"p99 {report.hit_latency['p99_s'] * 1e3:.1f}ms ({ratio:.1f}x)"
        )

    if args.snapshot_out:
        from repro.obs import Recorder

        merged = Recorder()
        for snapshot in (
            cold.snapshot if cold is not None else None,
            report.snapshot,
            daemon_snapshot,
        ):
            if snapshot is not None:
                merged.merge(snapshot)
        with open(args.snapshot_out, "w") as handle:
            json.dump(merged.snapshot().to_dict(), handle, sort_keys=True)
        if not args.json:
            print(f"telemetry snapshot written to {args.snapshot_out}")

    if args.out:
        latency = report.latency
        record = {
            "name": args.bench_name,
            # The gated latency number: warm-phase p50 (seconds), so cache
            # regressions move the benchmark, not scheduler noise at p99.
            "median_seconds": latency["p50_s"],
            # Deterministic per seed (the arrival schedule and the mix size),
            # so baseline.json can pin them exactly.
            "counters": {
                "requests": report.offered,
                "distinct_queries": mix.distinct,
            },
            "throughput_rps": report.throughput_rps,
            "p50_latency_s": latency["p50_s"],
            "p99_latency_s": latency["p99_s"],
            "max_latency_s": latency["max_s"],
            "shed_rate": report.shed_rate,
            "cache_hit_ratio": report.cache_hit_ratio,
            "profile": args.load_profile,
            "offered_rps": rps,
            "duration_s": args.duration,
            "warm": report.to_dict(),
        }
        if cold is not None:
            record["cold"] = cold.to_dict()
            if cold.miss_latency:
                record["cold_p99_latency_s"] = cold.miss_latency["p99_s"]
        if report.hit_latency:
            record["warm_hit_p99_latency_s"] = report.hit_latency["p99_s"]
        with open(args.out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        if not args.json:
            print(f"benchmark record written to {args.out}")
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    from repro.service import PlanCache

    cache = PlanCache(directory=args.cache_dir)
    if args.cache_command == "stats":
        fingerprints = cache.disk_fingerprints()
        if getattr(args, "json", False):
            import json

            from repro.obs import RecorderSnapshot

            # The same snapshot schema the telemetry exporters speak, so one
            # consumer parses `repro-cli stats --json` and `cache stats --json`.
            snapshot = RecorderSnapshot(
                counters={
                    "cache.disk_entries": len(fingerprints),
                    "cache.disk_bytes": cache.disk_bytes(),
                },
            )
            print(json.dumps(snapshot.to_dict(), sort_keys=True))
            return 0
        print(f"cache at {args.cache_dir}: {len(fingerprints)} entries, "
              f"{cache.disk_bytes() / 1e3:.1f} kB")
        for fingerprint in fingerprints:
            print(f"  {fingerprint}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached plans from {args.cache_dir}")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")  # pragma: no cover


def _run_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import PlanCorpus

    if args.corpus_command == "stats":
        corpus = PlanCorpus(args.corpus)
        stats = corpus.stats()
        if getattr(args, "json", False):
            import json

            print(json.dumps(stats, sort_keys=True))
            return 0
        print(
            f"corpus at {stats['path']}: {stats['records']} records "
            f"({stats['distinct_fingerprints']} queries, "
            f"{stats['distinct_payloads']} payloads), "
            f"{stats['total_bytes'] / 1e3:.1f} kB "
            f"(bound {stats['max_records']})"
        )
        return 0
    if args.corpus_command == "ingest":
        import json

        corpus = PlanCorpus(args.corpus)
        ingested = skipped = malformed = 0
        try:
            handle = open(args.file, encoding="utf-8")
        except OSError as error:
            raise SystemExit(f"cannot read {args.file}: {error}")
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    malformed += 1
                    continue
                if corpus.ingest_record(record):
                    ingested += 1
                else:
                    skipped += 1
        print(
            f"ingested {ingested} outcome(s) into {corpus.path} "
            f"({skipped} skipped: duplicates, budgeted or unusable"
            + (f"; {malformed} malformed line(s)" if malformed else "")
            + ")"
        )
        return 0
    if args.corpus_command == "compact":
        corpus = PlanCorpus(args.corpus)
        if args.max_records is not None:
            if args.max_records < 1:
                raise SystemExit("--max-records must be >= 1")
            corpus.max_records = args.max_records
        dropped = corpus.compact()
        print(
            f"compacted {corpus.path}: dropped {dropped} record(s), "
            f"{len(corpus)} kept"
        )
        return 0
    raise AssertionError(
        f"unhandled corpus command {args.corpus_command!r}"
    )  # pragma: no cover


def _run_stats(args: argparse.Namespace) -> int:
    from repro.obs import load_snapshot, render_summary

    try:
        snapshot = load_snapshot(args.file)
    except OSError as error:
        raise SystemExit(f"cannot read {args.file}: {error}")
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json:
        import json

        print(json.dumps(snapshot.to_dict(), sort_keys=True))
        return 0
    print(render_summary(snapshot, title=f"telemetry from {args.file}"))
    return 0


def _parse_weighted_reduction(spec: str, default_bytes: int):
    from repro.planner import WeightedReduction

    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise SystemExit(
            f"--reduction must look like NAME:AXES:BYTES[:WEIGHT], got {spec!r}"
        )
    name, axes_part, bytes_part = parts[0], parts[1], parts[2]
    weight = float(parts[3]) if len(parts) == 4 else 1.0
    axes = tuple(int(a) for a in axes_part.split(",") if a != "")
    payload = int(bytes_part) if bytes_part else default_bytes
    return WeightedReduction(
        name=name,
        request=ReductionRequest(axes),
        bytes_per_device=payload,
        weight=weight,
    )


def _run_plan(args: argparse.Namespace) -> int:
    from repro.planner import MultiReductionPlanner

    system = SystemKind(args.system)
    topology = system.build(args.nodes)
    default_bytes = args.bytes or paper_payload_bytes(args.nodes)
    reductions = [
        _parse_weighted_reduction(spec, default_bytes) for spec in args.reduction
    ]
    planner = MultiReductionPlanner(topology)
    plan = planner.plan(
        ParallelismAxes(tuple(args.axes)),
        reductions,
        algorithm=NCCLAlgorithm(args.algorithm),
    )
    print(plan.describe(top_k=10))
    print()
    best = plan.best
    print(f"best combined placement: {best.matrix.describe()}")
    for choice in best.choices:
        print(
            f"  {choice.reduction.name}: {choice.seconds * 1e3:.2f} ms with {choice.mnemonic} "
            f"({choice.speedup_over_all_reduce:.2f}x over AllReduce)"
        )
    return 0


def _run_emit(args: argparse.Namespace) -> int:
    from repro.compile import emit_xla_module

    from repro.query import PlanQuery

    system = SystemKind(args.system)
    topology = system.build(args.nodes)
    bytes_per_device = args.bytes or paper_payload_bytes(args.nodes)
    elements = args.elements or max(bytes_per_device // 4, 1)
    p2 = P2(topology)
    plan = p2.plan(
        PlanQuery(
            axes=ParallelismAxes(tuple(args.axes)),
            request=ReductionRequest(tuple(args.reduce)),
            bytes_per_device=bytes_per_device,
            algorithm=NCCLAlgorithm(args.algorithm),
        )
    ).plan
    best = plan.best
    print(f"// best strategy: {best.describe()}")
    module = emit_xla_module(best.program, element_count=elements)
    print(module.render())
    return 0


def _quick_runner(args: argparse.Namespace) -> SweepRunner:
    runs = 1 if args.quick else 3
    return SweepRunner(measurement_runs=runs)


def _sweep_scenarios(args: argparse.Namespace):
    """Scenario list plus runner measurement settings for ``repro-cli sweep``."""
    from repro.evaluation.scenarios import (
        PRESETS,
        ScenarioGrid,
        scenarios_from_configs,
    )

    measure = True
    runs = 1 if args.quick else 3
    # The sweep subparser defaults --payload-scale to None, so a value here
    # is always user-given and overrides the preset/grid's own scale.
    explicit_scale = args.payload_scale
    if args.preset:
        entry = PRESETS[args.preset]
        scenarios = entry.scenarios(explicit_scale)
        measure = entry.measure_programs
        runs = 1 if args.quick else entry.measurement_runs
    elif args.grid:
        grid = ScenarioGrid.from_json_file(args.grid)
        if explicit_scale is not None:
            grid = grid.scaled(explicit_scale)
        scenarios = grid.expand()
    else:
        scenarios = scenarios_from_configs(
            appendix_configs(explicit_scale if explicit_scale is not None else 1.0)
        )
    if args.quick:
        scenarios = scenarios[:6]
    return scenarios, measure, runs


def _run_sweep(args: argparse.Namespace) -> int:
    import json

    if args.resume and not args.out:
        raise SystemExit("--resume needs --out (the JSONL checkpoint to resume)")
    scenarios, measure, runs = _sweep_scenarios(args)
    if not scenarios:
        raise SystemExit("the sweep selected no scenarios")
    if (
        args.max_candidates is not None
        or args.time_budget is not None
        or args.shards is not None
    ):
        import dataclasses

        # A uniform search budget across the sweep (part of each scenario's
        # query, so --resume correctly recomputes records whose budget changed).
        scenarios = [
            dataclasses.replace(
                scenario,
                max_candidates=args.max_candidates,
                time_budget_s=args.time_budget,
                shards=args.shards if args.shards is not None else scenario.shards,
            )
            for scenario in scenarios
        ]
    if args.shards and args.shards > 1 and (args.workers or 0) > 1:
        raise SystemExit("--shards and --workers are exclusive: pick one parallelism axis")

    planner_factory = None
    if args.cache_dir is not None or (args.workers or 0) > 1 or args.corpus:
        from repro.service import PlanCache, PlanningService

        corpus = None
        if args.corpus:
            from repro.corpus import PlanCorpus

            # One corpus shared across the sweep's topologies is safe: each
            # service's seeder filters records by its own planning-context
            # fingerprint, and ingest dedupes by query fingerprint — so a
            # resumed sweep never double-ingests checkpointed scenarios.
            corpus = PlanCorpus(args.corpus)

        def planner_factory(topology):
            # One shared directory is safe: cache keys are fingerprints that
            # cover the topology, so entries never collide across systems.
            return PlanningService(
                topology,
                cache=PlanCache(directory=args.cache_dir),
                n_workers=args.workers,
                corpus=corpus,
            )

    def on_record(record):
        if args.json:
            print(json.dumps(record, sort_keys=True), flush=True)

    runner = SweepRunner(
        measurement_runs=runs,
        measure_programs=measure,
        planner_factory=planner_factory,
    )
    with runner:
        results = runner.run_stream(
            scenarios, out_path=args.out, resume=args.resume, on_record=on_record
        )

    if not args.json:
        from repro.obs import get_recorder

        recorder = get_recorder()
        snapshot = recorder.snapshot() if recorder.enabled else None
        print(render_sweep_summary(results, snapshot=snapshot))
        print()
        print(build_appendix_table(results).text)
    if args.save:
        from repro.analysis import save_results

        path = save_results(results, args.save)
        if not args.json:
            print(f"\nraw results written to {path}")
    return 0


_LOG_HANDLER: Optional[logging.Handler] = None


def _configure_logging(args: argparse.Namespace) -> None:
    """Attach a stderr handler to the ``repro`` logger per -v/-q.

    The package itself only installs a NullHandler (library etiquette); the
    CLI is the application, so it decides verbosity: WARNING by default,
    INFO at ``-v``, DEBUG at ``-vv``, ERROR under ``--quiet``.  Idempotent
    across repeated :func:`main` calls (tests, embedding) — the previous
    CLI handler is replaced, never stacked.
    """
    global _LOG_HANDLER
    if args.quiet:
        level = logging.ERROR
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    package_logger = logging.getLogger("repro")
    if _LOG_HANDLER is not None:
        package_logger.removeHandler(_LOG_HANDLER)
    _LOG_HANDLER = handler
    package_logger.setLevel(level)
    package_logger.addHandler(handler)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)

    recorder = previous_recorder = None
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.obs import Recorder, get_recorder, set_recorder

        # Install before dispatch: services/drivers/simulators capture the
        # process recorder at construction time.
        previous_recorder = get_recorder()
        recorder = Recorder()
        set_recorder(recorder)
    try:
        return _dispatch(args)
    finally:
        if recorder is not None:
            from repro.obs import set_recorder, write_chrome_trace

            set_recorder(previous_recorder)
            path = write_chrome_trace(recorder.snapshot(), trace_out)
            print(f"telemetry trace written to {path}", file=sys.stderr)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "optimize":
        return _run_optimize(args)

    if args.command == "plan":
        return _run_plan(args)

    if args.command == "serve-batch":
        return _run_serve_batch(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "loadgen":
        return _run_loadgen(args)

    if args.command == "cache":
        return _run_cache(args)

    if args.command == "corpus":
        return _run_corpus(args)

    if args.command == "stats":
        return _run_stats(args)

    if args.command == "emit":
        return _run_emit(args)

    if args.command == "table3":
        artifact = build_table3(payload_scale=args.payload_scale)
        print(artifact.text)
        return 0

    if args.command == "table4":
        artifact = build_table4(payload_scale=args.payload_scale, runner=_quick_runner(args))
        print(artifact.text)
        return 0

    if args.command == "table5":
        artifact = build_table5(
            payload_scale=args.payload_scale, quick=args.quick, runner=_quick_runner(args)
        )
        print(artifact.text)
        return 0

    if args.command == "figure11":
        for config in figure11_configs(args.payload_scale):
            series = build_figure11(config, runner=_quick_runner(args))
            print(series.render())
            print()
        return 0

    if args.command == "sweep":
        return _run_sweep(args)

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
