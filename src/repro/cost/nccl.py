"""Alpha-beta costs of collectives under NCCL's ring and tree algorithms.

The paper runs every experiment twice, once with ``NCCL_ALGO=Ring`` and once
with ``NCCL_ALGO=Tree``; the cost of a single collective over a group of size
``g`` with per-device payload ``n`` follows the classic models:

============== =============================== ===============================
collective      ring                            tree
============== =============================== ===============================
AllReduce       ``2(g-1)α + 2 n (g-1)/g / B``   ``2⌈log2 g⌉α + 2 n / B``
ReduceScatter   ``(g-1)α + n (g-1)/g / B``      ``⌈log2 g⌉α + n / B``
AllGather       ``(g-1)α + n (g-1) / B``        ``⌈log2 g⌉α + n (g-1) / B``
Reduce          ``(g-1)α + n / B``              ``⌈log2 g⌉α + n / B``
Broadcast       ``(g-1)α + n / B``              ``⌈log2 g⌉α + n / B``
============== =============================== ===============================

where ``α`` is the per-hop latency and ``B`` the (possibly contended)
bandwidth of the bottleneck link.  The byte/step factors live next to the
Hoare rules (:class:`repro.semantics.collectives.TrafficProfile`) so the two
views of each collective stay together.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import CostModelError
from repro.semantics.collectives import TRAFFIC_PROFILES, Collective

__all__ = ["NCCLAlgorithm", "collective_time", "bytes_on_wire", "latency_steps"]


class NCCLAlgorithm(str, Enum):
    """NCCL algorithm selection (the paper's ``NCCL_ALGO`` environment variable)."""

    RING = "ring"
    TREE = "tree"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def bytes_on_wire(
    op: Collective, algorithm: NCCLAlgorithm, group_size: int, payload_bytes: float
) -> float:
    """Bytes each participant pushes through the bottleneck link."""
    if group_size < 2:
        raise CostModelError(f"collectives need a group of >= 2 devices, got {group_size}")
    if payload_bytes < 0:
        raise CostModelError("payload_bytes must be non-negative")
    profile = TRAFFIC_PROFILES[op]
    if algorithm == NCCLAlgorithm.RING:
        return profile.ring_bytes_on_wire(payload_bytes, group_size)
    return profile.tree_bytes_on_wire(payload_bytes, group_size)


def latency_steps(op: Collective, algorithm: NCCLAlgorithm, group_size: int) -> int:
    """Number of serialized hops (latency terms) for the collective."""
    if group_size < 2:
        raise CostModelError(f"collectives need a group of >= 2 devices, got {group_size}")
    profile = TRAFFIC_PROFILES[op]
    if algorithm == NCCLAlgorithm.RING:
        return profile.latency_steps_ring(group_size)
    return profile.latency_steps_tree(group_size)


def collective_time(
    op: Collective,
    algorithm: NCCLAlgorithm,
    group_size: int,
    payload_bytes: float,
    bandwidth: float,
    link_latency: float,
) -> float:
    """Time for one group to complete ``op`` on a link of ``bandwidth`` bytes/s."""
    if bandwidth <= 0:
        raise CostModelError("bandwidth must be positive")
    if link_latency < 0:
        raise CostModelError("link latency must be non-negative")
    volume = bytes_on_wire(op, algorithm, group_size, payload_bytes)
    steps = latency_steps(op, algorithm, group_size)
    return steps * link_latency + volume / bandwidth
