"""Analytic cost model and program simulator (paper §5).

The simulator predicts the end-to-end time of a lowered reduction program on
a :class:`~repro.topology.topology.MachineTopology`:

* :mod:`repro.cost.nccl` — alpha-beta cost of one collective over one group
  under NCCL's ring or tree algorithm.
* :mod:`repro.cost.contention` — how many concurrent groups share each link
  within a step (NICs for cross-node traffic, the NVLink ring for V100
  intra-node traffic).
* :mod:`repro.cost.model` — the tunable constants (launch overheads, algorithm
  choice) bundled as a :class:`CostModel`.
* :mod:`repro.cost.profile` — the payload-independent part of a simulation
  (semantics + contention) compiled once per program into a
  :class:`SimulationProfile`, priceable for any payload in closed form.
* :mod:`repro.cost.batch` — profiles compiled further into numpy coefficient
  tables (:class:`BatchPricer`) that price whole payload ladders and
  multi-program batches in one vectorized shot, bit-identical to
  :func:`price_profile`.
* :mod:`repro.cost.simulator` — drives the Hoare semantics step by step to
  track per-device payload sizes and sums the per-step times; answers
  repeat simulations by pricing cached profiles (vectorized in batch when
  numpy is available).
"""

from repro.cost.nccl import NCCLAlgorithm, collective_time
from repro.cost.model import CostModel
from repro.cost.contention import StepContention, analyze_step_contention
from repro.cost.profile import SimulationProfile, compile_profile, price_profile
from repro.cost.batch import (
    BatchPricer,
    BatchPriceResult,
    have_numpy,
    price_programs,
)
from repro.cost.simulator import ProgramSimulator, SimulationResult, simulate_program

__all__ = [
    "NCCLAlgorithm",
    "collective_time",
    "CostModel",
    "StepContention",
    "analyze_step_contention",
    "SimulationProfile",
    "compile_profile",
    "price_profile",
    "BatchPricer",
    "BatchPriceResult",
    "have_numpy",
    "price_programs",
    "ProgramSimulator",
    "SimulationResult",
    "simulate_program",
]
