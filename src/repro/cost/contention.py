"""Per-step link contention analysis.

Within one step of a lowered program all groups run concurrently, so groups
whose traffic crosses the same physical link share its bandwidth:

* **NICs** — every group whose span reaches above the NIC-owning level loads
  the NIC of every node it touches.  A group's sharing factor is the largest
  number of cross-node groups loading any NIC it uses (divided by the number
  of NICs per node).
* **Shared intra-node media** (the V100 NVLink ring, PCIe) — groups fully
  contained in the same NIC-owning instance share that medium; the sharing
  factor is the number of such co-located groups.
* **Switched intra-node fabrics** (A100 NVSwitch) — per-GPU port bandwidth is
  not shared between disjoint groups, so the factor is 1.

This deliberately coarse model is the same granularity as the paper's own
simulator ("aware of the network topology including different bandwidths for
different interconnects") and is what gives hierarchical strategies their
characteristic behaviour: cross-node steps on small payloads still pay NIC
sharing when many replicas reduce at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import CostModelError
from repro.synthesis.lowering import LoweredStep
from repro.topology.links import LinkSpec
from repro.topology.topology import MachineTopology

__all__ = ["GroupCost", "StepContention", "analyze_step_contention"]


@dataclass(frozen=True)
class GroupCost:
    """Per-group routing decision: which link it bottlenecks on and its sharing."""

    group: Tuple[int, ...]
    span_level: int
    link: LinkSpec
    sharing: float
    crosses_nic: bool

    @property
    def effective_bandwidth(self) -> float:
        return self.link.bandwidth / self.sharing


@dataclass(frozen=True)
class StepContention:
    """Contention analysis of one lowered step."""

    groups: Tuple[GroupCost, ...]

    @property
    def max_sharing(self) -> float:
        return max((g.sharing for g in self.groups), default=1.0)

    def describe(self) -> str:
        per_link: Dict[str, int] = {}
        for g in self.groups:
            per_link[g.link.name] = per_link.get(g.link.name, 0) + 1
        links = ", ".join(f"{name} x{count}" for name, count in sorted(per_link.items()))
        return f"{len(self.groups)} groups over {links} (max sharing {self.max_sharing:.0f})"


def analyze_step_contention(
    step: LoweredStep, topology: MachineTopology
) -> StepContention:
    """Compute the link and sharing factor of every group in ``step``."""
    if topology.num_devices < max(d for g in step.groups for d in g) + 1:
        raise CostModelError(
            "lowered step references devices outside the topology "
            f"({topology.num_devices} devices)"
        )

    spans = [topology.span_level(group) for group in step.groups]
    crosses = [span <= topology.nic_level for span in spans]

    # NIC loading: count cross-node groups per NIC-owning instance.
    nic_load: Dict[Tuple[int, ...], int] = {}
    for group, is_cross in zip(step.groups, crosses):
        if not is_cross:
            continue
        for instance in topology.nic_instances_touched(group):
            nic_load[instance] = nic_load.get(instance, 0) + 1

    # Shared-medium loading: count intra-node groups per NIC-owning instance.
    medium_load: Dict[Tuple[int, ...], int] = {}
    for group, is_cross in zip(step.groups, crosses):
        if is_cross:
            continue
        instance = topology.instance_of(group[0], topology.nic_level)
        medium_load[instance] = medium_load.get(instance, 0) + 1

    group_costs: List[GroupCost] = []
    for group, span, is_cross in zip(step.groups, spans, crosses):
        link = topology.interconnect_for_level(span)
        if is_cross:
            touched = topology.nic_instances_touched(group)
            sharing = max(nic_load[i] for i in touched) / topology.nics_per_instance
            sharing = max(sharing, 1.0)
            # Cross-node traffic may additionally traverse a host (PCIe) link;
            # when that link is slower than the NIC fabric, the effective
            # bandwidth is capped at the host link's, which we fold in by
            # scaling the sharing factor: link.bandwidth / sharing then equals
            # host.bandwidth / nic_sharing.  The scale factor is > 1 and
            # sharing >= 1, so this always *raises* sharing — the historical
            # ``max(sharing, ratio * sharing)`` here was a no-op wrapper
            # around exactly this product.
            host = topology.host_link
            if host is not None and host.bandwidth < link.bandwidth:
                sharing = (link.bandwidth / host.bandwidth) * sharing
        else:
            if link.kind.is_shared_medium:
                instance = topology.instance_of(group[0], topology.nic_level)
                sharing = float(medium_load.get(instance, 1))
            else:
                sharing = 1.0
        group_costs.append(
            GroupCost(
                group=tuple(group),
                span_level=span,
                link=link,
                sharing=sharing,
                crosses_nic=is_cross,
            )
        )
    return StepContention(groups=tuple(group_costs))
