"""Compiled simulation profiles: pay semantics/contention once, price in closed form.

Simulating a lowered program (:mod:`repro.cost.simulator`) does two very
different kinds of work:

* **payload-independent analysis** — running the Hoare semantics to learn the
  fraction of the payload each device holds before every step, and the link
  contention analysis that assigns every group a bottleneck link and sharing
  factor.  This depends only on the program and the machine topology.
* **payload-dependent pricing** — the alpha-beta arithmetic that turns a
  (payload, algorithm, cost model) triple into seconds.

The planner evaluates hundreds of candidate programs per query and sweeps
re-evaluate the same programs across whole payload ladders, so redoing the
analysis for every payload is the dominant waste in the hot path.  A
:class:`SimulationProfile` is the analysis phase made explicit: it is compiled
once per ``LoweredProgram`` x ``MachineTopology`` and can then be priced for
any ``(bytes_per_device, algorithm, cost_model)`` in ``O(steps x classes)``
with zero semantics work.

Within one lowered step all groups are replicas of a single virtual grouping
swept over the free digits, so their per-group analysis collapses onto a
handful of **equivalence classes** keyed by ``(group size, span level,
sharing factor, chunk fraction)`` — everything the pricing arithmetic reads.
The profile stores, per step, just those classes (in first-occurrence order)
plus the step-level attributes of the breakdown.

The contract, enforced by ``tests/test_cost_profile.py``: pricing a profile
is **bit-identical** to :meth:`ProgramSimulator.simulate_reference` — the same
float operations in the same order (the per-group max collapses to a per-class
max over identical floats; the sum over steps is unchanged), so
``predicted_seconds`` match to the last ulp and rankings can never shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cost.contention import analyze_step_contention
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm, bytes_on_wire, latency_steps
from repro.errors import CostModelError
from repro.semantics.collectives import Collective, apply_collective
from repro.semantics.goals import initial_context
from repro.semantics.state import DeviceState
from repro.synthesis.lowering import LoweredProgram
from repro.topology.topology import MachineTopology

__all__ = [
    "ProfileClass",
    "StepProfile",
    "SimulationProfile",
    "compile_profile",
    "price_profile",
]


@dataclass(frozen=True)
class ProfileClass:
    """One group equivalence class of a step: everything pricing needs.

    ``effective_bandwidth`` is the contended bandwidth
    (``link.bandwidth / sharing``) precomputed at compile time with exactly
    the float operations the per-group simulator used, so pricing reproduces
    its arithmetic bit for bit.  ``count`` records how many concurrent groups
    collapsed into this class (introspection only — the step time is a max,
    so pricing never multiplies by it).
    """

    group_size: int
    span_level: int
    chunk_fraction: float
    sharing: float
    link_name: str
    link_latency: float
    effective_bandwidth: float
    count: int


@dataclass(frozen=True)
class StepProfile:
    """The payload-independent analysis of one lowered step.

    ``ring_bound`` / ``tree_bound`` are closed-form lower-bound coefficients
    ``(latency_seconds, seconds_per_byte)`` precomputed at compile time: the
    step's true time under either algorithm is at least
    ``launch_overhead + max(latency_seconds, seconds_per_byte * payload)``.
    Each coefficient is a per-class maximum of terms every class's price
    provably dominates (the wire volume is linear in the payload with zero
    intercept, and the small-message penalty only *reduces* bandwidth), so
    the bound can never exceed :func:`price_profile`'s exact step time —
    this is what makes branch-and-bound pruning in :mod:`repro.search`
    lossless.  ``None`` (profiles built by hand in tests) means "no bound
    information": :meth:`SimulationProfile.lower_bound` then falls back to
    the launch overhead alone, which is still sound.
    """

    collective: Collective
    num_groups: int
    group_size: int
    max_sharing: float
    classes: Tuple[ProfileClass, ...]
    ring_bound: Optional[Tuple[float, float]] = None
    tree_bound: Optional[Tuple[float, float]] = None

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def bound_coefficients(self, algorithm: NCCLAlgorithm) -> Tuple[float, float]:
        """(latency seconds, seconds per payload byte) for ``algorithm``."""
        bound = self.ring_bound if algorithm == NCCLAlgorithm.RING else self.tree_bound
        return bound if bound is not None else (0.0, 0.0)


@dataclass(frozen=True)
class SimulationProfile:
    """A lowered program compiled against one topology, ready to price.

    Profiles are small (a handful of classes per step rather than one record
    per group), cheap to pickle — the worker pool ships profiles instead of
    re-deriving them per task — and payload/algorithm/cost-model independent,
    so one compilation serves a whole payload ladder under both NCCL
    algorithms.
    """

    num_devices: int
    label: str
    steps: Tuple[StepProfile, ...]

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_classes(self) -> int:
        """Total pricing work per payload (the sum of per-step class counts)."""
        return sum(step.num_classes for step in self.steps)

    @property
    def num_groups(self) -> int:
        """Total per-group work the compilation paid (and pricing avoids)."""
        return sum(step.num_groups for step in self.steps)

    def price(
        self,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        cost_model: Optional[CostModel] = None,
    ):
        """Convenience method; see :func:`price_profile`."""
        return price_profile(self, bytes_per_device, algorithm, cost_model)

    def lower_bound(
        self,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        cost_model: Optional[CostModel] = None,
    ) -> float:
        """Closed-form lower bound on :meth:`price` for any payload — ``O(steps)``.

        Sums ``launch_overhead + max(latency_seconds, seconds_per_byte *
        payload)`` over the steps using the coefficients precompiled by
        :func:`compile_profile` (see :class:`StepProfile`).  Guaranteed
        ``lower_bound(...) <= price(...).total_seconds`` for every payload,
        algorithm and cost model whose launch overhead matches: the search
        driver uses it to reject candidates whose optimistic time already
        exceeds the incumbent without paying the per-class pricing loop.
        """
        if bytes_per_device < 0:
            raise CostModelError("bytes_per_device must be non-negative")
        model = cost_model if cost_model is not None else CostModel()
        total = 0.0
        for step in self.steps:
            latency_seconds, seconds_per_byte = step.bound_coefficients(algorithm)
            total += model.launch_overhead + max(
                latency_seconds, seconds_per_byte * bytes_per_device
            )
        return total

    def describe(self) -> str:
        steps = "; ".join(
            f"{s.collective}x{s.num_groups}->{s.num_classes} class(es)"
            for s in self.steps
        )
        return f"{self.label or 'profile'}: {steps}"


def _bound_coefficients(
    collective: Collective,
    algorithm: NCCLAlgorithm,
    classes: Tuple[ProfileClass, ...],
) -> Tuple[float, float]:
    """Lower-bound coefficients of one step (see :class:`StepProfile`).

    For every class, ``time >= launch + steps*latency`` and ``time >= launch
    + volume(payload)/bandwidth`` (the small-message penalty only slows the
    link down), and the wire volume is linear in the payload, so taking the
    per-class maxima of the two terms separately yields a pair that bounds
    the step's per-class maximum from below at every payload.
    """
    latency_seconds = 0.0
    seconds_per_byte = 0.0
    for cls in classes:
        steps = latency_steps(collective, algorithm, cls.group_size)
        latency_seconds = max(latency_seconds, steps * cls.link_latency)
        volume_per_byte = bytes_on_wire(
            collective, algorithm, cls.group_size, cls.chunk_fraction
        )
        seconds_per_byte = max(
            seconds_per_byte, volume_per_byte / cls.effective_bandwidth
        )
    return latency_seconds, seconds_per_byte


def compile_profile(
    program: LoweredProgram, topology: MachineTopology
) -> SimulationProfile:
    """Run semantics and contention analysis once; return the priceable profile.

    Raises the same errors eager simulation would: a device-count mismatch is
    a :class:`~repro.errors.CostModelError`, and a semantically invalid step
    raises :class:`~repro.errors.InvalidCollectiveError` from the Hoare rules.
    """
    if program.num_devices != topology.num_devices:
        raise CostModelError(
            f"program is over {program.num_devices} devices but the topology has "
            f"{topology.num_devices}"
        )

    context = initial_context(program.num_devices)
    step_profiles: List[StepProfile] = []
    for step in program.steps:
        contention = analyze_step_contention(step, topology)
        # Insertion order keeps the classes in first-occurrence order, which
        # is what makes the pricing max pick the same bottleneck group the
        # per-group loop would (see price_profile).
        classes: Dict[Tuple[int, int, float, float], List] = {}
        updates: Dict[int, DeviceState] = {}
        for group, cost in zip(step.groups, contention.groups):
            pre_states = [context[d] for d in group]
            fraction = max(s.chunk_fraction() for s in pre_states)
            key = (len(group), cost.span_level, cost.sharing, fraction)
            entry = classes.get(key)
            if entry is None:
                classes[key] = [cost, fraction, 1]
            else:
                entry[2] += 1
            post_states = apply_collective(step.collective, pre_states)
            for device, state in zip(group, post_states):
                updates[device] = state
        context = context.replace(updates)
        step_classes = tuple(
            ProfileClass(
                group_size=key[0],
                span_level=key[1],
                chunk_fraction=fraction,
                sharing=cost.sharing,
                link_name=cost.link.name,
                link_latency=cost.link.latency,
                effective_bandwidth=cost.effective_bandwidth,
                count=count,
            )
            for key, (cost, fraction, count) in classes.items()
        )
        step_profiles.append(
            StepProfile(
                collective=step.collective,
                num_groups=step.num_groups,
                group_size=step.group_size,
                max_sharing=contention.max_sharing,
                classes=step_classes,
                ring_bound=_bound_coefficients(
                    step.collective, NCCLAlgorithm.RING, step_classes
                ),
                tree_bound=_bound_coefficients(
                    step.collective, NCCLAlgorithm.TREE, step_classes
                ),
            )
        )
    return SimulationProfile(
        num_devices=program.num_devices, label=program.label, steps=tuple(step_profiles)
    )


def price_profile(
    profile: SimulationProfile,
    bytes_per_device: float,
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    cost_model: Optional[CostModel] = None,
    label: Optional[str] = None,
):
    """Price a compiled profile: the closed-form ``O(steps x classes)`` loop.

    Bit-identical to the per-group reference simulation: within a class every
    group prices to the same float, so the max over classes equals the max
    over groups, and iterating classes in first-occurrence order with a strict
    ``>`` selects the same bottleneck (link, payload) the group loop's strict
    ``>`` would.  ``label`` overrides the profile's own label (used when a
    cached profile answers for a program that shares its signature).
    """
    from repro.cost.simulator import SimulationResult, StepSimulation

    if bytes_per_device < 0:
        raise CostModelError("bytes_per_device must be non-negative")
    model = cost_model if cost_model is not None else CostModel()

    steps: List[StepSimulation] = []
    total = 0.0
    for step in profile.steps:
        # A lowered step always has at least one group (LoweredStep enforces
        # it), so the fallback bottleneck is the first group's link: it is
        # reported, with the 0.0 payload it was priced at, exactly when every
        # class prices to 0.0 seconds (zero payload under a zero-overhead
        # cost model on zero-latency links) and the strict ``>`` never fires.
        worst_seconds = 0.0
        worst_link = step.classes[0].link_name if step.classes else "-"
        worst_payload = 0.0
        for cls in step.classes:
            payload = cls.chunk_fraction * bytes_per_device
            seconds = model.group_time(
                op=step.collective,
                algorithm=algorithm,
                group_size=cls.group_size,
                payload_bytes=payload,
                bandwidth=cls.effective_bandwidth,
                link_latency=cls.link_latency,
            )
            if seconds > worst_seconds:
                worst_seconds = seconds
                worst_link = cls.link_name
                worst_payload = payload
        steps.append(
            StepSimulation(
                collective=step.collective,
                num_groups=step.num_groups,
                group_size=step.group_size,
                seconds=worst_seconds,
                bottleneck_link=worst_link,
                max_sharing=step.max_sharing,
                payload_bytes=worst_payload,
            )
        )
        total += worst_seconds
    return SimulationResult(
        total_seconds=total,
        steps=tuple(steps),
        algorithm=algorithm,
        bytes_per_device=bytes_per_device,
        label=profile.label if label is None else label,
    )
