"""Vectorized batch pricing over compiled simulation profiles (ROADMAP item 3).

:func:`repro.cost.profile.price_profile` is a pure-Python ``O(steps x
classes)`` loop per ``(payload, algorithm)``.  Payload-ladder sweeps, baseline
pricing and scenario grids re-run that loop thousands of times over profiles
that are already compiled, so the loop itself becomes the hot path.  A
:class:`BatchPricer` lifts it into numpy: once per
:class:`~repro.cost.profile.SimulationProfile` it stacks the per-class
coefficients — chunk fraction, contended bandwidth, link latency, and the
``group_size``-derived wire-volume and latency-step factors of both NCCL
algorithms — into flat arrays, and then prices an entire payload vector (or a
payloads x algorithms grid) with elementwise broadcast ops plus an ordered
per-step reduction.

The contract is the same one ``tests/test_cost_profile.py`` enforces between
the profile and the reference simulator: **exact float equality**, not
approximation.  Every arithmetic step mirrors the scalar loop operation for
operation:

* the wire volume is linear in the payload with zero intercept, so the
  per-class volume collapses to ``coefficient * payload`` where
  ``coefficient = bytes_on_wire(op, algorithm, group_size, 1.0)``; because the
  scalar formulas multiply the payload last (``((2.0*(g-1))/g) * n``,
  ``(g-1) * n``, ``1.0 * n == n``), the product is bit-identical to the
  scalar call at every payload;
* the latency term ``latency_steps * link_latency`` is payload-independent
  and precomputed exactly as the scalar code evaluates it;
* per-class seconds are ``launch + (latency + volume / bandwidth)`` with the
  scalar parenthesization, the small-message bandwidth derating applied under
  the identical strict ``<`` comparison;
* the per-step bottleneck is ``argmax`` over the class axis in
  first-occurrence order — exactly the class the scalar strict ``>`` scan
  selects (when every class prices to 0.0 the scalar fallback reports the
  first class's link at payload 0.0, which is also what index 0 yields,
  because a zero step time forces a zero payload: volume coefficients are
  strictly positive for any group of >= 2 devices);
* program totals accumulate the per-step maxima **sequentially in step
  order** (never a pairwise/tree sum, which would round differently).

When numpy is unavailable the pricer transparently falls back to the scalar
loop (flagged via :attr:`BatchPricer.vectorized` so callers can count
fallbacks); results are identical either way.

:func:`price_programs` is the cross-program companion: it concatenates many
pricers' class rows into one flat array and prices them all at a single
payload with one kernel — per-step maxima via ``np.maximum.reduceat`` (max is
exact and order-free over non-NaN floats) and per-program totals via a small
sequential loop over steps.  The streaming search driver uses it to price a
whole exhaustive entry stream in one call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is a declared dependency, but the scalar fallback keeps the
    import numpy as _np  # simulator importable on stripped-down interpreters.
except ImportError:  # pragma: no cover - exercised via _force_scalar in tests
    _np = None

from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm, bytes_on_wire, latency_steps
from repro.cost.profile import SimulationProfile, price_profile
from repro.errors import CostModelError

__all__ = [
    "have_numpy",
    "BatchPricer",
    "BatchPriceResult",
    "price_programs",
]


def have_numpy() -> bool:
    """Whether the vectorized kernels are available in this interpreter."""
    return _np is not None


class _FlatTable:
    """All steps' class coefficients under one algorithm, concatenated.

    One row per (step, class) in step order; ``offsets`` marks where each
    non-empty step's segment begins (for ``np.maximum.reduceat``) and
    ``positions`` maps each profile step to its segment index (``None`` for
    steps with no classes).  Flattening lets one kernel price every step at
    once — per-step sub-arrays would pay numpy's per-call overhead dozens of
    times per profile.
    """

    __slots__ = ("frac", "ebw", "coeff", "lat", "offsets", "positions")

    def __init__(self, frac, ebw, coeff, lat, offsets, positions) -> None:
        self.frac = frac  # chunk fraction per class row
        self.ebw = ebw  # contended bandwidth per class row
        self.coeff = coeff  # wire bytes per payload byte per class row
        self.lat = lat  # latency_steps * link_latency per class row
        self.offsets = offsets  # segment starts (np.intp), one per non-empty step
        self.positions = positions  # per step: segment index or None


def _validated_payloads(payloads: Sequence[float]) -> List[float]:
    values = list(payloads)
    if not values:
        raise CostModelError("payload vector must be non-empty")
    for value in values:
        if value < 0:
            raise CostModelError("bytes_per_device must be non-negative")
    return values


class BatchPricer:
    """One profile's pricing arithmetic, compiled into coefficient tables.

    Construction walks the profile once per algorithm (the only place
    ``bytes_on_wire`` / ``latency_steps`` are evaluated); pricing afterwards
    is pure array arithmetic.  The pricer is payload- and cost-model-free:
    launch overhead and the small-message derating are applied at price time,
    so one pricer serves any :class:`~repro.cost.model.CostModel` exactly
    like the scalar loop does.
    """

    def __init__(self, profile: SimulationProfile) -> None:
        self.profile = profile
        self.vectorized = _np is not None
        # link names per step, for materializing SimulationResult objects.
        self._links: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(cls.link_name for cls in step.classes) for step in profile.steps
        )
        self._flat: Dict[NCCLAlgorithm, Optional[_FlatTable]] = {}
        self._bounds: Dict[NCCLAlgorithm, List[Tuple[float, float]]] = {}
        if self.vectorized:
            for algorithm in (NCCLAlgorithm.RING, NCCLAlgorithm.TREE):
                self._flat[algorithm] = self._flat_table(profile, algorithm)
                self._bounds[algorithm] = [
                    step.bound_coefficients(algorithm) for step in profile.steps
                ]

    @staticmethod
    def _flat_table(
        profile: SimulationProfile, algorithm: NCCLAlgorithm
    ) -> Optional[_FlatTable]:
        frac: List[float] = []
        ebw: List[float] = []
        coeff: List[float] = []
        lat: List[float] = []
        offsets: List[int] = []
        positions: List[Optional[int]] = []
        for step in profile.steps:
            if not step.classes:
                positions.append(None)
                continue
            offsets.append(len(frac))
            positions.append(len(offsets) - 1)
            for cls in step.classes:
                frac.append(cls.chunk_fraction)
                ebw.append(cls.effective_bandwidth)
                # bytes_on_wire at payload 1.0 is exactly the per-byte
                # coefficient: the scalar formulas all multiply the payload
                # last, so coefficient * payload reproduces them bit for bit.
                coeff.append(
                    bytes_on_wire(step.collective, algorithm, cls.group_size, 1.0)
                )
                lat.append(
                    latency_steps(step.collective, algorithm, cls.group_size)
                    * cls.link_latency
                )
        if not offsets:
            return None
        as_array = lambda xs: _np.asarray(xs, dtype=_np.float64)  # noqa: E731
        return _FlatTable(
            as_array(frac),
            as_array(ebw),
            as_array(coeff),
            as_array(lat),
            _np.asarray(offsets, dtype=_np.intp),
            tuple(positions),
        )

    # ------------------------------------------------------------------ #
    def price(
        self,
        payloads: Sequence[float],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        cost_model: Optional[CostModel] = None,
        label: Optional[str] = None,
    ) -> "BatchPriceResult":
        """Price the whole payload vector; exact-equal to the scalar loop."""
        values = _validated_payloads(payloads)
        model = cost_model if cost_model is not None else CostModel()
        if not self.vectorized:
            return BatchPriceResult._from_scalar(
                self.profile, values, algorithm, model, label
            )

        num_payloads = len(values)
        flat = self._flat[algorithm]
        if flat is None:
            # Every step is empty: all-zero totals, "-" fallback links.
            return BatchPriceResult(
                profile=self.profile,
                algorithm=algorithm,
                payloads=tuple(values),
                label=label,
                _totals=_np.zeros(num_payloads),
                _positions=(None,) * self.profile.num_steps,
                _links=self._links,
            )
        p = _np.asarray(values, dtype=_np.float64)
        launch = model.launch_overhead
        smb = model.small_message_bytes
        eff = model.small_message_efficiency

        # One kernel over every (step, class) row at once:
        # payload = chunk_fraction * bytes_per_device per class row, the
        # small-message derating of CostModel.group_time under the scalar
        # strict ``<`` comparison, then launch + (steps * latency +
        # volume / bandwidth) with the exact scalar parenthesization.
        pay = flat.frac[:, None] * p[None, :]
        bw = _np.where(pay < smb, flat.ebw[:, None] * eff, flat.ebw[:, None])
        sec = launch + (flat.lat[:, None] + (flat.coeff[:, None] * pay) / bw)
        # Per-step maxima over each segment (max over non-NaN floats is
        # exact and order-free, so the reduce equals the scalar scan).
        worst = _np.maximum.reduceat(sec, flat.offsets, axis=0)
        totals = _np.zeros(num_payloads)
        for position in flat.positions:
            if position is not None:
                # Sequential accumulation in step order: bit-identical to
                # the scalar ``total += worst_seconds`` (never pairwise).
                totals += worst[position]
        return BatchPriceResult(
            profile=self.profile,
            algorithm=algorithm,
            payloads=tuple(values),
            label=label,
            _totals=totals,
            _sec=sec,
            _pay=pay,
            _worst=worst,
            _offsets=flat.offsets,
            _positions=flat.positions,
            _links=self._links,
        )

    def grid(
        self,
        payloads: Sequence[float],
        algorithms: Sequence[NCCLAlgorithm] = (NCCLAlgorithm.RING, NCCLAlgorithm.TREE),
        cost_model: Optional[CostModel] = None,
        label: Optional[str] = None,
    ) -> Dict[NCCLAlgorithm, "BatchPriceResult"]:
        """The (payloads x algorithms) grid as one result per algorithm."""
        return {
            algorithm: self.price(payloads, algorithm, cost_model, label)
            for algorithm in algorithms
        }

    def lower_bounds(
        self,
        payloads: Sequence[float],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        cost_model: Optional[CostModel] = None,
    ) -> List[float]:
        """Vectorized :meth:`SimulationProfile.lower_bound` over a payload vector.

        Exact-equal to the scalar method at every payload, so bounds priced
        through the batch path stay admissible by the very same floats.
        """
        values = _validated_payloads(payloads)
        model = cost_model if cost_model is not None else CostModel()
        if not self.vectorized:
            return [
                self.profile.lower_bound(value, algorithm, model) for value in values
            ]
        p = _np.asarray(values, dtype=_np.float64)
        totals = _np.zeros(len(values))
        for latency_seconds, seconds_per_byte in self._bounds[algorithm]:
            term = model.launch_overhead + _np.maximum(
                latency_seconds, seconds_per_byte * p
            )
            totals = totals + term
        return [float(x) for x in totals]


class BatchPriceResult:
    """A whole payload ladder priced against one profile under one algorithm.

    ``totals`` mirrors ``price_profile(...).total_seconds`` per payload;
    :meth:`result` materializes the full per-step
    :class:`~repro.cost.simulator.SimulationResult` for one column on demand
    (bottleneck links and payloads included), bit-identical to the scalar
    call.
    """

    def __init__(
        self,
        profile: SimulationProfile,
        algorithm: NCCLAlgorithm,
        payloads: Tuple[float, ...],
        label: Optional[str],
        _totals=None,
        _sec=None,
        _pay=None,
        _worst=None,
        _offsets=None,
        _positions=None,
        _links=None,
        _scalar_results=None,
    ) -> None:
        self.profile = profile
        self.algorithm = algorithm
        self.payloads = payloads
        self.label = label
        self._totals = _totals
        # The flattened per-(step, class) seconds/payload matrices plus the
        # segment layout; bottlenecks and full results materialize lazily
        # from them, so the totals-only hot path never pays for argmax.
        self._sec = _sec
        self._pay = _pay
        self._worst = _worst
        self._offsets = _offsets
        self._positions = _positions
        self._links = _links
        self._scalar_results = _scalar_results

    def _segment(self, position: int) -> Tuple[int, int]:
        start = int(self._offsets[position])
        if position + 1 < len(self._offsets):
            return start, int(self._offsets[position + 1])
        return start, self._sec.shape[0]

    @classmethod
    def _from_scalar(cls, profile, values, algorithm, model, label):
        results = [
            price_profile(profile, value, algorithm, model, label=label)
            for value in values
        ]
        return cls(
            profile=profile,
            algorithm=algorithm,
            payloads=tuple(values),
            label=label,
            _scalar_results=results,
        )

    @property
    def num_payloads(self) -> int:
        return len(self.payloads)

    @property
    def vectorized(self) -> bool:
        return self._scalar_results is None

    @property
    def totals(self) -> List[float]:
        """``total_seconds`` per payload, as Python floats, in input order."""
        if self._scalar_results is not None:
            return [result.total_seconds for result in self._scalar_results]
        return [float(x) for x in self._totals]

    def total(self, index: int) -> float:
        if self._scalar_results is not None:
            return self._scalar_results[index].total_seconds
        return float(self._totals[index])

    def bottlenecks(self, index: int) -> List[int]:
        """Per-step bottleneck class indices for payload ``index`` (-1: empty step)."""
        if self._scalar_results is not None:
            out = []
            for s, step in enumerate(self.profile.steps):
                sim = self._scalar_results[index].steps[s]
                if not step.classes:
                    out.append(-1)
                    continue
                names = [c.link_name for c in step.classes]
                # The scalar result records the link, not the index; recover
                # the first class matching both link and seconds.
                chosen = 0
                for k, cls_ in enumerate(step.classes):
                    if names[k] == sim.bottleneck_link:
                        chosen = k
                        break
                out.append(chosen)
            return out
        indices = []
        for position in self._positions:
            if position is None:
                indices.append(-1)
                continue
            start, end = self._segment(position)
            # First-occurrence argmax == the scalar strict ``>`` scan.
            indices.append(int(_np.argmax(self._sec[start:end, index])))
        return indices

    def result(self, index: int, label: Optional[str] = None):
        """The full :class:`SimulationResult` for one payload column."""
        from repro.cost.simulator import SimulationResult, StepSimulation

        if self._scalar_results is not None:
            base = self._scalar_results[index]
            if label is None or label == base.label:
                return base
            return SimulationResult(
                total_seconds=base.total_seconds,
                steps=base.steps,
                algorithm=base.algorithm,
                bytes_per_device=base.bytes_per_device,
                label=label,
            )
        steps = []
        for s, step in enumerate(self.profile.steps):
            position = self._positions[s]
            if position is None:
                # An empty step prices to 0.0 with the "-" fallback link.
                seconds, link, payload = 0.0, "-", 0.0
            else:
                start, end = self._segment(position)
                k = int(_np.argmax(self._sec[start:end, index]))
                seconds = float(self._worst[position, index])
                link = self._links[s][k]
                payload = float(self._pay[start + k, index])
            steps.append(
                StepSimulation(
                    collective=step.collective,
                    num_groups=step.num_groups,
                    group_size=step.group_size,
                    seconds=seconds,
                    bottleneck_link=link,
                    max_sharing=step.max_sharing,
                    payload_bytes=payload,
                )
            )
        effective_label = label if label is not None else self.label
        if effective_label is None:
            effective_label = self.profile.label
        return SimulationResult(
            total_seconds=float(self._totals[index]),
            steps=tuple(steps),
            algorithm=self.algorithm,
            bytes_per_device=self.payloads[index],
            label=effective_label,
        )

    def results(self, label: Optional[str] = None) -> List:
        return [self.result(i, label=label) for i in range(self.num_payloads)]


def price_programs(
    pricers: Sequence[BatchPricer],
    bytes_per_device: float,
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    cost_model: Optional[CostModel] = None,
) -> List[float]:
    """Total seconds for many profiles at one payload, in one flat kernel.

    All pricers' class rows are concatenated into one array; per-step maxima
    come from ``np.maximum.reduceat`` over the step segments (max over
    non-NaN floats is exact and order-free, so the segment reduce equals the
    scalar first-to-last scan), and per-program totals accumulate the step
    maxima sequentially in step order.  Exact-equal to calling
    ``price_profile(...).total_seconds`` on each profile.
    """
    if bytes_per_device < 0:
        raise CostModelError("bytes_per_device must be non-negative")
    model = cost_model if cost_model is not None else CostModel()
    if _np is None or any(not pricer.vectorized for pricer in pricers):
        return [
            price_profile(
                pricer.profile, bytes_per_device, algorithm, model
            ).total_seconds
            for pricer in pricers
        ]

    # Concatenate the pricers' flat tables: one row per (pricer, step,
    # class); record, per pricer, the ordered list of its steps' segment
    # positions (None for empty steps).
    frac_parts: List = []
    ebw_parts: List = []
    coeff_parts: List = []
    lat_parts: List = []
    offset_parts: List = []
    program_steps: List[Sequence[Optional[int]]] = []
    cursor = 0
    segment = 0
    for pricer in pricers:
        flat = pricer._flat[algorithm]
        if flat is None:
            program_steps.append((None,) * pricer.profile.num_steps)
            continue
        frac_parts.append(flat.frac)
        ebw_parts.append(flat.ebw)
        coeff_parts.append(flat.coeff)
        lat_parts.append(flat.lat)
        offset_parts.append(flat.offsets + cursor)
        program_steps.append(
            tuple(
                None if position is None else segment + position
                for position in flat.positions
            )
        )
        cursor += flat.frac.shape[0]
        segment += len(flat.offsets)

    if not offset_parts:
        return [0.0] * len(pricers)

    frac = _np.concatenate(frac_parts)
    ebw = _np.concatenate(ebw_parts)
    coeff = _np.concatenate(coeff_parts)
    lat = _np.concatenate(lat_parts)

    p = _np.float64(bytes_per_device)
    pay = frac * p
    bw = _np.where(pay < model.small_message_bytes, ebw * model.small_message_efficiency, ebw)
    sec = model.launch_overhead + (lat + (coeff * pay) / bw)
    step_max = _np.maximum.reduceat(sec, _np.concatenate(offset_parts))

    totals: List[float] = []
    for positions in program_steps:
        total = 0.0
        for position in positions:
            if position is not None:
                # Sequential step accumulation, as in the scalar loop.
                total = total + float(step_max[position])
        totals.append(total)
    return totals
