"""The analytic program simulator (paper §5).

Given a lowered program, a machine topology and the per-device payload size,
the simulator

1. runs the Hoare semantics of the program over the physical devices to know
   how many bytes each device holds before every step (ReduceScatter shrinks
   payloads, AllGather grows them — this is what makes hierarchical
   strategies cheap on the cross-node hop),
2. analyses per-step link contention (:mod:`repro.cost.contention`), and
3. prices every group with the alpha-beta model (:mod:`repro.cost.nccl`),
   taking the step time as the maximum over its concurrent groups and the
   program time as the sum over steps.

Steps 1 and 2 are payload-independent, so :class:`ProgramSimulator` performs
them once per program by compiling a :class:`~repro.cost.profile.SimulationProfile`
(cached in an LRU keyed by :meth:`LoweredProgram.signature`) and answering
every ``simulate`` call by *pricing* the profile — a closed-form loop over
group equivalence classes.  The priced result is bit-identical to the
original per-group evaluation, which remains available as
:meth:`ProgramSimulator.simulate_reference` and serves as the executable
specification the profile is property-tested against.

The result object keeps the per-step breakdown so the evaluation harness and
the examples can explain *why* a strategy wins.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cost.batch import BatchPricer, BatchPriceResult, have_numpy, price_programs
from repro.cost.contention import analyze_step_contention
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.profile import SimulationProfile, compile_profile, price_profile
from repro.errors import CostModelError
from repro.obs.recorder import get_recorder
from repro.semantics.collectives import Collective, apply_collective
from repro.semantics.goals import initial_context
from repro.semantics.state import DeviceState, StateContext
from repro.synthesis.lowering import LoweredProgram, LoweredStep
from repro.topology.topology import MachineTopology

__all__ = ["StepSimulation", "SimulationResult", "ProgramSimulator", "simulate_program"]


@dataclass(frozen=True)
class StepSimulation:
    """Cost breakdown of one step of a simulated program."""

    collective: Collective
    num_groups: int
    group_size: int
    seconds: float
    bottleneck_link: str
    max_sharing: float
    payload_bytes: float

    def describe(self) -> str:
        return (
            f"{self.collective} x{self.num_groups} (g={self.group_size}, "
            f"{self.payload_bytes / 1e6:.1f} MB) -> {self.seconds:.4f}s "
            f"via {self.bottleneck_link} (sharing {self.max_sharing:.0f})"
        )


@dataclass(frozen=True)
class SimulationResult:
    """End-to-end prediction for one lowered program."""

    total_seconds: float
    steps: Tuple[StepSimulation, ...]
    algorithm: NCCLAlgorithm
    bytes_per_device: float
    label: str = ""

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        header = f"{self.label or 'program'}: {self.total_seconds:.4f}s ({self.algorithm})"
        return "\n".join([header] + [f"  {s.describe()}" for s in self.steps])


@dataclass
class ProgramSimulator:
    """Reusable simulator bound to one topology and one cost model.

    The simulator keeps an LRU cache of compiled
    :class:`~repro.cost.profile.SimulationProfile` objects keyed by
    :meth:`LoweredProgram.signature`, so re-simulating a known communication
    pattern — the same program at another payload, under the other NCCL
    algorithm, or a signature-identical candidate from a different placement —
    skips semantics and contention analysis entirely.  ``profile_hits`` /
    ``profile_misses`` count cache outcomes; they feed the planning
    provenance surfaced by ``sweep --json``, and are mirrored into the
    telemetry recorder (``profile.hit`` / ``profile.miss`` counters, a
    ``profile.compile`` span per cold signature) when telemetry is enabled.
    The recorder is captured at construction — install one via
    :func:`repro.obs.set_recorder` before building simulators that should
    report into it.
    """

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)
    profile_cache_size: int = 4096
    recorder: Any = field(
        default_factory=get_recorder, repr=False, compare=False
    )
    profile_hits: int = field(default=0, init=False, repr=False, compare=False)
    profile_misses: int = field(default=0, init=False, repr=False, compare=False)
    # Batch-pricing provenance: how many vectorized kernel invocations ran,
    # how many (program, payload) cells they covered, and how many calls fell
    # back to the scalar loop (numpy unavailable).  Mirrored into the
    # telemetry recorder as ``batch.prices`` / ``batch.payloads`` /
    # ``batch.fallback``.
    batch_prices: int = field(default=0, init=False, repr=False, compare=False)
    batch_payloads: int = field(default=0, init=False, repr=False, compare=False)
    batch_fallbacks: int = field(default=0, init=False, repr=False, compare=False)
    _profiles: "OrderedDict[Tuple, SimulationProfile]" = field(
        default_factory=OrderedDict, init=False, repr=False, compare=False
    )
    _pricers: "OrderedDict[Tuple, BatchPricer]" = field(
        default_factory=OrderedDict, init=False, repr=False, compare=False
    )
    _ladder: Optional[Tuple[float, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _ladder_index: Dict[float, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _ladder_memo: "OrderedDict[Tuple, BatchPriceResult]" = field(
        default_factory=OrderedDict, init=False, repr=False, compare=False
    )

    def simulate(
        self,
        program: LoweredProgram,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """Predict the end-to-end time of ``program`` (profile fast path).

        When a payload ladder is installed (:meth:`set_payload_ladder`) and
        ``bytes_per_device`` is one of its rungs, the whole ladder is priced
        through the vectorized :class:`~repro.cost.batch.BatchPricer` on the
        first rung and memoized per ``(signature, algorithm)``; later rungs
        are O(1) lookups.  Results are exactly the floats the scalar loop
        produces — the contract :mod:`repro.cost.batch` maintains.
        """
        self._validate(program, bytes_per_device)
        profile = self.profile_for(program)
        if self._ladder is not None:
            column = self._ladder_index.get(float(bytes_per_device))
            if column is not None:
                memo = self._ladder_result(program, profile, algorithm)
                return memo.result(column, label=program.label)
        with self.recorder.span("profile.price", steps=program.num_steps):
            return price_profile(
                profile, bytes_per_device, algorithm, self.cost_model, label=program.label
            )

    def simulate_batch(
        self,
        program: LoweredProgram,
        payloads: Sequence[float],
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> BatchPriceResult:
        """Price ``program`` across a whole payload vector in one kernel.

        Backed by the same profile cache as :meth:`simulate` (hit/miss
        accounting is identical) plus a per-signature
        :class:`~repro.cost.batch.BatchPricer` cache, so re-pricing a known
        signature at a new ladder skips both semantics and table building.
        Totals, per-step seconds, bottleneck links and payloads are exactly
        equal to per-payload :meth:`simulate` calls.
        """
        values = list(payloads)
        self._validate(program, 0.0)
        profile = self.profile_for(program)
        pricer = self.pricer_for(program.signature(), profile)
        with self.recorder.span(
            "profile.price", steps=program.num_steps, payloads=len(values)
        ):
            result = pricer.price(
                values, algorithm, self.cost_model, label=program.label
            )
        self._count_batch(result.vectorized, result.num_payloads)
        return result

    def simulate_many(
        self,
        programs: Sequence[LoweredProgram],
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> List[float]:
        """Total predicted seconds for many programs at one payload.

        One flattened :func:`~repro.cost.batch.price_programs` kernel prices
        every program's class rows together; with a payload ladder installed
        and ``bytes_per_device`` on it, each program instead reads (and on
        first touch fills) its ladder memo, so the remaining rungs of a sweep
        are pure lookups.  Profiles are resolved through :meth:`profile_for`
        in input order — the hit/miss provenance is exactly what per-program
        :meth:`simulate` calls would record.
        """
        if not programs:
            return []
        for program in programs:
            self._validate(program, bytes_per_device)
        profiles = [self.profile_for(program) for program in programs]
        column = (
            self._ladder_index.get(float(bytes_per_device))
            if self._ladder is not None
            else None
        )
        with self.recorder.span(
            "profile.price", programs=len(programs), batched=True
        ):
            if column is not None:
                totals = [
                    self._ladder_result(program, profile, algorithm).total(column)
                    for program, profile in zip(programs, profiles)
                ]
                return totals
            pricers = [
                self.pricer_for(program.signature(), profile)
                for program, profile in zip(programs, profiles)
            ]
            totals = price_programs(
                pricers, bytes_per_device, algorithm, self.cost_model
            )
        self._count_batch(have_numpy(), len(programs))
        return totals

    def set_payload_ladder(
        self, payloads: Optional[Sequence[float]] = None
    ) -> None:
        """Install (or clear, with ``None``) the payload-ladder memo.

        A sweep that re-plans the same shapes across a payload ladder calls
        this with the full ladder up front; every rung after a signature's
        first is then answered from the memoized batch result.  Installing a
        ladder drops previous memos; ladders with fewer than two distinct
        payloads clear the memo entirely (no batching to amortize).
        """
        self._ladder_memo.clear()
        self._ladder_index = {}
        if payloads is None:
            self._ladder = None
            return
        values = [float(p) for p in payloads]
        for value in values:
            if value < 0:
                raise CostModelError("bytes_per_device must be non-negative")
        distinct: List[float] = []
        for value in values:
            if value not in distinct:
                distinct.append(value)
        if len(distinct) < 2 or not have_numpy():
            self._ladder = None
            return
        self._ladder = tuple(distinct)
        self._ladder_index = {value: i for i, value in enumerate(distinct)}

    @property
    def payload_ladder(self) -> Optional[Tuple[float, ...]]:
        return self._ladder

    def _ladder_result(
        self,
        program: LoweredProgram,
        profile: SimulationProfile,
        algorithm: NCCLAlgorithm,
    ) -> BatchPriceResult:
        key = (program.signature(), algorithm)
        memo = self._ladder_memo.get(key)
        if memo is not None:
            self._ladder_memo.move_to_end(key)
            return memo
        pricer = self.pricer_for(program.signature(), profile)
        with self.recorder.span(
            "profile.price", steps=program.num_steps, payloads=len(self._ladder)
        ):
            memo = pricer.price(self._ladder, algorithm, self.cost_model)
        self._count_batch(memo.vectorized, memo.num_payloads)
        self._ladder_memo[key] = memo
        if len(self._ladder_memo) > self.profile_cache_size:
            self._ladder_memo.popitem(last=False)
        return memo

    def pricer_for(self, key: Tuple, profile: SimulationProfile) -> BatchPricer:
        """The (cached) coefficient tables for one profile signature."""
        pricer = self._pricers.get(key)
        if pricer is not None:
            self._pricers.move_to_end(key)
            return pricer
        pricer = BatchPricer(profile)
        self._pricers[key] = pricer
        if len(self._pricers) > self.profile_cache_size:
            self._pricers.popitem(last=False)
        return pricer

    def _count_batch(self, vectorized: bool, payloads: int) -> None:
        if vectorized:
            self.batch_prices += 1
            self.batch_payloads += payloads
            self.recorder.count("batch.prices")
            self.recorder.count("batch.payloads", payloads)
        else:
            self.batch_fallbacks += 1
            self.recorder.count("batch.fallback")

    def profile_for(self, program: LoweredProgram) -> SimulationProfile:
        """The compiled profile of ``program``, from the LRU cache when known."""
        key = program.signature()
        cached = self._profiles.get(key)
        if cached is not None:
            self.profile_hits += 1
            self.recorder.count("profile.hit")
            self._profiles.move_to_end(key)
            return cached
        self.profile_misses += 1
        self.recorder.count("profile.miss")
        with self.recorder.span("profile.compile", steps=program.num_steps):
            profile = compile_profile(program, self.topology)
        self._profiles[key] = profile
        if len(self._profiles) > self.profile_cache_size:
            self._profiles.popitem(last=False)
        return profile

    def cached_profile(self, program: LoweredProgram) -> Optional[SimulationProfile]:
        """The cached profile for ``program``, or ``None`` (counts as a hit only).

        A miss is *not* counted here: callers that compile elsewhere (e.g. a
        worker pool compiling in parallel) record it via :meth:`adopt_profile`
        so hits + misses always equals the number of distinct signatures
        priced, matching the serial path's accounting.
        """
        key = program.signature()
        cached = self._profiles.get(key)
        if cached is not None:
            self.profile_hits += 1
            self.recorder.count("profile.hit")
            self._profiles.move_to_end(key)
        return cached

    def peek_profile(self, program: LoweredProgram) -> Optional[SimulationProfile]:
        """The cached profile for ``program`` without touching the counters.

        Unlike :meth:`cached_profile` this neither records a hit nor moves
        the entry in the LRU — it is for *bound* computations (the search
        driver asks "can this candidate possibly beat the incumbent?") that
        must not perturb the hits+misses == distinct-signatures-priced
        accounting the planning provenance reports.
        """
        return self._profiles.get(program.signature())

    def adopt_profile(
        self, program: LoweredProgram, profile: SimulationProfile
    ) -> None:
        """Insert a profile compiled elsewhere (counted as one miss/compile)."""
        self.profile_misses += 1
        # The worker that compiled it already counted ``profile.miss`` in its
        # own recorder delta (merged back into this one), so the telemetry
        # counter distinguishes adoptions to avoid double-counting compiles.
        self.recorder.count("profile.adopted")
        self._profiles[program.signature()] = profile
        if len(self._profiles) > self.profile_cache_size:
            self._profiles.popitem(last=False)

    @property
    def cached_profiles(self) -> int:
        return len(self._profiles)

    def clear_profiles(self) -> None:
        """Drop every cached profile, pricer table and ladder memo."""
        self._profiles.clear()
        self._pricers.clear()
        self._ladder_memo.clear()

    # ------------------------------------------------------------------ #
    # Reference implementation (the executable specification)
    # ------------------------------------------------------------------ #
    def simulate_reference(
        self,
        program: LoweredProgram,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """The original per-group evaluation, kept as the specification.

        Profile pricing (:meth:`simulate`) must stay bit-identical to this
        method — ``tests/test_cost_profile.py`` asserts exact float equality
        across payload ladders and both NCCL algorithms.  New cost-model
        features land here first and must be mirrored into
        :mod:`repro.cost.profile` under the same contract.
        """
        self._validate(program, bytes_per_device)
        context = initial_context(program.num_devices)
        steps: List[StepSimulation] = []
        total = 0.0
        for step in program.steps:
            step_result, context = self._simulate_step(
                step, context, bytes_per_device, algorithm
            )
            steps.append(step_result)
            total += step_result.seconds
        return SimulationResult(
            total_seconds=total,
            steps=tuple(steps),
            algorithm=algorithm,
            bytes_per_device=bytes_per_device,
            label=program.label,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validate(self, program: LoweredProgram, bytes_per_device: float) -> None:
        if bytes_per_device < 0:
            raise CostModelError("bytes_per_device must be non-negative")
        if program.num_devices != self.topology.num_devices:
            raise CostModelError(
                f"program is over {program.num_devices} devices but the topology has "
                f"{self.topology.num_devices}"
            )

    def _simulate_step(
        self,
        step: LoweredStep,
        context: StateContext,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm,
    ) -> Tuple[StepSimulation, StateContext]:
        contention = analyze_step_contention(step, self.topology)

        # A lowered step always has at least one group (LoweredStep enforces
        # it), so the fallback bottleneck is the first group's link: it is
        # reported, with the 0.0 payload it was priced at, exactly when every
        # group prices to 0.0 seconds (zero payload under a zero-overhead
        # cost model on zero-latency links) and the strict ``>`` never fires.
        worst_seconds = 0.0
        worst_link = contention.groups[0].link.name if contention.groups else "-"
        worst_payload = 0.0
        updates: Dict[int, DeviceState] = {}

        for group, cost in zip(step.groups, contention.groups):
            pre_states = [context[d] for d in group]
            payload = max(s.chunk_fraction() for s in pre_states) * bytes_per_device
            seconds = self.cost_model.group_time(
                op=step.collective,
                algorithm=algorithm,
                group_size=len(group),
                payload_bytes=payload,
                bandwidth=cost.effective_bandwidth,
                link_latency=cost.link.latency,
            )
            if seconds > worst_seconds:
                worst_seconds = seconds
                worst_link = cost.link.name
                worst_payload = payload
            post_states = apply_collective(step.collective, pre_states)
            for device, state in zip(group, post_states):
                updates[device] = state

        new_context = context.replace(updates)
        step_result = StepSimulation(
            collective=step.collective,
            num_groups=step.num_groups,
            group_size=step.group_size,
            seconds=worst_seconds,
            bottleneck_link=worst_link,
            max_sharing=contention.max_sharing,
            payload_bytes=worst_payload,
        )
        return step_result, new_context


def simulate_program(
    program: LoweredProgram,
    topology: MachineTopology,
    bytes_per_device: float,
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    cost_model: Optional[CostModel] = None,
) -> SimulationResult:
    """Convenience wrapper around :class:`ProgramSimulator` for one-off calls."""
    simulator = ProgramSimulator(topology, cost_model or CostModel())
    return simulator.simulate(program, bytes_per_device, algorithm)
