"""The analytic program simulator (paper §5).

Given a lowered program, a machine topology and the per-device payload size,
the simulator

1. runs the Hoare semantics of the program over the physical devices to know
   how many bytes each device holds before every step (ReduceScatter shrinks
   payloads, AllGather grows them — this is what makes hierarchical
   strategies cheap on the cross-node hop),
2. analyses per-step link contention (:mod:`repro.cost.contention`), and
3. prices every group with the alpha-beta model (:mod:`repro.cost.nccl`),
   taking the step time as the maximum over its concurrent groups and the
   program time as the sum over steps.

The result object keeps the per-step breakdown so the evaluation harness and
the examples can explain *why* a strategy wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cost.contention import analyze_step_contention
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.errors import CostModelError
from repro.semantics.collectives import Collective, apply_collective
from repro.semantics.goals import initial_context
from repro.semantics.state import DeviceState, StateContext
from repro.synthesis.lowering import LoweredProgram, LoweredStep
from repro.topology.topology import MachineTopology

__all__ = ["StepSimulation", "SimulationResult", "ProgramSimulator", "simulate_program"]


@dataclass(frozen=True)
class StepSimulation:
    """Cost breakdown of one step of a simulated program."""

    collective: Collective
    num_groups: int
    group_size: int
    seconds: float
    bottleneck_link: str
    max_sharing: float
    payload_bytes: float

    def describe(self) -> str:
        return (
            f"{self.collective} x{self.num_groups} (g={self.group_size}, "
            f"{self.payload_bytes / 1e6:.1f} MB) -> {self.seconds:.4f}s "
            f"via {self.bottleneck_link} (sharing {self.max_sharing:.0f})"
        )


@dataclass(frozen=True)
class SimulationResult:
    """End-to-end prediction for one lowered program."""

    total_seconds: float
    steps: Tuple[StepSimulation, ...]
    algorithm: NCCLAlgorithm
    bytes_per_device: float
    label: str = ""

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        header = f"{self.label or 'program'}: {self.total_seconds:.4f}s ({self.algorithm})"
        return "\n".join([header] + [f"  {s.describe()}" for s in self.steps])


@dataclass
class ProgramSimulator:
    """Reusable simulator bound to one topology and one cost model."""

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)

    def simulate(
        self,
        program: LoweredProgram,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """Predict the end-to-end time of ``program``."""
        if bytes_per_device < 0:
            raise CostModelError("bytes_per_device must be non-negative")
        if program.num_devices != self.topology.num_devices:
            raise CostModelError(
                f"program is over {program.num_devices} devices but the topology has "
                f"{self.topology.num_devices}"
            )

        context = initial_context(program.num_devices)
        steps: List[StepSimulation] = []
        total = 0.0
        for step in program.steps:
            step_result, context = self._simulate_step(
                step, context, bytes_per_device, algorithm
            )
            steps.append(step_result)
            total += step_result.seconds
        return SimulationResult(
            total_seconds=total,
            steps=tuple(steps),
            algorithm=algorithm,
            bytes_per_device=bytes_per_device,
            label=program.label,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _simulate_step(
        self,
        step: LoweredStep,
        context: StateContext,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm,
    ) -> Tuple[StepSimulation, StateContext]:
        contention = analyze_step_contention(step, self.topology)

        worst_seconds = 0.0
        worst_link = contention.groups[0].link.name if contention.groups else "-"
        worst_payload = 0.0
        updates: Dict[int, DeviceState] = {}

        for group, cost in zip(step.groups, contention.groups):
            pre_states = [context[d] for d in group]
            payload = max(s.chunk_fraction() for s in pre_states) * bytes_per_device
            seconds = self.cost_model.group_time(
                op=step.collective,
                algorithm=algorithm,
                group_size=len(group),
                payload_bytes=payload,
                bandwidth=cost.effective_bandwidth,
                link_latency=cost.link.latency,
            )
            if seconds > worst_seconds:
                worst_seconds = seconds
                worst_link = cost.link.name
                worst_payload = payload
            post_states = apply_collective(step.collective, pre_states)
            for device, state in zip(group, post_states):
                updates[device] = state

        new_context = context.replace(updates)
        step_result = StepSimulation(
            collective=step.collective,
            num_groups=step.num_groups,
            group_size=step.group_size,
            seconds=worst_seconds,
            bottleneck_link=worst_link,
            max_sharing=contention.max_sharing,
            payload_bytes=worst_payload,
        )
        return step_result, new_context


def simulate_program(
    program: LoweredProgram,
    topology: MachineTopology,
    bytes_per_device: float,
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    cost_model: Optional[CostModel] = None,
) -> SimulationResult:
    """Convenience wrapper around :class:`ProgramSimulator` for one-off calls."""
    simulator = ProgramSimulator(topology, cost_model or CostModel())
    return simulator.simulate(program, bytes_per_device, algorithm)
