"""The analytic program simulator (paper §5).

Given a lowered program, a machine topology and the per-device payload size,
the simulator

1. runs the Hoare semantics of the program over the physical devices to know
   how many bytes each device holds before every step (ReduceScatter shrinks
   payloads, AllGather grows them — this is what makes hierarchical
   strategies cheap on the cross-node hop),
2. analyses per-step link contention (:mod:`repro.cost.contention`), and
3. prices every group with the alpha-beta model (:mod:`repro.cost.nccl`),
   taking the step time as the maximum over its concurrent groups and the
   program time as the sum over steps.

Steps 1 and 2 are payload-independent, so :class:`ProgramSimulator` performs
them once per program by compiling a :class:`~repro.cost.profile.SimulationProfile`
(cached in an LRU keyed by :meth:`LoweredProgram.signature`) and answering
every ``simulate`` call by *pricing* the profile — a closed-form loop over
group equivalence classes.  The priced result is bit-identical to the
original per-group evaluation, which remains available as
:meth:`ProgramSimulator.simulate_reference` and serves as the executable
specification the profile is property-tested against.

The result object keeps the per-step breakdown so the evaluation harness and
the examples can explain *why* a strategy wins.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cost.contention import analyze_step_contention
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.profile import SimulationProfile, compile_profile, price_profile
from repro.errors import CostModelError
from repro.obs.recorder import get_recorder
from repro.semantics.collectives import Collective, apply_collective
from repro.semantics.goals import initial_context
from repro.semantics.state import DeviceState, StateContext
from repro.synthesis.lowering import LoweredProgram, LoweredStep
from repro.topology.topology import MachineTopology

__all__ = ["StepSimulation", "SimulationResult", "ProgramSimulator", "simulate_program"]


@dataclass(frozen=True)
class StepSimulation:
    """Cost breakdown of one step of a simulated program."""

    collective: Collective
    num_groups: int
    group_size: int
    seconds: float
    bottleneck_link: str
    max_sharing: float
    payload_bytes: float

    def describe(self) -> str:
        return (
            f"{self.collective} x{self.num_groups} (g={self.group_size}, "
            f"{self.payload_bytes / 1e6:.1f} MB) -> {self.seconds:.4f}s "
            f"via {self.bottleneck_link} (sharing {self.max_sharing:.0f})"
        )


@dataclass(frozen=True)
class SimulationResult:
    """End-to-end prediction for one lowered program."""

    total_seconds: float
    steps: Tuple[StepSimulation, ...]
    algorithm: NCCLAlgorithm
    bytes_per_device: float
    label: str = ""

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        header = f"{self.label or 'program'}: {self.total_seconds:.4f}s ({self.algorithm})"
        return "\n".join([header] + [f"  {s.describe()}" for s in self.steps])


@dataclass
class ProgramSimulator:
    """Reusable simulator bound to one topology and one cost model.

    The simulator keeps an LRU cache of compiled
    :class:`~repro.cost.profile.SimulationProfile` objects keyed by
    :meth:`LoweredProgram.signature`, so re-simulating a known communication
    pattern — the same program at another payload, under the other NCCL
    algorithm, or a signature-identical candidate from a different placement —
    skips semantics and contention analysis entirely.  ``profile_hits`` /
    ``profile_misses`` count cache outcomes; they feed the planning
    provenance surfaced by ``sweep --json``, and are mirrored into the
    telemetry recorder (``profile.hit`` / ``profile.miss`` counters, a
    ``profile.compile`` span per cold signature) when telemetry is enabled.
    The recorder is captured at construction — install one via
    :func:`repro.obs.set_recorder` before building simulators that should
    report into it.
    """

    topology: MachineTopology
    cost_model: CostModel = field(default_factory=CostModel)
    profile_cache_size: int = 4096
    recorder: Any = field(
        default_factory=get_recorder, repr=False, compare=False
    )
    profile_hits: int = field(default=0, init=False, repr=False, compare=False)
    profile_misses: int = field(default=0, init=False, repr=False, compare=False)
    _profiles: "OrderedDict[Tuple, SimulationProfile]" = field(
        default_factory=OrderedDict, init=False, repr=False, compare=False
    )

    def simulate(
        self,
        program: LoweredProgram,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """Predict the end-to-end time of ``program`` (profile fast path)."""
        self._validate(program, bytes_per_device)
        profile = self.profile_for(program)
        with self.recorder.span("profile.price", steps=program.num_steps):
            return price_profile(
                profile, bytes_per_device, algorithm, self.cost_model, label=program.label
            )

    def profile_for(self, program: LoweredProgram) -> SimulationProfile:
        """The compiled profile of ``program``, from the LRU cache when known."""
        key = program.signature()
        cached = self._profiles.get(key)
        if cached is not None:
            self.profile_hits += 1
            self.recorder.count("profile.hit")
            self._profiles.move_to_end(key)
            return cached
        self.profile_misses += 1
        self.recorder.count("profile.miss")
        with self.recorder.span("profile.compile", steps=program.num_steps):
            profile = compile_profile(program, self.topology)
        self._profiles[key] = profile
        if len(self._profiles) > self.profile_cache_size:
            self._profiles.popitem(last=False)
        return profile

    def cached_profile(self, program: LoweredProgram) -> Optional[SimulationProfile]:
        """The cached profile for ``program``, or ``None`` (counts as a hit only).

        A miss is *not* counted here: callers that compile elsewhere (e.g. a
        worker pool compiling in parallel) record it via :meth:`adopt_profile`
        so hits + misses always equals the number of distinct signatures
        priced, matching the serial path's accounting.
        """
        key = program.signature()
        cached = self._profiles.get(key)
        if cached is not None:
            self.profile_hits += 1
            self.recorder.count("profile.hit")
            self._profiles.move_to_end(key)
        return cached

    def peek_profile(self, program: LoweredProgram) -> Optional[SimulationProfile]:
        """The cached profile for ``program`` without touching the counters.

        Unlike :meth:`cached_profile` this neither records a hit nor moves
        the entry in the LRU — it is for *bound* computations (the search
        driver asks "can this candidate possibly beat the incumbent?") that
        must not perturb the hits+misses == distinct-signatures-priced
        accounting the planning provenance reports.
        """
        return self._profiles.get(program.signature())

    def adopt_profile(
        self, program: LoweredProgram, profile: SimulationProfile
    ) -> None:
        """Insert a profile compiled elsewhere (counted as one miss/compile)."""
        self.profile_misses += 1
        # The worker that compiled it already counted ``profile.miss`` in its
        # own recorder delta (merged back into this one), so the telemetry
        # counter distinguishes adoptions to avoid double-counting compiles.
        self.recorder.count("profile.adopted")
        self._profiles[program.signature()] = profile
        if len(self._profiles) > self.profile_cache_size:
            self._profiles.popitem(last=False)

    @property
    def cached_profiles(self) -> int:
        return len(self._profiles)

    def clear_profiles(self) -> None:
        """Drop every cached profile (counters are left running)."""
        self._profiles.clear()

    # ------------------------------------------------------------------ #
    # Reference implementation (the executable specification)
    # ------------------------------------------------------------------ #
    def simulate_reference(
        self,
        program: LoweredProgram,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> SimulationResult:
        """The original per-group evaluation, kept as the specification.

        Profile pricing (:meth:`simulate`) must stay bit-identical to this
        method — ``tests/test_cost_profile.py`` asserts exact float equality
        across payload ladders and both NCCL algorithms.  New cost-model
        features land here first and must be mirrored into
        :mod:`repro.cost.profile` under the same contract.
        """
        self._validate(program, bytes_per_device)
        context = initial_context(program.num_devices)
        steps: List[StepSimulation] = []
        total = 0.0
        for step in program.steps:
            step_result, context = self._simulate_step(
                step, context, bytes_per_device, algorithm
            )
            steps.append(step_result)
            total += step_result.seconds
        return SimulationResult(
            total_seconds=total,
            steps=tuple(steps),
            algorithm=algorithm,
            bytes_per_device=bytes_per_device,
            label=program.label,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validate(self, program: LoweredProgram, bytes_per_device: float) -> None:
        if bytes_per_device < 0:
            raise CostModelError("bytes_per_device must be non-negative")
        if program.num_devices != self.topology.num_devices:
            raise CostModelError(
                f"program is over {program.num_devices} devices but the topology has "
                f"{self.topology.num_devices}"
            )

    def _simulate_step(
        self,
        step: LoweredStep,
        context: StateContext,
        bytes_per_device: float,
        algorithm: NCCLAlgorithm,
    ) -> Tuple[StepSimulation, StateContext]:
        contention = analyze_step_contention(step, self.topology)

        # A lowered step always has at least one group (LoweredStep enforces
        # it), so the fallback bottleneck is the first group's link: it is
        # reported, with the 0.0 payload it was priced at, exactly when every
        # group prices to 0.0 seconds (zero payload under a zero-overhead
        # cost model on zero-latency links) and the strict ``>`` never fires.
        worst_seconds = 0.0
        worst_link = contention.groups[0].link.name if contention.groups else "-"
        worst_payload = 0.0
        updates: Dict[int, DeviceState] = {}

        for group, cost in zip(step.groups, contention.groups):
            pre_states = [context[d] for d in group]
            payload = max(s.chunk_fraction() for s in pre_states) * bytes_per_device
            seconds = self.cost_model.group_time(
                op=step.collective,
                algorithm=algorithm,
                group_size=len(group),
                payload_bytes=payload,
                bandwidth=cost.effective_bandwidth,
                link_latency=cost.link.latency,
            )
            if seconds > worst_seconds:
                worst_seconds = seconds
                worst_link = cost.link.name
                worst_payload = payload
            post_states = apply_collective(step.collective, pre_states)
            for device, state in zip(group, post_states):
                updates[device] = state

        new_context = context.replace(updates)
        step_result = StepSimulation(
            collective=step.collective,
            num_groups=step.num_groups,
            group_size=step.group_size,
            seconds=worst_seconds,
            bottleneck_link=worst_link,
            max_sharing=contention.max_sharing,
            payload_bytes=worst_payload,
        )
        return step_result, new_context


def simulate_program(
    program: LoweredProgram,
    topology: MachineTopology,
    bytes_per_device: float,
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    cost_model: Optional[CostModel] = None,
) -> SimulationResult:
    """Convenience wrapper around :class:`ProgramSimulator` for one-off calls."""
    simulator = ProgramSimulator(topology, cost_model or CostModel())
    return simulator.simulate(program, bytes_per_device, algorithm)
