"""Tunable constants of the analytic cost model.

The :class:`CostModel` groups the knobs that are not properties of the
hardware itself: the per-collective launch overhead (XLA/NCCL kernel launch
plus rendezvous), an optional fixed per-step synchronisation cost, and a
bandwidth-efficiency factor for very small messages.  Separating these from
the topology keeps "what the machine is" and "how well software drives it"
independent, which is also how the paper's simulator treats its assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.nccl import NCCLAlgorithm, collective_time
from repro.errors import CostModelError
from repro.semantics.collectives import Collective

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Software-side cost constants used by the simulator.

    Attributes
    ----------
    launch_overhead:
        Seconds added per collective step (kernel launch, group rendezvous).
    small_message_bytes / small_message_efficiency:
        Messages smaller than ``small_message_bytes`` only achieve
        ``small_message_efficiency`` of the link bandwidth (protocol overhead
        dominates short transfers).
    """

    launch_overhead: float = 20e-6
    small_message_bytes: float = 1 << 20
    small_message_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if self.launch_overhead < 0:
            raise CostModelError("launch_overhead must be non-negative")
        if self.small_message_bytes < 0:
            raise CostModelError("small_message_bytes must be non-negative")
        if not 0 < self.small_message_efficiency <= 1:
            raise CostModelError("small_message_efficiency must be in (0, 1]")

    def group_time(
        self,
        op: Collective,
        algorithm: NCCLAlgorithm,
        group_size: int,
        payload_bytes: float,
        bandwidth: float,
        link_latency: float,
    ) -> float:
        """Time for one group to run ``op``, including software overheads."""
        effective_bandwidth = bandwidth
        if payload_bytes < self.small_message_bytes:
            effective_bandwidth = bandwidth * self.small_message_efficiency
        transfer = collective_time(
            op,
            algorithm,
            group_size,
            payload_bytes,
            effective_bandwidth,
            link_latency,
        )
        return self.launch_overhead + transfer
