"""The synthetic-traffic harness: drive a live daemon over real sockets.

:class:`LoadHarness` fires a pre-drawn open-loop arrival schedule
(:mod:`repro.loadgen.arrivals`) at a :class:`~repro.serve.daemon.PlanDaemon`
through a pool of worker threads, each holding one persistent
:class:`~repro.serve.client.PlanClient` connection.  Latency is measured
from each request's *scheduled* arrival time — not from when a worker got
around to sending it — so client-side queueing under overload is charged to
the server's latency distribution instead of silently omitted.

Every observation lands in a :class:`repro.obs.Recorder`; the run's
:class:`LoadReport` is derived *entirely* from the drained
:class:`~repro.obs.RecorderSnapshot` (the ROADMAP's stats currency), so the
same numbers are available to the report object, ``BENCH_daemon_load.json``
and ``repro-cli stats`` on an exported snapshot file.

The **query mix** controls cache behaviour: a :class:`QueryMix` holds
``distinct`` distinct queries and samples uniformly, so after every distinct
query has been planned once the steady-state cache-hit ratio approaches 1,
and the first pass measures cold-plan latency.  :meth:`LoadHarness.probe`
isolates the cold pass — one sequential request per distinct query — which
is how the benchmark pins "warm cache-hit p99 is ≥ 10x better than
cold-plan p99" as a gated number.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import LoadgenError, ServeError
from repro.loadgen.arrivals import RateFunction, arrival_times
from repro.obs.recorder import Histogram, Recorder, RecorderSnapshot
from repro.query import PlanQuery
from repro.serve.client import PlanClient

__all__ = ["QueryMix", "LoadReport", "LoadHarness"]


@dataclass(frozen=True)
class QueryMix:
    """The distinct queries a run samples from (uniformly, seeded).

    ``distinct-query ratio`` is the cache knob: with ``d`` distinct queries
    and ``n`` requests, at most ``d`` requests can be cold, so the expected
    cache-hit ratio is ``1 - d/n`` once the run is longer than the mix.
    """

    queries: Tuple[PlanQuery, ...]

    def __post_init__(self) -> None:
        if not self.queries:
            raise LoadgenError("a query mix needs at least one query")

    @classmethod
    def payload_ladder(
        cls,
        axes: Sequence[int],
        reduce_axes: Sequence[int] = (0,),
        base_bytes: int = 1 << 20,
        distinct: int = 4,
        algorithm: str = "ring",
        max_program_size: int = 3,
    ) -> "QueryMix":
        """``distinct`` queries over one shape, payloads ``base * (i+1)``.

        A payload ladder keeps every query against the same topology and
        axes (so one daemon serves all of them) while giving each a distinct
        fingerprint — the cleanest way to dial a cache-hit ratio.
        """
        if distinct < 1:
            raise LoadgenError(f"distinct must be >= 1, got {distinct}")
        return cls(
            queries=tuple(
                PlanQuery(
                    axes=tuple(axes),
                    request=tuple(reduce_axes),
                    bytes_per_device=base_bytes * (step + 1),
                    algorithm=algorithm,
                    max_program_size=max_program_size,
                )
                for step in range(distinct)
            )
        )

    @property
    def distinct(self) -> int:
        return len(self.queries)

    def sample(self, rng: Random) -> PlanQuery:
        return self.queries[rng.randrange(len(self.queries))]


def _histogram_summary(histogram: Optional[Histogram]) -> Optional[Dict[str, float]]:
    if histogram is None or histogram.count == 0:
        return None
    return {
        "count": histogram.count,
        "mean_s": histogram.mean,
        "p50_s": histogram.percentile(0.50),
        "p90_s": histogram.percentile(0.90),
        "p99_s": histogram.percentile(0.99),
        "max_s": histogram.max if histogram.max is not None else 0.0,
    }


@dataclass
class LoadReport:
    """One load phase, summarized straight from a recorder snapshot."""

    label: str
    duration_s: float  # the configured open-loop window
    elapsed_s: float  # wall time until the last reply (includes the tail)
    offered: int = 0
    sent: int = 0
    ok: int = 0
    shed: int = 0
    rate_limited: int = 0
    errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    throughput_rps: float = 0.0
    shed_rate: float = 0.0
    cache_hit_ratio: float = 0.0
    latency: Optional[Dict[str, float]] = None
    hit_latency: Optional[Dict[str, float]] = None
    miss_latency: Optional[Dict[str, float]] = None
    tenants: Dict[str, int] = field(default_factory=dict)
    snapshot: Optional[RecorderSnapshot] = None

    @classmethod
    def from_snapshot(
        cls,
        label: str,
        snapshot: RecorderSnapshot,
        duration_s: float,
        elapsed_s: float,
    ) -> "LoadReport":
        counters = snapshot.counters
        sent = counters.get("loadgen.sent", 0)
        ok = counters.get("loadgen.ok", 0)
        shed = counters.get("loadgen.shed", 0)
        hits = counters.get("loadgen.cache_hit", 0)
        misses = counters.get("loadgen.cache_miss", 0)
        answered = hits + misses
        tenants = {}
        prefix = "loadgen.tenant."
        for name, value in counters.items():
            if name.startswith(prefix) and name.endswith(".sent"):
                tenants[name[len(prefix):-len(".sent")]] = value
        return cls(
            label=label,
            duration_s=duration_s,
            elapsed_s=elapsed_s,
            offered=counters.get("loadgen.offered", 0),
            sent=sent,
            ok=ok,
            shed=shed,
            rate_limited=counters.get("loadgen.rate_limited", 0),
            errors=counters.get("loadgen.error", 0),
            cache_hits=hits,
            cache_misses=misses,
            throughput_rps=(ok / elapsed_s) if elapsed_s > 0 else 0.0,
            shed_rate=(shed / sent) if sent else 0.0,
            cache_hit_ratio=(hits / answered) if answered else 0.0,
            latency=_histogram_summary(snapshot.histograms.get("loadgen.latency")),
            hit_latency=_histogram_summary(
                snapshot.histograms.get("loadgen.latency.hit")
            ),
            miss_latency=_histogram_summary(
                snapshot.histograms.get("loadgen.latency.miss")
            ),
            tenants=tenants,
            snapshot=snapshot,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (without the embedded snapshot)."""
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "elapsed_s": self.elapsed_s,
            "offered": self.offered,
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "rate_limited": self.rate_limited,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "throughput_rps": self.throughput_rps,
            "shed_rate": self.shed_rate,
            "cache_hit_ratio": self.cache_hit_ratio,
            "latency": self.latency,
            "hit_latency": self.hit_latency,
            "miss_latency": self.miss_latency,
            "tenants": dict(sorted(self.tenants.items())),
        }

    def describe(self) -> str:
        latency = self.latency or {}
        p50 = latency.get("p50_s")
        p99 = latency.get("p99_s")
        return (
            f"[{self.label}] {self.ok}/{self.sent} ok in {self.elapsed_s:.2f}s "
            f"({self.throughput_rps:.1f} req/s), shed {self.shed} "
            f"({self.shed_rate * 100:.1f}%), cache-hit {self.cache_hit_ratio * 100:.1f}%, "
            f"p50 {p50 * 1e3:.1f}ms / p99 {p99 * 1e3:.1f}ms"
            if p50 is not None and p99 is not None
            else f"[{self.label}] {self.ok}/{self.sent} ok in {self.elapsed_s:.2f}s "
            f"({self.throughput_rps:.1f} req/s), shed {self.shed}"
        )


class LoadHarness:
    """Open-loop traffic against one daemon address; see the module docstring.

    Parameters
    ----------
    host / port / unix_path:
        Where the daemon listens (same rules as :class:`PlanClient`).
    mix:
        The :class:`QueryMix` to sample.
    profile:
        The arrival-rate function λ(t) (:mod:`repro.loadgen.arrivals`).
    duration_s:
        The open-loop window; arrivals stop after it, replies may trail.
    concurrency:
        Worker threads (one persistent connection each).  When every worker
        is busy, arrivals queue client-side and their waiting time counts
        toward measured latency — open-loop semantics, no omission.
    tenants:
        Round-robin ``tenant`` labels stamped on requests (empty = none).
    """

    def __init__(
        self,
        mix: QueryMix,
        profile: RateFunction,
        duration_s: float,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        seed: int = 0,
        concurrency: int = 8,
        tenants: Sequence[str] = (),
        include_plan: bool = False,
        timeout_s: float = 60.0,
    ) -> None:
        if duration_s <= 0:
            raise LoadgenError(f"duration_s must be positive, got {duration_s}")
        if concurrency < 1:
            raise LoadgenError(f"concurrency must be >= 1, got {concurrency}")
        self.mix = mix
        self.profile = profile
        self.duration_s = duration_s
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.seed = seed
        self.concurrency = concurrency
        self.tenants = list(tenants)
        self.include_plan = include_plan
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    def _connect(self) -> PlanClient:
        return PlanClient(
            host=self.host,
            port=self.port,
            unix_path=self.unix_path,
            timeout=self.timeout_s,
        )

    def fetch_daemon_snapshot(self) -> RecorderSnapshot:
        """The daemon's live telemetry (its ``stats`` op), parsed."""
        with self._connect() as client:
            return RecorderSnapshot.from_dict(client.stats())

    def schedule(self) -> List[float]:
        """The arrival offsets this seed draws (deterministic per seed)."""
        return arrival_times(self.profile, self.duration_s, Random(self.seed))

    # ------------------------------------------------------------------ #
    def probe(self, label: str = "probe") -> LoadReport:
        """One sequential request per distinct query: the cold-plan pass.

        Run against a cold daemon this measures cold-plan latency per
        distinct query; run again it measures warm lookups.  Either way the
        report says which it saw (``cache_hits`` / ``cache_misses``).
        """
        recorder = Recorder()
        started = time.perf_counter()
        with self._connect() as client:
            for index, query in enumerate(self.mix.queries):
                tenant = self.tenants[index % len(self.tenants)] if self.tenants else None
                sent_at = time.perf_counter()
                self._one_request(recorder, client, query, tenant, sent_at)
        elapsed = time.perf_counter() - started
        recorder.count("loadgen.offered", self.mix.distinct)
        return LoadReport.from_snapshot(label, recorder.drain(), elapsed, elapsed)

    def run(self, label: str = "load") -> LoadReport:
        """Fire the open-loop schedule; block until every reply is in."""
        schedule = self.schedule()
        if not schedule:
            raise LoadgenError(
                "the arrival schedule is empty (rate x duration too small)"
            )
        rng = Random(self.seed + 1)  # sampling stream independent of arrivals
        plan: List[Tuple[float, PlanQuery, Optional[str]]] = []
        for index, offset in enumerate(schedule):
            tenant = self.tenants[index % len(self.tenants)] if self.tenants else None
            plan.append((offset, self.mix.sample(rng), tenant))

        recorder = Recorder()
        work: "queue.Queue" = queue.Queue()
        workers = [
            threading.Thread(
                target=self._worker, args=(recorder, work), daemon=True
            )
            for _ in range(self.concurrency)
        ]
        for worker in workers:
            worker.start()
        started = time.perf_counter()
        for offset, query, tenant in plan:
            delay = started + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            # The scheduled instant (not "now") is the latency origin.
            work.put((started + offset, query, tenant))
        for _ in workers:
            work.put(None)
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        recorder.count("loadgen.offered", len(schedule))
        recorder.gauge("loadgen.concurrency", self.concurrency)
        recorder.gauge("loadgen.duration_s", self.duration_s)
        return LoadReport.from_snapshot(label, recorder.drain(), self.duration_s, elapsed)

    # ------------------------------------------------------------------ #
    def _worker(self, recorder: Recorder, work: "queue.Queue") -> None:
        client: Optional[PlanClient] = None
        try:
            while True:
                item = work.get()
                if item is None:
                    return
                scheduled_at, query, tenant = item
                if client is None:
                    try:
                        client = self._connect()
                    except (OSError, ServeError):
                        recorder.count("loadgen.sent")
                        recorder.count("loadgen.error")
                        recorder.count("loadgen.connect_error")
                        continue
                self._one_request(recorder, client, query, tenant, scheduled_at)
        finally:
            if client is not None:
                client.close()

    def _one_request(
        self,
        recorder: Recorder,
        client: PlanClient,
        query: PlanQuery,
        tenant: Optional[str],
        scheduled_at: float,
    ) -> None:
        recorder.count("loadgen.sent")
        if tenant is not None:
            recorder.count(f"loadgen.tenant.{tenant}.sent")
        try:
            reply = client.plan(query, tenant=tenant, include_plan=self.include_plan)
        except ServeError:
            recorder.count("loadgen.error")
            return
        latency = time.perf_counter() - scheduled_at
        if reply.get("ok"):
            recorder.count("loadgen.ok")
            if tenant is not None:
                recorder.count(f"loadgen.tenant.{tenant}.ok")
            recorder.observe("loadgen.latency", latency)
            hit = reply.get("outcome", {}).get("cache_tier") is not None
            if hit:
                recorder.count("loadgen.cache_hit")
                recorder.observe("loadgen.latency.hit", latency)
            else:
                recorder.count("loadgen.cache_miss")
                recorder.observe("loadgen.latency.miss", latency)
            return
        code = reply.get("error")
        if code == "overloaded":
            recorder.count("loadgen.shed")
            if tenant is not None:
                recorder.count(f"loadgen.tenant.{tenant}.shed")
        elif code == "rate_limited":
            recorder.count("loadgen.rate_limited")
            if tenant is not None:
                recorder.count(f"loadgen.tenant.{tenant}.rate_limited")
        else:
            recorder.count("loadgen.error")
            recorder.count(f"loadgen.refused.{code}")
