"""Open-loop arrival processes: composable rate functions over wall time.

The harness is *open loop*: arrival times are drawn up front from a rate
function λ(t) (requests per second at time ``t``) and requests are fired on
that schedule regardless of how fast the daemon answers.  That is the only
honest way to load-test a service — a closed loop slows its own offered
load down exactly when the server struggles, hiding the latencies you came
to measure (coordinated omission).

A profile is just a ``Callable[[float], float]``; the built-ins compose:

* :func:`constant_rate` — λ(t) = r.
* :func:`poisson_users` — the AsyncFlow-style workload shape: ``users``
  concurrent users each issuing ``requests_per_minute`` on average, i.e. a
  constant aggregate rate of ``users * rpm / 60``.
* :func:`bursty` — a square wave: ``burst_rps`` for the first
  ``duty`` fraction of every ``period_s``, ``base_rps`` otherwise.
* :func:`diurnal` — a raised cosine between ``base_rps`` (trough) and
  ``peak_rps`` (crest) with period ``period_s`` — a day compressed into a
  test run.
* :func:`scaled` / :func:`summed` — combinators for mixing profiles.

:func:`arrival_times` samples a non-homogeneous Poisson process under any
profile by Lewis–Shedler thinning, driven by an injected
:class:`random.Random` so schedules are deterministic per seed.
"""

from __future__ import annotations

import math
from random import Random
from typing import Callable, Dict, List, Sequence

from repro.errors import LoadgenError

__all__ = [
    "RateFunction",
    "constant_rate",
    "poisson_users",
    "bursty",
    "diurnal",
    "scaled",
    "summed",
    "profile_from_name",
    "PROFILE_NAMES",
    "arrival_times",
    "peak_rate",
]

RateFunction = Callable[[float], float]


def constant_rate(rps: float) -> RateFunction:
    """λ(t) = ``rps`` for all t."""
    if rps <= 0:
        raise LoadgenError(f"rate must be positive, got {rps}")
    return lambda t: rps


def poisson_users(users: float, requests_per_minute: float) -> RateFunction:
    """``users`` concurrent users × ``requests_per_minute`` each (open loop)."""
    if users <= 0 or requests_per_minute <= 0:
        raise LoadgenError(
            f"users and requests_per_minute must be positive, "
            f"got {users} and {requests_per_minute}"
        )
    return constant_rate(users * requests_per_minute / 60.0)


def bursty(
    base_rps: float, burst_rps: float, period_s: float, duty: float = 0.2
) -> RateFunction:
    """A square wave: ``burst_rps`` for ``duty`` of each period, else ``base_rps``."""
    if base_rps < 0 or burst_rps <= 0:
        raise LoadgenError("bursty rates must be positive (base may be zero)")
    if period_s <= 0 or not 0.0 < duty < 1.0:
        raise LoadgenError(
            f"bursty needs period_s > 0 and 0 < duty < 1, got {period_s} and {duty}"
        )

    def rate(t: float) -> float:
        return burst_rps if (t % period_s) < duty * period_s else base_rps

    return rate


def diurnal(base_rps: float, peak_rps: float, period_s: float) -> RateFunction:
    """A raised cosine from ``base_rps`` (t=0) up to ``peak_rps`` and back."""
    if base_rps < 0 or peak_rps < base_rps:
        raise LoadgenError(
            f"diurnal needs 0 <= base_rps <= peak_rps, got {base_rps} and {peak_rps}"
        )
    if period_s <= 0:
        raise LoadgenError(f"period_s must be positive, got {period_s}")

    def rate(t: float) -> float:
        phase = (1.0 - math.cos(2.0 * math.pi * t / period_s)) / 2.0
        return base_rps + (peak_rps - base_rps) * phase

    return rate


def scaled(profile: RateFunction, factor: float) -> RateFunction:
    """``factor`` × the profile (e.g. replaying a trace at 2x)."""
    if factor <= 0:
        raise LoadgenError(f"scale factor must be positive, got {factor}")
    return lambda t: profile(t) * factor


def summed(*profiles: RateFunction) -> RateFunction:
    """Superpose independent traffic sources (rates add)."""
    if not profiles:
        raise LoadgenError("summed needs at least one profile")
    return lambda t: sum(p(t) for p in profiles)


PROFILE_NAMES = ("constant", "bursty", "diurnal")


def profile_from_name(
    name: str,
    rps: float,
    burst_multiplier: float = 4.0,
    period_s: float = 10.0,
    duty: float = 0.2,
) -> RateFunction:
    """The CLI's profile registry: a named shape around a mean rate ``rps``.

    ``bursty`` and ``diurnal`` are normalized to the same *mean* offered
    load as ``constant`` at the given ``rps``, so profiles are comparable:
    the shape changes, the total number of requests (in expectation) does
    not.
    """
    if name == "constant":
        return constant_rate(rps)
    if name == "bursty":
        # mean = duty*burst + (1-duty)*base with base = burst/burst_multiplier
        burst = rps / (duty + (1.0 - duty) / burst_multiplier)
        return bursty(burst / burst_multiplier, burst, period_s, duty)
    if name == "diurnal":
        # raised cosine mean = (base + peak) / 2
        base = 2.0 * rps / (1.0 + burst_multiplier)
        return diurnal(base, base * burst_multiplier, period_s)
    raise LoadgenError(
        f"unknown profile {name!r}; expected one of {list(PROFILE_NAMES)}"
    )


def peak_rate(
    profile: RateFunction, duration_s: float, samples: int = 512
) -> float:
    """An upper envelope of λ over [0, duration] (for thinning).

    Sampled on a dense grid with 5% headroom — exact for the built-in
    profiles (piecewise-constant and smooth shapes), conservative enough
    for reasonable custom ones.
    """
    step = duration_s / samples
    ceiling = max(profile(i * step) for i in range(samples + 1))
    if ceiling <= 0:
        raise LoadgenError("profile rate is zero over the whole run")
    return ceiling * 1.05


def arrival_times(
    profile: RateFunction, duration_s: float, rng: Random
) -> List[float]:
    """Arrival offsets (seconds, ascending) of a Poisson process under λ(t).

    Lewis–Shedler thinning: draw a homogeneous process at the envelope rate,
    keep each point with probability λ(t)/λmax.  Deterministic per ``rng``
    state, so a seeded run has a reproducible schedule (and a reproducible
    request *count* — the counters the benchmark gate pins).
    """
    if duration_s <= 0:
        raise LoadgenError(f"duration_s must be positive, got {duration_s}")
    ceiling = peak_rate(profile, duration_s)
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(ceiling)
        if t >= duration_s:
            break
        if rng.random() * ceiling <= profile(t):
            times.append(t)
    return times


def describe_profiles() -> Dict[str, str]:  # pragma: no cover - docs helper
    return {
        "constant": "fixed rate",
        "bursty": "square-wave bursts (mean-normalized)",
        "diurnal": "raised-cosine day cycle (mean-normalized)",
    }


def validate_tenants(tenants: Sequence[str]) -> List[str]:
    """Normalize a tenant list (used by the CLI): drop blanks, keep order."""
    cleaned = [t.strip() for t in tenants if t and t.strip()]
    return cleaned
