"""Open-loop synthetic traffic against the planning daemon.

Two halves:

* :mod:`repro.loadgen.arrivals` — composable rate functions λ(t)
  (constant / per-user Poisson / bursty / diurnal, plus ``scaled`` and
  ``summed`` combinators) and :func:`arrival_times`, which draws a
  deterministic non-homogeneous Poisson schedule per seed.
* :mod:`repro.loadgen.harness` — :class:`LoadHarness`, which fires the
  schedule at a live :mod:`repro.serve` daemon over real sockets and
  reduces the run to a :class:`LoadReport` (throughput, p50/p99/max
  latency, shed rate, cache-hit ratio) straight from a
  :class:`repro.obs.RecorderSnapshot`.

Drive it from the command line with ``repro-cli loadgen``.
"""

from repro.loadgen.arrivals import (
    PROFILE_NAMES,
    RateFunction,
    arrival_times,
    bursty,
    constant_rate,
    diurnal,
    peak_rate,
    poisson_users,
    profile_from_name,
    scaled,
    summed,
    validate_tenants,
)
from repro.loadgen.harness import LoadHarness, LoadReport, QueryMix

__all__ = [
    "RateFunction",
    "constant_rate",
    "poisson_users",
    "bursty",
    "diurnal",
    "scaled",
    "summed",
    "profile_from_name",
    "PROFILE_NAMES",
    "arrival_times",
    "peak_rate",
    "validate_tenants",
    "QueryMix",
    "LoadReport",
    "LoadHarness",
]
