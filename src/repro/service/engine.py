"""The planning service: a production-shaped engine around P² queries.

:class:`PlanningService` wraps the synthesis pipeline and the simulator
behind the three things a serving layer needs:

* **caching** — every query is fingerprinted
  (:mod:`repro.service.fingerprint`) and answered from a two-tier
  :class:`~repro.service.cache.PlanCache` when possible; cold plans are
  serialized back into the cache so subsequent processes warm-start from
  disk,
* **parallelism** — cold-path candidate evaluation optionally fans out over
  a :class:`~repro.service.parallel.ParallelEvaluator` process pool, with a
  ranking guaranteed identical to the serial path,
* **a batch API** — :meth:`plan_many` answers a list of queries,
  deduplicating identical queries within the batch so each distinct plan is
  computed (or fetched) once.

The service speaks the :class:`~repro.query.PlanQuery` /
:class:`~repro.query.PlanOutcome` object model — it satisfies the
:class:`~repro.query.Planner` protocol, interchangeable with a bare
:class:`repro.api.P2` — and every outcome carries provenance (fingerprint,
cache tier, timing breakdown) so callers can monitor hit rates and latency
without instrumenting the pipeline themselves.  The pre-query
:class:`PlanningRequest` / :meth:`submit` / :meth:`optimize_many` API remains
as a thin shim.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; corpus sits above us
    from repro.corpus.store import PlanCorpus

from repro.api import OptimizationPlan, compute_plan
from repro.cost.model import CostModel
from repro.cost.simulator import ProgramSimulator
from repro.cost.nccl import NCCLAlgorithm
from repro.errors import ReproError, ServiceError
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.obs.recorder import get_recorder
from repro.query import PlanOutcome, PlanQuery
from repro.service.cache import PlanCache
from repro.service.fingerprint import canonical_topology, plan_query_fingerprint
from repro.service.parallel import ParallelEvaluator
from repro.topology.topology import MachineTopology

__all__ = ["PlanningRequest", "RequestStats", "PlanningResponse", "PlanningService"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PlanningRequest:
    """One query against the planning service (the batch API's unit of work)."""

    axes: ParallelismAxes
    request: ReductionRequest
    bytes_per_device: int
    algorithm: NCCLAlgorithm = NCCLAlgorithm.RING
    max_matrices: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bytes_per_device <= 0:
            raise ServiceError("bytes_per_device must be positive")
        self.request.validate_against(self.axes)

    def to_query(self, max_program_size: int) -> PlanQuery:
        """The :class:`PlanQuery` this request denotes under a service's limits."""
        return PlanQuery(
            axes=self.axes,
            request=self.request,
            bytes_per_device=self.bytes_per_device,
            algorithm=self.algorithm,
            max_matrices=self.max_matrices,
            max_program_size=max_program_size,
        )

    def describe(self) -> str:
        return (
            f"{self.axes.describe()} {self.request.describe(self.axes)}, "
            f"{self.bytes_per_device / 1e6:.0f} MB, {self.algorithm}"
        )


@dataclass
class RequestStats:
    """How one request was answered: cache tier and timing breakdown."""

    fingerprint: str
    cache_tier: Optional[str]  # "memory" | "disk" | None (cold)
    total_seconds: float = 0.0
    synthesis_seconds: float = 0.0
    evaluation_seconds: float = 0.0
    num_candidates: int = 0
    num_strategies: int = 0
    n_workers: int = 1

    @property
    def cache_hit(self) -> bool:
        return self.cache_tier is not None

    def describe(self) -> str:
        source = self.cache_tier or "cold"
        detail = (
            f"synthesis {self.synthesis_seconds * 1e3:.1f} ms, "
            f"evaluation {self.evaluation_seconds * 1e3:.1f} ms, "
            f"{self.n_workers} worker(s)"
            if not self.cache_hit
            else "cached plan"
        )
        return (
            f"[{source}] {self.num_strategies} strategies over "
            f"{self.num_candidates} placements in {self.total_seconds * 1e3:.1f} ms ({detail})"
        )


@dataclass
class PlanningResponse:
    """One answered request: the plan plus how it was produced."""

    request: PlanningRequest
    plan: OptimizationPlan
    stats: RequestStats


class PlanningService:
    """Cached, optionally parallel, batch-capable front end to P².

    Parameters
    ----------
    topology / cost_model / max_program_size:
        The fixed parts of every query this service answers; they participate
        in each request's fingerprint.
    cache:
        The plan cache to serve from; defaults to a fresh memory-only
        :class:`PlanCache`.  Pass one with a ``directory`` to warm-start
        across processes.
    n_workers:
        Pool size for cold-path candidate evaluation; ``None`` or ``1``
        evaluates serially.  The pool is created lazily and shared across
        requests; call :meth:`close` (or use the service as a context
        manager) to release it.
    corpus:
        An optional :class:`~repro.corpus.store.PlanCorpus` of planning
        history.  When set, every cold query is seeded from its nearest
        corpus neighbors (lossless: exhaustive seeded plans are
        bit-identical to unseeded, so caching them stays sound), every
        cold unbudgeted outcome is ingested back, and
        :meth:`warm_from_corpus` can replay exact historical answers into
        the cache on boot.
    """

    def __init__(
        self,
        topology: MachineTopology,
        cost_model: Optional[CostModel] = None,
        max_program_size: int = 5,
        cache: Optional[PlanCache] = None,
        n_workers: Optional[int] = None,
        recorder=None,
        corpus: Optional["PlanCorpus"] = None,
    ) -> None:
        self.topology = topology
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.max_program_size = max_program_size
        self.cache = cache if cache is not None else PlanCache()
        self.n_workers = max(1, n_workers or 1)
        self._evaluator: Optional[ParallelEvaluator] = None
        # The telemetry recorder every request reports into, captured at
        # construction (install one via repro.obs.set_recorder first, or pass
        # it explicitly — embeddings like the serving daemon do the latter).
        self.recorder = recorder if recorder is not None else get_recorder()
        # One simulator for the serial cold path: its compiled-profile cache
        # (keyed by program signature) persists across requests, so a payload
        # ladder over one shape re-prices profiles instead of re-simulating.
        self._simulator = ProgramSimulator(
            topology, self.cost_model, recorder=self.recorder
        )
        self.corpus = corpus
        if corpus is not None:
            # Imported lazily: repro.corpus sits above the service layer
            # (its store canonicalizes through repro.service.fingerprint),
            # so a module-level import here would be circular.
            from repro.corpus.seeding import CorpusSeeder

            self._seeder = CorpusSeeder(
                corpus, topology, self.cost_model, recorder=self.recorder
            )
        else:
            self._seeder = None
        self.requests_served = 0

    def set_payload_ladder(self, payloads=None) -> None:
        """Install (or clear) the payload-ladder memo on the pricing simulators.

        Forwards to the serial-path simulator and, when a worker pool is
        live, to the evaluator's parent-side simulator (its inline path) —
        see :meth:`~repro.cost.simulator.ProgramSimulator.set_payload_ladder`.
        Sweeps call this per scenario group so one vectorized batch answers
        every rung of a ladder.
        """
        ladder = tuple(payloads) if payloads is not None else None
        self._simulator.set_payload_ladder(ladder)
        if self._evaluator is not None:
            self._evaluator.simulator.set_payload_ladder(ladder)

    # ------------------------------------------------------------------ #
    # The Planner protocol: plan / plan_many over PlanQuery objects
    # ------------------------------------------------------------------ #
    def query_fingerprint(self, query: PlanQuery) -> str:
        """The cache key this service uses for ``query``."""
        return plan_query_fingerprint(self.topology, query, self.cost_model)

    def plan(self, query: PlanQuery) -> PlanOutcome:
        """Answer one :class:`PlanQuery`, from cache when possible.

        The query's own ``max_program_size`` / ``max_matrices`` are honoured
        (the service's ``max_program_size`` is only the default applied when
        legacy :class:`PlanningRequest` objects are converted).
        """
        start = time.perf_counter()
        recorder = self.recorder
        with recorder.span("service.plan") as root:
            fingerprint = self.query_fingerprint(query)
            with recorder.span("cache.lookup"):
                cached, tier = self.cache.lookup(fingerprint)
            if cached is not None:
                try:
                    plan = OptimizationPlan.from_dict(cached)
                except (ReproError, KeyError, TypeError, ValueError):
                    # A well-formed envelope around a semantically broken plan:
                    # honour the cache contract (corrupt entries are misses) and
                    # recompute rather than crash the service.
                    self.cache.discard(fingerprint, corrupt=True)
                    self.cache.stats.demote_hit(tier)
                    recorder.count("cache.corrupt")
                    logger.debug(
                        "discarded corrupt cache entry %s (tier=%s)",
                        fingerprint,
                        tier,
                    )
                    cached = None
            if cached is not None:
                recorder.count(f"cache.hit.{tier}")
                logger.debug("cache hit (%s) for %s", tier, fingerprint)
                # total_seconds is threaded through construction on both
                # paths: an outcome is never observable with a zero total.
                outcome = PlanOutcome(
                    query=query,
                    plan=plan,
                    fingerprint=fingerprint,
                    cache_tier=tier,
                    total_seconds=time.perf_counter() - start,
                    trace_id=root.trace_id,
                )
            else:
                recorder.count("cache.miss")
                logger.debug("cache miss for %s; computing plan", fingerprint)
                # A sharded query brings its own worker processes: the
                # service's pricing pool is skipped for it (two pools would
                # fight over the same cores), and the outcome reports the
                # shard width as its worker count.  Exhaustive sharded plans
                # are bit-identical to serial ones, so caching them under the
                # shard-neutral fingerprint is sound.
                sharded = query.shards > 1
                evaluator = (
                    self._ensure_evaluator()
                    if self.n_workers > 1 and not sharded
                    else None
                )
                pricing_simulator = (
                    evaluator.simulator if evaluator is not None else self._simulator
                )
                hits_before = pricing_simulator.profile_hits
                misses_before = pricing_simulator.profile_misses
                # Corpus warm start: replay the nearest historical plans as
                # pinned seeds ahead of the default sources.  Seeding is
                # fingerprint-neutral — seeds only tighten the watermark
                # under a search budget, so an exhaustive seeded plan is
                # bit-identical to unseeded and stays sound to cache below.
                sources = (
                    self._seeder.seed_sources(query, fingerprint)
                    if self._seeder is not None
                    else None
                )
                computation = compute_plan(
                    self.topology,
                    self.cost_model,
                    query,
                    evaluator=evaluator,
                    simulator=None if evaluator is not None else self._simulator,
                    recorder=recorder,
                    sources=sources,
                )
                plan = computation.plan
                # Budgeted plans are never cached: a wall-clock budget is not a
                # deterministic function of the query (the same fingerprint can
                # denote different plans on a slower machine), and under a
                # candidate budget the *tail* of the ranking depends on how the
                # incumbent watermark advanced — the chunked pool path
                # bound-checks whole chunks against a slightly staler watermark
                # than the serial per-entry path, so the surviving strategy list
                # (never the best) can differ by n_workers, which the
                # fingerprint does not cover.
                if not query.has_search_budget:
                    with recorder.span("cache.store"):
                        self.cache.put(fingerprint, plan.to_dict())
                else:
                    logger.debug(
                        "budgeted query %s not cached (non-deterministic tail)",
                        fingerprint,
                    )
                outcome = PlanOutcome(
                    query=query,
                    plan=plan,
                    synthesis_seconds=computation.synthesis_seconds,
                    evaluation_seconds=computation.evaluation_seconds,
                    total_seconds=time.perf_counter() - start,
                    fingerprint=fingerprint,
                    cache_tier=None,
                    n_workers=query.shards if sharded else self.n_workers,
                    profile_hits=pricing_simulator.profile_hits - hits_before,
                    profile_misses=pricing_simulator.profile_misses - misses_before,
                    search=computation.search_dict(),
                    synthesis_stats=computation.statistics_dict(),
                    trace_id=root.trace_id,
                )
                # Every cold unbudgeted answer becomes history the next
                # related query can seed from (the corpus itself refuses
                # budgeted outcomes and dedupes repeats).
                if self._seeder is not None and not query.has_search_budget:
                    self._seeder.ingest(outcome)
        recorder.observe("service.total_seconds", outcome.total_seconds)
        self.requests_served += 1
        return outcome

    def plan_stream(self, queries: Iterable[PlanQuery]) -> Iterator[PlanOutcome]:
        """Answer queries lazily: one outcome yielded as each query finishes.

        Streaming front ends (JSONL emitters, the sweep engine) consume this
        instead of :meth:`plan_many` so results flush incrementally and an
        interrupted run still leaves every completed outcome delivered.
        """
        for query in queries:
            yield self.plan(query)

    def plan_many(self, queries: Sequence[PlanQuery]) -> List[PlanOutcome]:
        """Answer a batch of queries, computing each distinct query once.

        Duplicate queries (same fingerprint) within the batch are answered
        from the cache — only the first occurrence pays synthesis and
        simulation; the rest pay a lookup plus plan reconstruction.  Each
        outcome reports how *its* lookup was served, so a duplicate of a
        cold query shows up as a memory hit.
        """
        return list(self.plan_stream(queries))

    # ------------------------------------------------------------------ #
    # Legacy single-request / batch API (pre-PlanQuery shims)
    # ------------------------------------------------------------------ #
    def fingerprint(self, request: PlanningRequest) -> str:
        """The cache key this service uses for ``request``."""
        return self.query_fingerprint(request.to_query(self.max_program_size))

    def optimize(
        self,
        axes: ParallelismAxes,
        request: ReductionRequest,
        bytes_per_device: int,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
        max_matrices: Optional[int] = None,
    ) -> OptimizationPlan:
        """Drop-in replacement for :meth:`repro.api.P2.optimize`."""
        return self.submit(
            PlanningRequest(axes, request, bytes_per_device, algorithm, max_matrices)
        ).plan

    def submit(self, request: PlanningRequest) -> PlanningResponse:
        """Answer one legacy request (a shim over :meth:`plan`)."""
        outcome = self.plan(request.to_query(self.max_program_size))
        stats = RequestStats(
            fingerprint=outcome.fingerprint or "",
            cache_tier=outcome.cache_tier,
            total_seconds=outcome.total_seconds,
            synthesis_seconds=outcome.synthesis_seconds,
            evaluation_seconds=outcome.evaluation_seconds,
            num_candidates=outcome.num_candidates,
            num_strategies=outcome.num_strategies,
            n_workers=outcome.n_workers,
        )
        return PlanningResponse(request=request, plan=outcome.plan, stats=stats)

    def optimize_many(
        self, requests: Sequence[PlanningRequest]
    ) -> List[PlanningResponse]:
        """Answer a batch of legacy requests (see :meth:`plan_many`)."""
        return [self.submit(request) for request in requests]

    def warm(self, requests: Sequence[Union[PlanQuery, PlanningRequest]]) -> int:
        """Precompute plans for ``requests``; return how many were cold.

        Accepts :class:`PlanQuery` objects directly — the daemon's warm-file
        format is plain ``PlanQuery`` JSONL, the same shape ``serve-batch``
        reads — and keeps accepting legacy :class:`PlanningRequest` objects
        (converted under this service's ``max_program_size``) as a shim.
        """
        cold = 0
        for item in requests:
            query = (
                item
                if isinstance(item, PlanQuery)
                else item.to_query(self.max_program_size)
            )
            if not self.plan(query).cache_hit:
                cold += 1
        return cold

    def warm_from_corpus(self) -> int:
        """Replay this service's corpus into its cache; return how many plans.

        Only records whose stored fingerprint matches what this service
        computes for the same query are replayed (binding topology, cost
        model and fingerprint version at once); a service without a corpus
        warms nothing.  Unlike :meth:`warm`, no search ever runs — this is
        pure cache population, suitable for daemon boot.
        """
        if self.corpus is None:
            return 0
        from repro.corpus.seeding import warm_from_corpus

        return warm_from_corpus(self, self.corpus)

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def compatible_with(self, topology: MachineTopology) -> bool:
        """True when ``topology`` is canonically identical to this service's."""
        return canonical_topology(topology) == canonical_topology(self.topology)

    def _ensure_evaluator(self) -> ParallelEvaluator:
        if self._evaluator is None:
            self._evaluator = ParallelEvaluator(
                self.topology, self.cost_model, self.n_workers, recorder=self.recorder
            )
        return self._evaluator

    def close(self) -> None:
        """Release the worker pool (the cache is left intact)."""
        if self._evaluator is not None:
            self._evaluator.close()
            self._evaluator = None

    def __enter__(self) -> "PlanningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        return (
            f"PlanningService({self.topology.name}, max_program_size="
            f"{self.max_program_size}, workers={self.n_workers}, "
            f"served={self.requests_served}; {self.cache.describe()})"
        )
