"""Two-tier plan cache: an in-memory LRU over a JSON-on-disk store.

The cache maps query fingerprints (:mod:`repro.service.fingerprint`) to
serialized :class:`~repro.api.OptimizationPlan` objects.  Lookups try the
in-memory tier first (bounded LRU, cheap), then the disk tier (one JSON file
per fingerprint, shared across processes and restarts); disk hits are
promoted back into memory.

The (de)serialization itself lives on the domain objects —
:meth:`repro.api.OptimizationPlan.to_dict` / ``from_dict`` — so any caller
can persist plans, not just the cache; :func:`plan_to_dict` and
:func:`plan_from_dict` remain here as compatibility aliases.  Plans *do*
persist their lowered programs (collective + device groups per step) —
re-synthesizing them would forfeit the point of caching — but not the
synthesizer's search state, which is why reconstructed candidates carry
``synthesis=None``.

Corrupted or incompatible entries (truncated writes, format bumps, a file
renamed to the wrong fingerprint) are treated as misses: the entry is
deleted, counted in :attr:`CacheStats.corrupt_entries`, and the caller
recomputes the plan.
"""

from __future__ import annotations

import json
import logging
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api import PLAN_FORMAT_VERSION, OptimizationPlan
from repro.errors import ServiceError

__all__ = [
    "PLAN_FORMAT_VERSION",
    "plan_to_dict",
    "plan_from_dict",
    "CacheStats",
    "PlanCache",
]

logger = logging.getLogger(__name__)


def plan_to_dict(plan: OptimizationPlan) -> Dict:
    """Serialize a plan to a JSON-compatible dict (alias of ``plan.to_dict()``)."""
    return plan.to_dict()


def plan_from_dict(data: Dict) -> OptimizationPlan:
    """Reconstruct a plan (alias of :meth:`OptimizationPlan.from_dict`)."""
    return OptimizationPlan.from_dict(data)


# --------------------------------------------------------------------------- #
# The cache proper
# --------------------------------------------------------------------------- #
@dataclass
class CacheStats:
    """Counters accumulated over the lifetime of one :class:`PlanCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def demote_hit(self, tier: Optional[str]) -> None:
        """Reclassify the most recent hit on ``tier`` as a miss.

        Used when a looked-up entry turns out to be unusable (it parsed as
        JSON but failed plan deserialization) so hit rates reflect requests
        actually served from cache.
        """
        if tier == "memory" and self.memory_hits > 0:
            self.memory_hits -= 1
            self.misses += 1
        elif tier == "disk" and self.disk_hits > 0:
            self.disk_hits -= 1
            self.misses += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"lookups={self.lookups} hits={self.hits} "
            f"(memory={self.memory_hits}, disk={self.disk_hits}) "
            f"misses={self.misses} hit_rate={self.hit_rate:.0%} "
            f"stores={self.stores} evictions={self.evictions} "
            f"corrupt={self.corrupt_entries}"
        )


class PlanCache:
    """Two-tier (memory LRU + optional JSON-on-disk) store of serialized plans.

    Parameters
    ----------
    directory:
        Where to persist entries; ``None`` keeps the cache memory-only.
    capacity:
        Maximum number of plans held in the memory tier; the least recently
        used entry is evicted first (disk entries are never evicted by size).
    """

    def __init__(
        self, directory: Optional[Union[str, Path]] = None, capacity: int = 128
    ) -> None:
        if capacity < 1:
            raise ServiceError("cache capacity must be >= 1")
        self.capacity = capacity
        self.directory = (
            Path(directory).expanduser() if directory is not None else None
        )
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def _entry_path(self, fingerprint: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{fingerprint}.json"

    def lookup(self, fingerprint: str) -> Tuple[Optional[Dict], Optional[str]]:
        """Return ``(plan_dict, tier)`` where tier is ``"memory"``/``"disk"``/``None``."""
        if fingerprint in self._memory:
            self._memory.move_to_end(fingerprint)
            self.stats.memory_hits += 1
            return self._memory[fingerprint], "memory"
        plan = self._read_disk(fingerprint)
        if plan is not None:
            self.stats.disk_hits += 1
            self._insert_memory(fingerprint, plan)
            return plan, "disk"
        self.stats.misses += 1
        return None, None

    def get(self, fingerprint: str) -> Optional[Dict]:
        """Return the cached plan dict for ``fingerprint``, or ``None``."""
        return self.lookup(fingerprint)[0]

    def put(self, fingerprint: str, plan: Dict) -> None:
        """Store a serialized plan under ``fingerprint`` in both tiers."""
        self._insert_memory(fingerprint, plan)
        self.stats.stores += 1
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(fingerprint)
            envelope = {
                "format_version": PLAN_FORMAT_VERSION,
                "fingerprint": fingerprint,
                "plan": plan,
            }
            # Write-then-rename so a crashed writer never leaves a torn entry
            # under the final name.
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(envelope, indent=2))
            tmp.replace(path)
            logger.debug("stored plan %s to %s", fingerprint, path)

    def _insert_memory(self, fingerprint: str, plan: Dict) -> None:
        self._memory[fingerprint] = plan
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            evicted, _ = self._memory.popitem(last=False)
            self.stats.evictions += 1
            logger.debug("evicted plan %s from the memory tier", evicted)

    def _read_disk(self, fingerprint: str) -> Optional[Dict]:
        if self.directory is None:
            return None
        path = self._entry_path(fingerprint)
        if not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text())
            if envelope["format_version"] != PLAN_FORMAT_VERSION:
                raise ServiceError("stale cache format")
            if envelope["fingerprint"] != fingerprint:
                raise ServiceError("fingerprint mismatch")
            plan = envelope["plan"]
            if not isinstance(plan, dict):
                raise ServiceError("malformed plan payload")
            return plan
        except (json.JSONDecodeError, KeyError, TypeError, ServiceError) as error:
            self.stats.corrupt_entries += 1
            logger.debug("dropping corrupt cache entry %s: %r", path, error)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is best-effort
                pass
            return None

    # ------------------------------------------------------------------ #
    # Introspection / maintenance
    # ------------------------------------------------------------------ #
    @property
    def num_memory_entries(self) -> int:
        return len(self._memory)

    def disk_fingerprints(self) -> List[str]:
        """Fingerprints currently persisted on disk (sorted)."""
        if self.directory is None or not self.directory.exists():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def disk_bytes(self) -> int:
        """Total size of the disk tier in bytes."""
        if self.directory is None or not self.directory.exists():
            return 0
        return sum(p.stat().st_size for p in self.directory.glob("*.json"))

    def discard(self, fingerprint: str, corrupt: bool = False) -> None:
        """Drop one entry from both tiers (e.g. after failed deserialization)."""
        self._memory.pop(fingerprint, None)
        if self.directory is not None:
            path = self._entry_path(fingerprint)
            if path.exists():
                path.unlink()
        if corrupt:
            self.stats.corrupt_entries += 1

    def clear(self) -> int:
        """Drop every entry from both tiers; return how many distinct plans were removed."""
        fingerprints = set(self._memory)
        self._memory.clear()
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                fingerprints.add(path.stem)
                path.unlink()
        return len(fingerprints)

    def describe(self) -> str:
        tiers = [f"memory {self.num_memory_entries}/{self.capacity}"]
        if self.directory is not None:
            tiers.append(
                f"disk {len(self.disk_fingerprints())} entries "
                f"({self.disk_bytes() / 1e3:.1f} kB) at {self.directory}"
            )
        return f"PlanCache({', '.join(tiers)}; {self.stats.describe()})"
