"""Parallel candidate evaluation over a process pool.

Ranking a plan means simulating every (placement, strategy) candidate — an
embarrassingly parallel workload once synthesis has produced the lowered
programs.  :class:`ParallelEvaluator` fans the pricing out over a
``concurrent.futures.ProcessPoolExecutor`` and returns the predicted times
*in submission order*, so the caller's ranking (a stable sort over those
times) is identical to the serial path's.

The division of labour follows the compile/price split of
:mod:`repro.cost.profile`.  For a signature the parent's profile cache
already knows, the task ships the compiled
:class:`~repro.cost.profile.SimulationProfile` — a handful of equivalence
classes per step, far smaller than the program's full group lists — and the
worker runs only the closed-form pricing loop.  For a cold signature the
task ships the program: the worker compiles it (so cold-path semantics and
contention analysis parallelize across the pool, exactly like the
pre-profile code) *and returns the profile* alongside the price, which the
parent adopts into its cache — the next payload over the same program ships
a profile instead.  No signature is ever compiled twice per evaluator, and
both task kinds run the very same :func:`~repro.cost.profile.price_profile`
arithmetic as the serial path, so results are bit-identical.  Zero-step
programs are priced at 0.0 inline and duplicate signatures are priced once,
matching the serial path, and never cross the process boundary.

With ``n_workers=1`` (or a single evaluatable program) everything runs
inline in the calling process — same results, no pool overhead — which is
also the automatic fallback on single-CPU hosts.

The streaming search driver (:mod:`repro.search.driver`) uses this evaluator
in two shapes: exhaustive queries arrive as one batched :meth:`evaluate`
call over the whole entry stream (the historical pool path, identical
ranking), while budgeted queries arrive as candidate *chunks* — a few
entries per worker — priced between reads of the shared incumbent
watermark, so each chunk is first filtered by closed-form lower bounds
against the freshest incumbent and only survivors cross the process
boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cost.batch import have_numpy, price_programs
from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.profile import SimulationProfile, price_profile
from repro.cost.simulator import ProgramSimulator
from repro.errors import ServiceError
from repro.obs.recorder import (
    NULL_RECORDER,
    Recorder,
    RecorderSnapshot,
    current_trace_context,
    get_recorder,
)
from repro.synthesis.lowering import LoweredProgram
from repro.topology.topology import MachineTopology

__all__ = ["ParallelEvaluator", "default_worker_count"]

_WORKER_SIMULATOR: Optional[ProgramSimulator] = None
# The worker-local telemetry recorder.  Each task drains it, so what ships
# back to the parent is a disjoint per-task delta; the parent merges the
# deltas, and because histogram/counter merging is associative the combined
# state is independent of task interleaving across workers.
_WORKER_RECORDER = NULL_RECORDER


def default_worker_count() -> int:
    """The evaluator's default pool size: one worker per available CPU."""
    return max(1, os.cpu_count() or 1)


def _init_worker(
    topology: MachineTopology, cost_model: CostModel, telemetry_enabled: bool = False
) -> None:
    global _WORKER_SIMULATOR, _WORKER_RECORDER
    _WORKER_RECORDER = Recorder() if telemetry_enabled else NULL_RECORDER
    _WORKER_SIMULATOR = ProgramSimulator(
        topology, cost_model, recorder=_WORKER_RECORDER
    )


def _evaluate_task(
    task: Tuple[
        int,
        Optional[LoweredProgram],
        Optional[SimulationProfile],
        float,
        NCCLAlgorithm,
        Optional[Tuple[str, str]],
    ]
) -> Tuple[int, float, Optional[SimulationProfile], Optional[RecorderSnapshot]]:
    """Price one candidate; compile it first when no profile was shipped.

    Returns the compiled profile only when this worker did the compilation,
    so the parent can adopt it (a profile that came *in* goes back as None).
    The last element is the worker recorder's telemetry delta for this task
    (``None`` with telemetry disabled): the worker's ``worker.price`` span —
    parented under the trace context shipped with the task, so it lands in
    the caller's request trace — plus any compile spans and profile counters.
    """
    index, program, profile, bytes_per_device, algorithm, parent_ctx = task
    assert _WORKER_SIMULATOR is not None, "worker pool was not initialized"
    with _WORKER_RECORDER.span("worker.price", _parent=parent_ctx, index=index):
        if profile is not None:
            result = price_profile(
                profile, bytes_per_device, algorithm, _WORKER_SIMULATOR.cost_model
            )
            compiled = None
        else:
            compiled = _WORKER_SIMULATOR.profile_for(program)
            result = price_profile(
                compiled, bytes_per_device, algorithm, _WORKER_SIMULATOR.cost_model
            )
    delta = _WORKER_RECORDER.drain() if _WORKER_RECORDER.enabled else None
    return index, result.total_seconds, compiled, delta


def _evaluate_chunk(
    task: Tuple[
        Tuple[int, ...],
        Tuple[Tuple[Tuple, Optional[LoweredProgram], Optional[SimulationProfile]], ...],
        float,
        NCCLAlgorithm,
        Optional[Tuple[str, str]],
    ]
) -> Tuple[
    Tuple[int, ...],
    List[float],
    List[Optional[SimulationProfile]],
    Optional[RecorderSnapshot],
]:
    """Price one chunk of candidates in a single vectorized batch call.

    Each item is ``(signature, program | None, profile | None)``: shipped
    profiles are priced directly, cold programs are compiled first (and the
    profiles returned for the parent to adopt, exactly like
    :func:`_evaluate_task`).  All of the chunk's class rows then go through
    one flattened :func:`~repro.cost.batch.price_programs` kernel — exact
    equal floats to per-entry ``price_profile`` calls.  Coefficient tables
    are cached in the worker simulator per signature, so repeated signatures
    across chunks and evaluate calls never rebuild them.  The telemetry
    delta carries one ``worker.price`` span for the chunk (``entries`` holds
    its size) plus the usual compile spans and profile/batch counters.
    """
    indices, items, bytes_per_device, algorithm, parent_ctx = task
    assert _WORKER_SIMULATOR is not None, "worker pool was not initialized"
    simulator = _WORKER_SIMULATOR
    compiled: List[Optional[SimulationProfile]] = [None] * len(items)
    with _WORKER_RECORDER.span(
        "worker.price", _parent=parent_ctx, index=indices[0], entries=len(items)
    ):
        pricers = []
        for j, (signature, program, profile) in enumerate(items):
            if profile is None:
                profile = simulator.profile_for(program)
                compiled[j] = profile
            pricers.append(simulator.pricer_for(signature, profile))
        totals = price_programs(
            pricers, bytes_per_device, algorithm, simulator.cost_model
        )
        simulator._count_batch(have_numpy(), len(items))
    delta = _WORKER_RECORDER.drain() if _WORKER_RECORDER.enabled else None
    return indices, totals, compiled, delta


class ParallelEvaluator:
    """Reusable process-pool evaluator bound to one topology and cost model.

    ``simulator`` is the parent-side :class:`ProgramSimulator` that compiles
    and caches profiles across :meth:`evaluate` calls; its ``profile_hits``
    counter is what planning provenance reports for pool-evaluated queries.
    """

    def __init__(
        self,
        topology: MachineTopology,
        cost_model: Optional[CostModel] = None,
        n_workers: Optional[int] = None,
        recorder=None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ServiceError("n_workers must be >= 1")
        self.topology = topology
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.n_workers = n_workers if n_workers is not None else default_worker_count()
        self.recorder = recorder if recorder is not None else get_recorder()
        self.simulator = ProgramSimulator(
            topology, self.cost_model, recorder=self.recorder
        )
        self._executor: Optional[ProcessPoolExecutor] = None

    def profile_counters(self) -> Tuple[int, int]:
        """(hits, misses) of the parent-side compiled-profile cache."""
        return self.simulator.profile_hits, self.simulator.profile_misses

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        programs: Sequence[LoweredProgram],
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> List[float]:
        """Predicted seconds for each program, in input order."""
        predicted = [0.0] * len(programs)
        # One pricing task per distinct (device count, signature); duplicates
        # copy the result.  num_devices is part of the key because
        # signature() only records the groups, and a program whose device
        # count does not match the topology must reach the simulator (or
        # compile_profile) to be rejected rather than ride a copy.
        first_with_signature: Dict[Tuple, int] = {}
        duplicates: List[Tuple[int, int]] = []
        unique_indices: List[int] = []
        signatures: Dict[int, Tuple] = {}
        for i, program in enumerate(programs):
            if program.num_steps == 0:
                continue
            raw_signature = program.signature()
            signature = (program.num_devices, raw_signature)
            first = first_with_signature.get(signature)
            if first is not None:
                duplicates.append((i, first))
                continue
            first_with_signature[signature] = i
            unique_indices.append(i)
            signatures[i] = raw_signature

        if self.n_workers <= 1 or len(unique_indices) <= 1:
            # Inline path: one vectorized batch over the unique programs
            # (same totals, hit/miss accounting and compile order as
            # per-program simulate calls).
            totals = self.simulator.simulate_many(
                [programs[i] for i in unique_indices], bytes_per_device, algorithm
            )
            for i, seconds in zip(unique_indices, totals):
                predicted[i] = seconds
        else:
            with self.recorder.span(
                "evaluate.batch", tasks=len(unique_indices)
            ) as batch_span:
                # Ship the batch span's identity with each chunk so the
                # workers' spans attach to this request's trace tree.
                parent_ctx = (
                    (batch_span.trace_id, batch_span.span_id)
                    if batch_span.trace_id is not None
                    else current_trace_context()
                )
                entries = []
                for i in unique_indices:
                    profile = self.simulator.cached_profile(programs[i])
                    entries.append(
                        (
                            i,
                            (
                                signatures[i],
                                None if profile is not None else programs[i],
                                profile,
                            ),
                        )
                    )
                # The same granularity executor.map(chunksize=...) used: a
                # few chunks per worker, but each chunk is now priced in one
                # flattened kernel rather than entry by entry.
                chunk_len = max(1, len(entries) // (self.n_workers * 4))
                chunks = [
                    (
                        tuple(i for i, _ in part),
                        tuple(item for _, item in part),
                        bytes_per_device,
                        algorithm,
                        parent_ctx,
                    )
                    for part in (
                        entries[start : start + chunk_len]
                        for start in range(0, len(entries), chunk_len)
                    )
                ]
                executor = self._ensure_executor()
                for indices, totals, compiled_list, delta in executor.map(
                    _evaluate_chunk, chunks
                ):
                    for index, seconds, compiled in zip(
                        indices, totals, compiled_list
                    ):
                        predicted[index] = seconds
                        if compiled is not None:
                            self.simulator.adopt_profile(programs[index], compiled)
                    if delta is not None:
                        self.recorder.merge(delta)

        for i, first in duplicates:
            predicted[i] = predicted[first]
        return predicted

    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(self.topology, self.cost_model, self.recorder.enabled),
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the evaluator can be reused)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
