"""Parallel candidate evaluation over a process pool.

Ranking a plan means simulating every (placement, strategy) candidate — an
embarrassingly parallel workload once synthesis has produced the lowered
programs.  :class:`ParallelEvaluator` fans the simulations out over a
``concurrent.futures.ProcessPoolExecutor`` and returns the predicted times
*in submission order*, so the caller's ranking (a stable sort over those
times) is identical to the serial path's: the workers run the very same
:class:`~repro.cost.simulator.ProgramSimulator` arithmetic, and result order
is preserved by index.

The topology and cost model are shipped to each worker once (pool
initializer) rather than per task; tasks carry only the lowered program and
the payload.  Zero-step programs are priced at 0.0 inline, matching the
serial path, and never cross the process boundary.

With ``n_workers=1`` (or a single evaluatable program) everything runs
inline in the calling process — same results, no pool overhead — which is
also the automatic fallback on single-CPU hosts.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.cost.simulator import ProgramSimulator
from repro.errors import ServiceError
from repro.synthesis.lowering import LoweredProgram
from repro.topology.topology import MachineTopology

__all__ = ["ParallelEvaluator", "default_worker_count"]

_WORKER_SIMULATOR: Optional[ProgramSimulator] = None


def default_worker_count() -> int:
    """The evaluator's default pool size: one worker per available CPU."""
    return max(1, os.cpu_count() or 1)


def _init_worker(topology: MachineTopology, cost_model: CostModel) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = ProgramSimulator(topology, cost_model)


def _simulate_task(
    task: Tuple[int, LoweredProgram, float, NCCLAlgorithm]
) -> Tuple[int, float]:
    index, program, bytes_per_device, algorithm = task
    assert _WORKER_SIMULATOR is not None, "worker pool was not initialized"
    result = _WORKER_SIMULATOR.simulate(program, bytes_per_device, algorithm)
    return index, result.total_seconds


class ParallelEvaluator:
    """Reusable process-pool evaluator bound to one topology and cost model."""

    def __init__(
        self,
        topology: MachineTopology,
        cost_model: Optional[CostModel] = None,
        n_workers: Optional[int] = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ServiceError("n_workers must be >= 1")
        self.topology = topology
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.n_workers = n_workers if n_workers is not None else default_worker_count()
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        programs: Sequence[LoweredProgram],
        bytes_per_device: float,
        algorithm: NCCLAlgorithm = NCCLAlgorithm.RING,
    ) -> List[float]:
        """Predicted seconds for each program, in input order."""
        predicted = [0.0] * len(programs)
        tasks = [
            (i, program, bytes_per_device, algorithm)
            for i, program in enumerate(programs)
            if program.num_steps > 0
        ]
        if self.n_workers <= 1 or len(tasks) <= 1:
            simulator = ProgramSimulator(self.topology, self.cost_model)
            for i, program, payload, algo in tasks:
                predicted[i] = simulator.simulate(program, payload, algo).total_seconds
            return predicted

        executor = self._ensure_executor()
        chunksize = max(1, len(tasks) // (self.n_workers * 4))
        for index, seconds in executor.map(_simulate_task, tasks, chunksize=chunksize):
            predicted[index] = seconds
        return predicted

    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(self.topology, self.cost_model),
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the evaluator can be reused)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
