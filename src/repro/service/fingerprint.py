"""Deterministic fingerprints for planning queries.

The planning service caches :class:`~repro.api.OptimizationPlan` objects by
the *query* that produced them.  Because the whole pipeline — placement
enumeration, program synthesis, lowering and simulation — is a deterministic
function of (topology, axes, request, payload, algorithm, cost model, search
limits), a canonical hash over exactly those inputs is a sound cache key: two
queries with the same fingerprint always produce the same ranked plan.

The canonical form is a plain JSON-serializable dict (useful on its own for
logging and for embedding in cache entries); the fingerprint is the SHA-256
of its compact, key-sorted JSON encoding.  Only stable value types (strings,
ints, floats, lists, ``None``) appear in the canonical form, so fingerprints
are identical across process restarts and unaffected by ``PYTHONHASHSEED``.

``FINGERPRINT_VERSION`` participates in the hash: bump it whenever the
canonical form or any pipeline semantics change, and every previously cached
plan is invalidated at once.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.topology.links import LinkSpec
from repro.topology.topology import MachineTopology

__all__ = [
    "FINGERPRINT_VERSION",
    "canonical_topology",
    "canonical_cost_model",
    "canonical_query",
    "query_fingerprint",
]

FINGERPRINT_VERSION = 1


def _link_to_dict(link: LinkSpec) -> Dict:
    return {
        "name": link.name,
        "kind": link.kind.value,
        "bandwidth": link.bandwidth,
        "latency": link.latency,
    }


def canonical_topology(topology: MachineTopology) -> Dict:
    """Canonical JSON-serializable form of a machine topology."""
    return {
        "name": topology.name,
        "levels": [
            [level.name, level.cardinality] for level in topology.hierarchy.levels
        ],
        "interconnects": [_link_to_dict(link) for link in topology.interconnects],
        "nic_level": topology.nic_level,
        "nics_per_instance": topology.nics_per_instance,
        "host_link": (
            _link_to_dict(topology.host_link) if topology.host_link is not None else None
        ),
    }


def canonical_cost_model(cost_model: CostModel) -> Dict:
    """Canonical JSON-serializable form of the cost-model knobs."""
    return {
        "launch_overhead": cost_model.launch_overhead,
        "small_message_bytes": cost_model.small_message_bytes,
        "small_message_efficiency": cost_model.small_message_efficiency,
    }


def canonical_query(
    topology: MachineTopology,
    axes: ParallelismAxes,
    request: ReductionRequest,
    bytes_per_device: int,
    algorithm: NCCLAlgorithm,
    cost_model: CostModel,
    max_program_size: int,
    max_matrices: Optional[int] = None,
) -> Dict:
    """The full canonical form of one planning query.

    Everything :meth:`repro.api.P2.optimize` consumes appears here; nothing
    else does, so the fingerprint neither over- nor under-approximates the
    pipeline's true input.
    """
    return {
        "fingerprint_version": FINGERPRINT_VERSION,
        "topology": canonical_topology(topology),
        "axes": {"sizes": list(axes.sizes), "names": list(axes.names)},
        "request": {"axes": list(request.axes)},
        "bytes_per_device": int(bytes_per_device),
        "algorithm": algorithm.value,
        "cost_model": canonical_cost_model(cost_model),
        "max_program_size": int(max_program_size),
        "max_matrices": None if max_matrices is None else int(max_matrices),
    }


def query_fingerprint(
    topology: MachineTopology,
    axes: ParallelismAxes,
    request: ReductionRequest,
    bytes_per_device: int,
    algorithm: NCCLAlgorithm,
    cost_model: CostModel,
    max_program_size: int,
    max_matrices: Optional[int] = None,
) -> str:
    """SHA-256 fingerprint of one planning query (64 hex characters)."""
    canonical = canonical_query(
        topology,
        axes,
        request,
        bytes_per_device,
        algorithm,
        cost_model,
        max_program_size,
        max_matrices,
    )
    encoded = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
