"""Deterministic fingerprints for planning queries.

The planning service caches :class:`~repro.api.OptimizationPlan` objects by
the *query* that produced them.  Because the whole pipeline — placement
enumeration, program synthesis, lowering and simulation — is a deterministic
function of (topology, query, cost model), a canonical hash over exactly
those inputs is a sound cache key: two queries with the same fingerprint
always produce the same ranked plan.

The canonical form is a plain JSON-serializable dict built from
:meth:`repro.query.PlanQuery.to_dict` — the query object *is* the canonical
query — plus the canonical topology and cost-model forms that a
:class:`PlanQuery` deliberately does not carry (they are the service's fixed
context, not the request).  The fingerprint is the SHA-256 of the compact,
key-sorted JSON encoding.  Only stable value types (strings, ints, floats,
lists, ``None``) appear, so fingerprints are identical across process
restarts and unaffected by ``PYTHONHASHSEED``.

``FINGERPRINT_VERSION`` participates in the hash: bump it whenever the
canonical form or any pipeline semantics change, and every previously cached
plan is invalidated at once.  Version 2 switched the canonical query to
``PlanQuery.to_dict`` (grouping the request fields under a ``"query"`` key);
version 3 added the search budget (``max_candidates`` / ``time_budget_s``)
to the canonical query and baselines to the computed plans.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro.cost.model import CostModel
from repro.cost.nccl import NCCLAlgorithm
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.query import PlanQuery
from repro.topology.links import LinkSpec
from repro.topology.topology import MachineTopology

__all__ = [
    "FINGERPRINT_VERSION",
    "canonical_topology",
    "canonical_cost_model",
    "canonical_plan_query",
    "canonical_query",
    "plan_query_fingerprint",
    "query_fingerprint",
]

FINGERPRINT_VERSION = 3


def _link_to_dict(link: LinkSpec) -> Dict:
    return {
        "name": link.name,
        "kind": link.kind.value,
        "bandwidth": link.bandwidth,
        "latency": link.latency,
    }


def canonical_topology(topology: MachineTopology) -> Dict:
    """Canonical JSON-serializable form of a machine topology."""
    return {
        "name": topology.name,
        "levels": [
            [level.name, level.cardinality] for level in topology.hierarchy.levels
        ],
        "interconnects": [_link_to_dict(link) for link in topology.interconnects],
        "nic_level": topology.nic_level,
        "nics_per_instance": topology.nics_per_instance,
        "host_link": (
            _link_to_dict(topology.host_link) if topology.host_link is not None else None
        ),
    }


def canonical_cost_model(cost_model: CostModel) -> Dict:
    """Canonical JSON-serializable form of the cost-model knobs."""
    return {
        "launch_overhead": cost_model.launch_overhead,
        "small_message_bytes": cost_model.small_message_bytes,
        "small_message_efficiency": cost_model.small_message_efficiency,
    }


def canonical_plan_query(
    topology: MachineTopology, query: PlanQuery, cost_model: CostModel
) -> Dict:
    """The full canonical form of one planning query.

    Everything :meth:`repro.api.P2.plan` consumes appears here; nothing else
    does, so the fingerprint neither over- nor under-approximates the
    pipeline's true input.
    """
    return {
        "fingerprint_version": FINGERPRINT_VERSION,
        "topology": canonical_topology(topology),
        "cost_model": canonical_cost_model(cost_model),
        "query": query.to_dict(),
    }


def plan_query_fingerprint(
    topology: MachineTopology, query: PlanQuery, cost_model: CostModel
) -> str:
    """SHA-256 fingerprint of one :class:`PlanQuery` (64 hex characters)."""
    return _digest(canonical_plan_query(topology, query, cost_model))


def _digest(canonical: Dict) -> str:
    encoded = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Loose-argument compatibility layer (pre-PlanQuery signature)
# --------------------------------------------------------------------------- #
def canonical_query(
    topology: MachineTopology,
    axes: ParallelismAxes,
    request: ReductionRequest,
    bytes_per_device: int,
    algorithm: NCCLAlgorithm,
    cost_model: CostModel,
    max_program_size: int,
    max_matrices: Optional[int] = None,
) -> Dict:
    """Canonical form from loose arguments (builds a :class:`PlanQuery`)."""
    query = PlanQuery(
        axes=axes,
        request=request,
        bytes_per_device=bytes_per_device,
        algorithm=algorithm,
        max_matrices=max_matrices,
        max_program_size=max_program_size,
    )
    return canonical_plan_query(topology, query, cost_model)


def query_fingerprint(
    topology: MachineTopology,
    axes: ParallelismAxes,
    request: ReductionRequest,
    bytes_per_device: int,
    algorithm: NCCLAlgorithm,
    cost_model: CostModel,
    max_program_size: int,
    max_matrices: Optional[int] = None,
) -> str:
    """SHA-256 fingerprint from loose arguments (64 hex characters)."""
    return _digest(
        canonical_query(
            topology,
            axes,
            request,
            bytes_per_device,
            algorithm,
            cost_model,
            max_program_size,
            max_matrices,
        )
    )
