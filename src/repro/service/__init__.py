"""The planning service: caching, parallel evaluation and a batch API for P².

The rest of the package computes plans; this subpackage *serves* them:

* :mod:`repro.service.fingerprint` — deterministic, restart-stable hashes of
  (topology, axes, request, payload, algorithm, cost model, limits) queries.
* :mod:`repro.service.cache` — a two-tier plan cache (in-memory LRU over a
  JSON-on-disk store) with hit/miss/eviction statistics.
* :mod:`repro.service.parallel` — process-pool candidate evaluation that
  reproduces the serial ranking exactly.
* :mod:`repro.service.engine` — the :class:`PlanningService` facade tying
  them together, with per-request stats and a deduplicating batch API.

Quickstart::

    >>> from repro.service import PlanningService, PlanCache
    >>> from repro.topology import a100_system
    >>> from repro import ParallelismAxes, ReductionRequest
    >>> service = PlanningService(a100_system(num_nodes=2),
    ...                           cache=PlanCache("~/.cache/repro-plans"))
    ... # doctest: +SKIP
    >>> plan = service.optimize(ParallelismAxes.of(8, 4),
    ...                         ReductionRequest.over(0),
    ...                         bytes_per_device=1 << 26)  # doctest: +SKIP
"""

from repro.query import PlanOutcome, PlanQuery, Planner
from repro.service.cache import CacheStats, PlanCache, plan_from_dict, plan_to_dict
from repro.service.engine import (
    PlanningRequest,
    PlanningResponse,
    PlanningService,
    RequestStats,
)
from repro.service.fingerprint import (
    canonical_plan_query,
    canonical_query,
    canonical_topology,
    plan_query_fingerprint,
    query_fingerprint,
)
from repro.service.parallel import ParallelEvaluator, default_worker_count

__all__ = [
    "PlanningService",
    "PlanningRequest",
    "PlanningResponse",
    "RequestStats",
    "PlanQuery",
    "PlanOutcome",
    "Planner",
    "PlanCache",
    "CacheStats",
    "plan_to_dict",
    "plan_from_dict",
    "ParallelEvaluator",
    "default_worker_count",
    "plan_query_fingerprint",
    "canonical_plan_query",
    "query_fingerprint",
    "canonical_query",
    "canonical_topology",
]
