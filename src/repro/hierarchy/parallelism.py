"""Parallelism axes and reduction requests.

A model's parallelisation is described by one size per *parallelism axis*
(data parallelism, parameter sharding, pipeline stages, ...).  The user then
asks for a reduction over a subset of those axes — e.g. gradient all-reduce
runs over the data-parallel axis, Megatron-style sharded layers reduce over
the tensor-parallel axis.  These two notions are deliberately independent of
any hardware hierarchy; they are combined with one by a parallelism matrix
(:mod:`repro.hierarchy.matrix`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import HierarchyError
from repro.utils.validation import check_positive_ints

__all__ = ["ParallelismAxes", "ReductionRequest"]

_DEFAULT_AXIS_NAMES = ("data", "model", "pipeline", "expert")


@dataclass(frozen=True)
class ParallelismAxes:
    """The sizes (and optional names) of the parallelism axes.

    Example
    -------
    >>> axes = ParallelismAxes((4, 4), names=("data", "shard"))
    >>> axes.total_parallelism
    16
    """

    sizes: Tuple[int, ...]
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        sizes = check_positive_ints(self.sizes, "parallelism axis sizes", HierarchyError)
        object.__setattr__(self, "sizes", sizes)
        names = self.names
        if not names:
            names = tuple(
                _DEFAULT_AXIS_NAMES[i] if i < len(_DEFAULT_AXIS_NAMES) else f"axis{i}"
                for i in range(len(sizes))
            )
        if len(names) != len(sizes):
            raise HierarchyError(
                f"got {len(names)} axis names for {len(sizes)} axis sizes"
            )
        if len(set(names)) != len(names):
            raise HierarchyError(f"axis names must be unique, got {list(names)}")
        object.__setattr__(self, "names", tuple(names))

    @classmethod
    def of(cls, *sizes: int, names: Sequence[str] = ()) -> "ParallelismAxes":
        """Convenience constructor: ``ParallelismAxes.of(4, 4)``."""
        return cls(tuple(sizes), tuple(names))

    @property
    def num_axes(self) -> int:
        return len(self.sizes)

    @property
    def total_parallelism(self) -> int:
        """Product of all axis sizes — the number of distinct program shards."""
        total = 1
        for s in self.sizes:
            total *= s
        return total

    def axis_index(self, name: str) -> int:
        """Return the index of the axis called ``name``."""
        for i, axis_name in enumerate(self.names):
            if axis_name == name:
                return i
        raise HierarchyError(f"no parallelism axis named {name!r}; axes are {list(self.names)}")

    def __len__(self) -> int:
        return self.num_axes

    def __iter__(self) -> Iterator[int]:
        return iter(self.sizes)

    def __getitem__(self, index: int) -> int:
        return self.sizes[index]

    def describe(self) -> str:
        return "[" + ", ".join(f"{n}={s}" for n, s in zip(self.names, self.sizes)) + "]"


@dataclass(frozen=True)
class ReductionRequest:
    """A request to reduce over a subset of the parallelism axes.

    ``axes`` holds the indices of the reduction axes (paper: "reduction
    axes").  Devices that agree on every *non*-reduction axis coordinate and
    differ on some reduction-axis coordinate must end up holding the sum of
    each other's data.

    The payload size (``bytes_per_device``) is carried here because the cost
    of a strategy — though not its semantic validity — depends on it.
    """

    axes: Tuple[int, ...]
    bytes_per_device: int = 0

    def __post_init__(self) -> None:
        if len(self.axes) == 0:
            raise HierarchyError("a reduction request needs at least one reduction axis")
        if len(set(self.axes)) != len(self.axes):
            raise HierarchyError(f"duplicate reduction axes in {list(self.axes)}")
        if any(a < 0 for a in self.axes):
            raise HierarchyError(f"reduction axes must be non-negative, got {list(self.axes)}")
        object.__setattr__(self, "axes", tuple(sorted(self.axes)))
        if self.bytes_per_device < 0:
            raise HierarchyError("bytes_per_device must be non-negative")

    @classmethod
    def over(cls, *axes: int, bytes_per_device: int = 0) -> "ReductionRequest":
        """Convenience constructor: ``ReductionRequest.over(0, 2)``."""
        return cls(tuple(axes), bytes_per_device)

    def validate_against(self, axes: ParallelismAxes) -> None:
        """Raise if any reduction axis index is out of range for ``axes``."""
        for a in self.axes:
            if a >= axes.num_axes:
                raise HierarchyError(
                    f"reduction axis {a} out of range for {axes.num_axes} parallelism axes"
                )

    def group_size(self, axes: ParallelismAxes) -> int:
        """Number of devices in each reduction group (product of reduced axis sizes)."""
        self.validate_against(axes)
        total = 1
        for a in self.axes:
            total *= axes.sizes[a]
        return total

    def non_reduction_axes(self, axes: ParallelismAxes) -> Tuple[int, ...]:
        """Indices of the axes *not* reduced over, in increasing order."""
        self.validate_against(axes)
        return tuple(i for i in range(axes.num_axes) if i not in self.axes)

    def describe(self, axes: ParallelismAxes = None) -> str:
        if axes is None:
            return "reduce over axes " + ", ".join(str(a) for a in self.axes)
        return "reduce over " + ", ".join(axes.names[a] for a in self.axes)
