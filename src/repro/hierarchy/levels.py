"""Hardware system hierarchies.

A *system* in the paper (§2) consists of a hardware hierarchy — an ordered
list of named levels, each with a cardinality (how many children each instance
of the previous level has) — plus a set of interconnects.  This module models
the hierarchy part; interconnect/bandwidth modelling lives in
:mod:`repro.topology`.

Example (Figure 2a of the paper)::

    >>> hierarchy = SystemHierarchy.from_pairs(
    ...     [("rack", 1), ("server", 2), ("cpu", 2), ("gpu", 4)])
    >>> hierarchy.num_devices
    16
    >>> hierarchy.cardinalities
    (1, 2, 2, 4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import HierarchyError
from repro.utils.mixed_radix import MixedRadix
from repro.utils.validation import check_positive_int

__all__ = ["Level", "SystemHierarchy"]


@dataclass(frozen=True)
class Level:
    """One level of the hardware hierarchy.

    Attributes
    ----------
    name:
        Human-readable level name (``"rack"``, ``"node"``, ``"gpu"`` ...).
    cardinality:
        Number of instances of this level under a single instance of the
        parent level.  The root level typically has cardinality 1.
    """

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if not self.name:
            raise HierarchyError("level name must be a non-empty string")
        check_positive_int(self.cardinality, f"cardinality of level {self.name!r}", HierarchyError)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.name}, {self.cardinality})"


@dataclass(frozen=True)
class SystemHierarchy:
    """An ordered hardware hierarchy, root level first.

    The hierarchy is the coarse, purely structural view of the system: it says
    how many children each level has but nothing about bandwidths.  Devices
    (leaves) are numbered ``0 .. num_devices - 1`` in mixed-radix order with
    the root level as the most significant digit.
    """

    levels: Tuple[Level, ...]

    def __post_init__(self) -> None:
        if len(self.levels) == 0:
            raise HierarchyError("a system hierarchy needs at least one level")
        names = [level.name for level in self.levels]
        if len(set(names)) != len(names):
            raise HierarchyError(f"level names must be unique, got {names}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, int]]) -> "SystemHierarchy":
        """Build a hierarchy from ``(name, cardinality)`` pairs, root first."""
        return cls(tuple(Level(name, card) for name, card in pairs))

    @classmethod
    def from_cardinalities(
        cls, cardinalities: Sequence[int], names: Sequence[str] = ()
    ) -> "SystemHierarchy":
        """Build a hierarchy from bare cardinalities; names default to ``level0..``."""
        if names and len(names) != len(cardinalities):
            raise HierarchyError("names and cardinalities must have the same length")
        if not names:
            names = tuple(f"level{i}" for i in range(len(cardinalities)))
        return cls.from_pairs(zip(names, cardinalities))

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def cardinalities(self) -> Tuple[int, ...]:
        """Cardinality of each level, root first."""
        return tuple(level.cardinality for level in self.levels)

    @property
    def names(self) -> Tuple[str, ...]:
        """Name of each level, root first."""
        return tuple(level.name for level in self.levels)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_devices(self) -> int:
        """Total number of leaf devices (product of the cardinalities)."""
        total = 1
        for level in self.levels:
            total *= level.cardinality
        return total

    @property
    def radix(self) -> MixedRadix:
        """Mixed radix over the level cardinalities (root most significant)."""
        return MixedRadix(self.cardinalities)

    def level_index(self, name: str) -> int:
        """Return the index of the level called ``name``."""
        for i, level in enumerate(self.levels):
            if level.name == name:
                return i
        raise HierarchyError(f"no level named {name!r}; levels are {list(self.names)}")

    def __len__(self) -> int:
        return self.num_levels

    def __iter__(self) -> Iterator[Level]:
        return iter(self.levels)

    def __getitem__(self, index: int) -> Level:
        return self.levels[index]

    # ------------------------------------------------------------------ #
    # Device addressing
    # ------------------------------------------------------------------ #
    def device_coordinates(self, device: int) -> Tuple[int, ...]:
        """Return the per-level digits (root first) for a flat device id."""
        return self.radix.decode(device)

    def device_id(self, coordinates: Sequence[int]) -> int:
        """Return the flat device id for per-level digits (root first)."""
        return self.radix.encode(coordinates)

    def devices_under(self, level: int, instance_coordinates: Sequence[int]) -> List[int]:
        """List devices under a given instance of ``level``.

        ``instance_coordinates`` are the digits of levels ``0..level`` that
        identify the instance.
        """
        if not 0 <= level < self.num_levels:
            raise HierarchyError(f"level index {level} out of range")
        if len(instance_coordinates) != level + 1:
            raise HierarchyError(
                f"expected {level + 1} coordinates for level {level}, "
                f"got {len(instance_coordinates)}"
            )
        below = MixedRadix(self.cardinalities[level + 1 :])
        devices = []
        for tail in below:
            devices.append(self.device_id(tuple(instance_coordinates) + tail))
        return devices

    def ancestor_instance(self, device: int, level: int) -> Tuple[int, ...]:
        """Return the coordinates identifying ``device``'s ancestor at ``level``."""
        coords = self.device_coordinates(device)
        return coords[: level + 1]

    def lowest_common_level(self, devices: Sequence[int]) -> int:
        """Return the deepest level at which all ``devices`` share an ancestor.

        Returns ``-1`` when the devices do not even share the root instance
        (only possible for an empty hierarchy, so in practice the result is in
        ``0 .. num_levels - 1``).  A single device shares all levels with
        itself and returns ``num_levels - 1``.
        """
        if len(devices) == 0:
            raise HierarchyError("lowest_common_level needs at least one device")
        coords = [self.device_coordinates(d) for d in devices]
        common = -1
        for level in range(self.num_levels):
            digits = {c[level] for c in coords}
            if len(digits) == 1:
                common = level
            else:
                break
        return common

    def describe(self) -> str:
        """Human-readable one-line description, e.g. ``[(rack, 1), (gpu, 4)]``."""
        return "[" + ", ".join(str(level) for level in self.levels) + "]"
