"""System hierarchies, parallelism axes and parallelism-matrix placement.

This package implements §2.1 and §3.1 of the paper:

* :class:`~repro.hierarchy.levels.SystemHierarchy` — the named hardware levels
  with cardinalities, e.g. ``[(rack, 1), (server, 2), (CPU, 2), (GPU, 4)]``.
* :class:`~repro.hierarchy.parallelism.ParallelismAxes` /
  :class:`~repro.hierarchy.parallelism.ReductionRequest` — the user's
  parallelism shape and which axes to reduce over.
* :class:`~repro.hierarchy.matrix.ParallelismMatrix` and
  :func:`~repro.hierarchy.matrix.enumerate_parallelism_matrices` — placement
  synthesis: every matrix whose column products match the hierarchy and row
  products match the axes.
* :class:`~repro.hierarchy.placement.DevicePlacement` — the interpretation of a
  matrix as a concrete mapping between parallelism coordinates and devices,
  including reduction groups for a reduction request.
"""

from repro.hierarchy.levels import Level, SystemHierarchy
from repro.hierarchy.parallelism import ParallelismAxes, ReductionRequest
from repro.hierarchy.matrix import (
    ParallelismMatrix,
    count_naive_placements,
    enumerate_parallelism_matrices,
)
from repro.hierarchy.placement import DevicePlacement

__all__ = [
    "Level",
    "SystemHierarchy",
    "ParallelismAxes",
    "ReductionRequest",
    "ParallelismMatrix",
    "enumerate_parallelism_matrices",
    "count_naive_placements",
    "DevicePlacement",
]
