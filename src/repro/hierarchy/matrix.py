"""Parallelism matrices and placement synthesis (paper §3.1).

A parallelism matrix has one row per parallelism axis and one column per
hardware-hierarchy level.  Entry ``X[i][j]`` is the *parallelism factor*: how
many ways axis ``i`` is split at level ``j``.  The two constraints from the
paper are

* column products equal the hierarchy cardinalities (eq. 1), and
* row products equal the parallelism-axis sizes (eq. 2).

:func:`enumerate_parallelism_matrices` enumerates every matrix satisfying
both constraints — this is the whole of "parallelism placement synthesis" and
is what collapses the naive ``(prod p_i)!`` assignment space (§2.1) to a small
structured set.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial
from typing import List, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.hierarchy.levels import SystemHierarchy
from repro.hierarchy.parallelism import ParallelismAxes
from repro.utils.factorization import ordered_factorizations

__all__ = [
    "ParallelismMatrix",
    "enumerate_parallelism_matrices",
    "count_naive_placements",
]


@dataclass(frozen=True)
class ParallelismMatrix:
    """An assignment of parallelism factors to hierarchy levels.

    ``entries[i][j]`` is the factor of parallelism axis ``i`` at hierarchy
    level ``j`` (root level first).  Instances are immutable and hashable so
    they can key result dictionaries in the evaluation harness.
    """

    hierarchy: SystemHierarchy
    axes: ParallelismAxes
    entries: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        rows = len(self.entries)
        if rows != self.axes.num_axes:
            raise PlacementError(
                f"matrix has {rows} rows but there are {self.axes.num_axes} parallelism axes"
            )
        cols = {len(row) for row in self.entries}
        if cols != {self.hierarchy.num_levels}:
            raise PlacementError(
                f"matrix rows must all have {self.hierarchy.num_levels} columns, got {cols}"
            )
        for i, row in enumerate(self.entries):
            for j, x in enumerate(row):
                if x < 1:
                    raise PlacementError(f"parallelism factor X[{i}][{j}] = {x} must be >= 1")
        self._check_products()

    def _check_products(self) -> None:
        for j, level in enumerate(self.hierarchy.levels):
            column_product = 1
            for i in range(self.num_rows):
                column_product *= self.entries[i][j]
            if column_product != level.cardinality:
                raise PlacementError(
                    f"column {j} ({level.name}) product is {column_product}, "
                    f"expected cardinality {level.cardinality}"
                )
        for i, size in enumerate(self.axes.sizes):
            row_product = 1
            for j in range(self.num_cols):
                row_product *= self.entries[i][j]
            if row_product != size:
                raise PlacementError(
                    f"row {i} ({self.axes.names[i]}) product is {row_product}, "
                    f"expected axis size {size}"
                )

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of parallelism axes."""
        return len(self.entries)

    @property
    def num_cols(self) -> int:
        """Number of hierarchy levels."""
        return self.hierarchy.num_levels

    @property
    def num_devices(self) -> int:
        return self.hierarchy.num_devices

    def row(self, i: int) -> Tuple[int, ...]:
        """Factors of parallelism axis ``i`` across all levels."""
        return self.entries[i]

    def column(self, j: int) -> Tuple[int, ...]:
        """Factors of all axes at hierarchy level ``j``."""
        return tuple(self.entries[i][j] for i in range(self.num_rows))

    def factor(self, axis: int, level: int) -> int:
        return self.entries[axis][level]

    # ------------------------------------------------------------------ #
    # Flattenings used by the synthesis hierarchies (paper §2.5 / §3.4)
    # ------------------------------------------------------------------ #
    def row_major_factors(self) -> Tuple[int, ...]:
        """Row-based flattening (synthesis hierarchy (c)): axis 0's factors, then axis 1's, ..."""
        flat: List[int] = []
        for i in range(self.num_rows):
            flat.extend(self.entries[i])
        return tuple(flat)

    def column_major_factors(self) -> Tuple[int, ...]:
        """Column-based flattening (synthesis hierarchy (b)): level 0's factors, then level 1's, ..."""
        flat: List[int] = []
        for j in range(self.num_cols):
            flat.extend(self.entries[i][j] for i in range(self.num_rows))
        return tuple(flat)

    def reduction_axis_factors(self, reduction_axes: Sequence[int]) -> Tuple[int, ...]:
        """Row-based flattening restricted to the reduction axes (hierarchy (d), uncollapsed)."""
        flat: List[int] = []
        for i in sorted(reduction_axes):
            flat.extend(self.entries[i])
        return tuple(flat)

    def collapsed_reduction_factors(self, reduction_axes: Sequence[int]) -> Tuple[int, ...]:
        """Per-level product of the reduction-axis factors (hierarchy (d), collapsed).

        Factors that live on the same hardware level are multiplied together
        (paper §2.5: "collapse parallelism factors of the same hardware
        hierarchies"), preserving the level order.
        """
        axes = sorted(reduction_axes)
        collapsed: List[int] = []
        for j in range(self.num_cols):
            product = 1
            for i in axes:
                product *= self.entries[i][j]
            collapsed.append(product)
        return tuple(collapsed)

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Compact representation, e.g. ``[[1 2] [4 8]]`` (one bracket per axis)."""
        return "[" + " ".join("[" + " ".join(str(x) for x in row) + "]" for row in self.entries) + "]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def enumerate_parallelism_matrices(
    hierarchy: SystemHierarchy,
    axes: ParallelismAxes,
    max_results: Optional[int] = None,
) -> List[ParallelismMatrix]:
    """Enumerate every parallelism matrix for ``hierarchy`` and ``axes``.

    The search proceeds column by column (hierarchy level by level).  For each
    level cardinality ``h_j`` we consider every ordered factorization into one
    factor per axis, and prune any branch where an axis's accumulated product
    no longer divides its target size.  If the total device count does not
    equal the total parallelism, the result is empty.

    Parameters
    ----------
    max_results:
        Optional cap on the number of matrices returned (useful for smoke
        tests on very large systems); ``None`` means enumerate everything.
    """
    if hierarchy.num_devices != axes.total_parallelism:
        return []

    targets = axes.sizes
    num_axes = axes.num_axes
    cardinalities = hierarchy.cardinalities

    # Suffix products of the cardinalities: the most parallelism any axis can
    # still pick up from the remaining levels.  Used for look-ahead pruning.
    suffix_products: List[int] = [1] * (len(cardinalities) + 1)
    for j in range(len(cardinalities) - 1, -1, -1):
        suffix_products[j] = suffix_products[j + 1] * cardinalities[j]

    results: List[ParallelismMatrix] = []
    columns: List[Tuple[int, ...]] = []

    def _recurse(level: int, accumulated: Tuple[int, ...]) -> bool:
        """Return ``False`` if enumeration should stop early (cap reached)."""
        if max_results is not None and len(results) >= max_results:
            return False
        if level == len(cardinalities):
            if all(accumulated[i] == targets[i] for i in range(num_axes)):
                entries = tuple(
                    tuple(columns[j][i] for j in range(len(columns))) for i in range(num_axes)
                )
                results.append(ParallelismMatrix(hierarchy, axes, entries))
            return True
        remaining = suffix_products[level + 1]
        for factors in ordered_factorizations(cardinalities[level], num_axes):
            ok = True
            new_acc = []
            for i in range(num_axes):
                acc = accumulated[i] * factors[i]
                # Prune: the row product so far must divide the target, and the
                # remaining levels must be able to supply the missing factor.
                if targets[i] % acc != 0 or (targets[i] // acc) > remaining:
                    ok = False
                    break
                new_acc.append(acc)
            if not ok:
                continue
            columns.append(factors)
            keep_going = _recurse(level + 1, tuple(new_acc))
            columns.pop()
            if not keep_going:
                return False
        return True

    _recurse(0, tuple([1] * num_axes))
    return results


def count_naive_placements(axes: ParallelismAxes) -> int:
    """Size of the naive assignment space the paper contrasts against (§2.1).

    With ``P = prod p_i`` program shards mapped onto ``P`` devices there are
    ``P!`` arbitrary assignments; the parallelism-matrix formulation replaces
    this with the handful returned by :func:`enumerate_parallelism_matrices`.
    """
    return factorial(axes.total_parallelism)
