"""Interpreting a parallelism matrix as a concrete device placement.

A parallelism matrix refines every hardware level into one digit per
parallelism axis.  A device is therefore addressed by a full digit grid
``c[i][j]`` (axis ``i``, level ``j``) with ``0 <= c[i][j] < X[i][j]``, and the
placement is the bijection between those grids and

* flat physical device ids (mixed radix over levels, digits within a level
  ordered by axis), and
* per-axis parallelism coordinates (mixed radix over levels for that axis).

This is the interpretation of Figure 2 in the paper: device ``n/m`` in the
figure is the device whose data-parallel coordinate is ``n`` and whose
parameter-shard coordinate is ``m``.

Reduction groups fall out directly: devices that share every non-reduction
axis coordinate form one group, ordered by their reduction-axis digits (the
order the synthesis hierarchy (d) uses, which is what makes lowering a pure
re-indexing).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Sequence, Tuple

from repro.errors import PlacementError
from repro.hierarchy.matrix import ParallelismMatrix
from repro.hierarchy.parallelism import ReductionRequest
from repro.utils.mixed_radix import MixedRadix

__all__ = ["DevicePlacement"]

CoordGrid = Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class DevicePlacement:
    """Coordinate bookkeeping for one parallelism matrix.

    All conversions are pure functions of the matrix; the class only caches
    the mixed-radix helpers.
    """

    matrix: ParallelismMatrix

    # ------------------------------------------------------------------ #
    # Radix helpers
    # ------------------------------------------------------------------ #
    @cached_property
    def _level_radices(self) -> Tuple[MixedRadix, ...]:
        """Per level: mixed radix over that level's per-axis factors (axis order)."""
        return tuple(
            MixedRadix(self.matrix.column(j)) for j in range(self.matrix.num_cols)
        )

    @cached_property
    def _hierarchy_radix(self) -> MixedRadix:
        return MixedRadix(self.matrix.hierarchy.cardinalities)

    @cached_property
    def _axis_radices(self) -> Tuple[MixedRadix, ...]:
        """Per axis: mixed radix over that axis's per-level factors (level order)."""
        return tuple(MixedRadix(self.matrix.row(i)) for i in range(self.matrix.num_rows))

    @property
    def num_devices(self) -> int:
        return self.matrix.num_devices

    @property
    def num_axes(self) -> int:
        return self.matrix.num_rows

    @property
    def num_levels(self) -> int:
        return self.matrix.num_cols

    # ------------------------------------------------------------------ #
    # Grid <-> device id
    # ------------------------------------------------------------------ #
    def grid_to_device(self, grid: Sequence[Sequence[int]]) -> int:
        """Map a full digit grid ``c[i][j]`` to the flat physical device id."""
        self._check_grid(grid)
        level_digits = []
        for j in range(self.num_levels):
            column_digits = tuple(grid[i][j] for i in range(self.num_axes))
            level_digits.append(self._level_radices[j].encode(column_digits))
        return self._hierarchy_radix.encode(level_digits)

    def device_to_grid(self, device: int) -> CoordGrid:
        """Map a flat physical device id back to the full digit grid."""
        level_digits = self._hierarchy_radix.decode(device)
        grid: List[List[int]] = [[0] * self.num_levels for _ in range(self.num_axes)]
        for j, level_digit in enumerate(level_digits):
            column_digits = self._level_radices[j].decode(level_digit)
            for i in range(self.num_axes):
                grid[i][j] = column_digits[i]
        return tuple(tuple(row) for row in grid)

    def _check_grid(self, grid: Sequence[Sequence[int]]) -> None:
        if len(grid) != self.num_axes:
            raise PlacementError(f"grid has {len(grid)} rows, expected {self.num_axes}")
        for i, row in enumerate(grid):
            if len(row) != self.num_levels:
                raise PlacementError(
                    f"grid row {i} has {len(row)} columns, expected {self.num_levels}"
                )
            for j, digit in enumerate(row):
                limit = self.matrix.factor(i, j)
                if not 0 <= digit < limit:
                    raise PlacementError(
                        f"grid digit c[{i}][{j}] = {digit} out of range [0, {limit})"
                    )

    # ------------------------------------------------------------------ #
    # Parallelism coordinates
    # ------------------------------------------------------------------ #
    def axis_coordinate(self, device: int, axis: int) -> int:
        """Coordinate of ``device`` along parallelism ``axis`` (e.g. its data-parallel rank)."""
        grid = self.device_to_grid(device)
        return self._axis_radices[axis].encode(grid[axis])

    def parallel_coordinates(self, device: int) -> Tuple[int, ...]:
        """All per-axis coordinates of ``device`` (one entry per parallelism axis)."""
        grid = self.device_to_grid(device)
        return tuple(
            self._axis_radices[i].encode(grid[i]) for i in range(self.num_axes)
        )

    def device_for_coordinates(self, coordinates: Sequence[int]) -> int:
        """Inverse of :meth:`parallel_coordinates`."""
        if len(coordinates) != self.num_axes:
            raise PlacementError(
                f"expected {self.num_axes} parallel coordinates, got {len(coordinates)}"
            )
        grid: List[Tuple[int, ...]] = []
        for i, coord in enumerate(coordinates):
            grid.append(self._axis_radices[i].decode(coord))
        return self.grid_to_device(grid)

    @cached_property
    def coordinate_table(self) -> Tuple[Tuple[int, ...], ...]:
        """``coordinate_table[d]`` is :meth:`parallel_coordinates` of device ``d``."""
        return tuple(self.parallel_coordinates(d) for d in range(self.num_devices))

    # ------------------------------------------------------------------ #
    # Reduction groups
    # ------------------------------------------------------------------ #
    def reduction_groups(self, request: ReductionRequest) -> List[List[int]]:
        """Return the reduction groups for ``request``.

        Devices sharing all non-reduction coordinates form a group.  Within a
        group, devices are ordered by their reduction-axis digits flattened in
        the (axis-major, level-minor) order used by synthesis hierarchy (d):
        this ordering is what lowering relies on, and also fixes which device
        acts as the root for Reduce / Broadcast (the first one).
        """
        request.validate_against(self.matrix.axes)
        reduction_axes = list(request.axes)
        positions = [
            (i, j) for i in reduction_axes for j in range(self.num_levels)
        ]
        radices = MixedRadix(tuple(self.matrix.factor(i, j) for i, j in positions))

        groups: Dict[Tuple[int, ...], List[Tuple[int, int]]] = {}
        for device in range(self.num_devices):
            grid = self.device_to_grid(device)
            key = tuple(
                grid[i][j]
                for i in range(self.num_axes)
                if i not in reduction_axes
                for j in range(self.num_levels)
            )
            rank = radices.encode(tuple(grid[i][j] for i, j in positions))
            groups.setdefault(key, []).append((rank, device))

        ordered: List[List[int]] = []
        for key in sorted(groups):
            members = sorted(groups[key])
            ordered.append([device for _, device in members])
        return ordered

    def reduction_group_of(self, device: int, request: ReductionRequest) -> List[int]:
        """Return the (ordered) reduction group containing ``device``."""
        for group in self.reduction_groups(request):
            if device in group:
                return group
        raise PlacementError(f"device {device} not found in any reduction group")

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def placement_table(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """Return ``(device, parallel coordinates)`` rows, device order."""
        return [(d, self.parallel_coordinates(d)) for d in range(self.num_devices)]

    def describe_device(self, device: int) -> str:
        """Human-readable marker like the paper's ``n/m`` labels in Figure 2."""
        coords = self.parallel_coordinates(device)
        return "/".join(str(c) for c in coords)
